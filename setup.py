"""Setuptools shim.

The environment this reproduction targets has no ``wheel`` package available
(offline), so editable installs go through the legacy ``setup.py develop``
path; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
