"""Setuptools shim.

The environment this reproduction targets has no ``wheel`` package available
(offline), so editable installs go through the legacy ``setup.py develop``
path.  The only metadata that matters here is the optional-dependency
groups: the core engines run on numpy/scipy alone, and ``repro[jit]`` adds
numba for the optional ``REPRO_JIT=1`` fused-kernel path (import-guarded —
its absence silently falls back to the pure-numpy kernels).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    extras_require={
        # optional JIT acceleration of the fused lockstep kernels
        # (repro.routing.kernels honours REPRO_JIT=1 only when importable)
        "jit": ["numba"],
    },
)
