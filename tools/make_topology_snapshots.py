"""Regenerate the miniature topology snapshots under ``data/topologies/``.

The checked-in snapshots are deterministic stand-ins *written in the real
upstream wire formats* (CAIDA as-rel, Rocketfuel inferred weights, DIMACS
``.gr``), so the parsers in :mod:`repro.graphs.topologies` are exercised
end to end against exactly the bytes a full download would have — sparse
non-contiguous AS numbers, string POP labels, 1-indexed bidirectional
arcs, comment headers, the lot.  A real CAIDA/Rocketfuel/DIMACS file drops
into the same slot once its sha256 is pinned in ``MANIFEST.json``.

Run from the repo root::

    PYTHONPATH=src python tools/make_topology_snapshots.py

Rewrites the three snapshot files and ``MANIFEST.json`` (with fresh sha256
pins and expected node/edge counts).  Fully deterministic: running it twice
produces byte-identical files.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

from repro.graphs.topologies import (  # noqa: E402
    data_dir, load_topology, sha256_of,
)

OUT_DIR = data_dir()


def _as_level_edges(rng: np.random.Generator, n: int = 700):
    """Preferential-attachment AS graph with sparse, shuffled AS numbers.

    Real AS numbers are non-contiguous (the mini file spans the 16-bit ASN
    space) — the parser's relabeling path has to earn its keep.
    """
    import networkx as nx

    g = nx.barabasi_albert_graph(n, 2, seed=int(rng.integers(0, 2**31 - 1)))
    # a sprinkling of peering edges between mid-degree ASes
    nodes = sorted(g.nodes(), key=g.degree, reverse=True)
    mid = nodes[n // 10: n // 2]
    for _ in range(n // 10):
        a, b = rng.choice(len(mid), size=2, replace=False)
        g.add_edge(mid[int(a)], mid[int(b)])
    asn = rng.permutation(np.arange(1, 65000))[:n] + 1
    degree = dict(g.degree())
    lines = []
    for u, v in sorted(g.edges()):
        # providers are the higher-degree endpoint; ties peer
        du, dv = degree[u], degree[v]
        if du == dv:
            rel = 0
        elif du > dv:
            rel = -1
            u, v = v, u  # as-rel lists <customer>|<provider>|-1 as p2c from col1? keep convention <as1>|<as2>|-1 meaning as1 is customer
        else:
            rel = -1
        lines.append(f"{asn[u]}|{asn[v]}|{rel}")
    header = [
        "# miniature AS-relationship snapshot (stand-in, CAIDA as-rel format)",
        "# source format: https://www.caida.org/catalog/datasets/as-relationships/",
        "# <as1>|<as2>|<relationship>  (-1 = customer-provider, 0 = peer)",
    ]
    return "\n".join(header + lines) + "\n"


def _rocketfuel_edges(rng: np.random.Generator, num_pops: int = 40,
                      routers_per_pop: int = 8):
    """Weighted ISP backbone: POP meshes + inter-POP links, string ids."""
    cities = [f"pop{p:02d}r{r}" for p in range(num_pops)
              for r in range(routers_per_pop)]
    lines = []
    seen = set()

    def add(u: str, v: str, w: float):
        key = (u, v) if u < v else (v, u)
        if key not in seen and u != v:
            seen.add(key)
            lines.append(f"{u} {v} {w:.1f}")

    # intra-POP: cheap ring + chords
    for p in range(num_pops):
        pop = cities[p * routers_per_pop:(p + 1) * routers_per_pop]
        for i in range(len(pop)):
            add(pop[i], pop[(i + 1) % len(pop)], float(rng.integers(1, 5)))
        for _ in range(routers_per_pop // 2):
            i, j = rng.choice(routers_per_pop, size=2, replace=False)
            add(pop[int(i)], pop[int(j)], float(rng.integers(1, 5)))
    # inter-POP backbone: ring over POPs plus long-haul shortcuts, heavier
    for p in range(num_pops):
        q = (p + 1) % num_pops
        add(cities[p * routers_per_pop], cities[q * routers_per_pop],
            float(rng.integers(20, 100)))
    for _ in range(num_pops):
        p, q = rng.choice(num_pops, size=2, replace=False)
        add(cities[int(p) * routers_per_pop + 1],
            cities[int(q) * routers_per_pop + 1],
            float(rng.integers(20, 100)))
    header = [
        "# miniature ISP map (stand-in, Rocketfuel inferred-weights format)",
        "# <router> <router> <igp-weight>",
    ]
    return "\n".join(header + lines) + "\n"


def _road_gr(rng: np.random.Generator, rows: int = 28, cols: int = 32):
    """Planar road grid with holes and perturbed travel times, DIMACS .gr."""
    def nid(r, c):
        return r * cols + c + 1  # 1-indexed

    keep = rng.random((rows, cols)) > 0.06  # ~6% of junctions closed
    arcs = []
    for r in range(rows):
        for c in range(cols):
            if not keep[r, c]:
                continue
            for dr, dc in ((0, 1), (1, 0)):
                rr, cc = r + dr, c + dc
                if rr < rows and cc < cols and keep[rr, cc]:
                    w = int(rng.integers(40, 400))
                    arcs.append((nid(r, c), nid(rr, cc), w))
                    arcs.append((nid(rr, cc), nid(r, c), w))
    n = rows * cols
    lines = [
        "c miniature road network (stand-in, 9th DIMACS challenge .gr format)",
        "c http://www.diag.uniroma1.it/challenge9/format.shtml",
        f"p sp {n} {len(arcs)}",
    ]
    lines += [f"a {u} {v} {w}" for u, v, w in arcs]
    return "\n".join(lines) + "\n"


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)
    specs = {
        "caida-as-mini": {
            "file": "caida-as-mini.as-rel.txt",
            "format": "caida-aslinks",
            "text": _as_level_edges(np.random.default_rng(20060102)),
            "upstream": "CAIDA AS Relationships dataset "
                        "(https://www.caida.org/catalog/datasets/as-relationships/)",
            "snapshot_date": "stand-in",
        },
        "rocketfuel-mini": {
            "file": "rocketfuel-mini.weights.txt",
            "format": "rocketfuel-weights",
            "text": _rocketfuel_edges(np.random.default_rng(1221)),
            "upstream": "Rocketfuel ISP maps, inferred link weights "
                        "(https://research.cs.washington.edu/networking/rocketfuel/)",
            "snapshot_date": "stand-in",
        },
        "road-mini": {
            "file": "road-mini.gr",
            "format": "dimacs-gr",
            "text": _road_gr(np.random.default_rng(9)),
            "upstream": "9th DIMACS Implementation Challenge road networks "
                        "(http://www.diag.uniroma1.it/challenge9/)",
            "snapshot_date": "stand-in",
        },
    }
    manifest = {}
    for name, spec in specs.items():
        path = os.path.join(OUT_DIR, spec["file"])
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(spec["text"])
        manifest[name] = {
            "file": spec["file"],
            "format": spec["format"],
            "sha256": sha256_of(path),
            "upstream": spec["upstream"],
            "snapshot_date": spec["snapshot_date"],
            "provenance": "deterministic miniature stand-in in the upstream "
                          "wire format, generated by "
                          "tools/make_topology_snapshots.py; replace with a "
                          "full download and re-pin sha256/nodes/edges to "
                          "run the real dataset",
        }
    # write a first manifest without shape pins, load through the real
    # parsers, then pin the measured node/edge counts
    manifest_path = os.path.join(OUT_DIR, "MANIFEST.json")
    with open(manifest_path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name in manifest:
        graph = load_topology(name)
        manifest[name]["nodes"] = graph.n
        manifest[name]["edges"] = graph.num_edges
        print(f"{name:18s} n={graph.n:5d} m={graph.num_edges:5d} "
              f"sha256={manifest[name]['sha256'][:12]}...")
    with open(manifest_path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {manifest_path}")


if __name__ == "__main__":
    main()
