"""E12 — ablation of the decomposition constants (dense gap, sparse shrink)."""

import pytest

from benchmarks.conftest import record
from repro.experiments import exp_ablation


@pytest.mark.bench
def test_e12_ablation(benchmark, quick):
    def run():
        return exp_ablation.run(quick=quick, seed=9, k=2)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r["failures"] == 0 for r in result.rows)
    paper_row = next(r for r in result.rows
                     if r["dense_gap"] == 3 and r["sparse_shrink"] == 6.0)
    record(
        benchmark,
        experiment="E12",
        settings=[(r["dense_gap"], r["sparse_shrink"]) for r in result.rows],
        max_stretch=[round(float(r["max_stretch"]), 2) for r in result.rows],
        avg_stretch=[round(float(r["avg_stretch"]), 2) for r in result.rows],
        max_table_bits=[r["max_table_bits"] for r in result.rows],
        fallback_uses=[r.get("fallback_uses", 0) for r in result.rows],
        paper_setting_max_stretch=round(float(paper_row["max_stretch"]), 2),
    )
    # correctness must be insensitive to the constants; stretch should stay
    # within the same O(k) envelope across the whole sweep
    assert max(float(r["max_stretch"]) for r in result.rows) <= 16 * 2 + 8
