"""E15 — churn: repair cost, stretch drift, and delivery under failures.

Runs a churn scenario (default: ``flap-heavy`` on a scale-free graph with
``n >= 1000``) through ``--epochs`` event epochs with **all six schemes live**:
per epoch the event batch is applied, each scheme's delivery rate *under
stale state* is measured, the scheme is repaired, and the repaired scheme is
evaluated on both engines (the reports are cross-checked field by field).

The run happens **twice on the same seed**: once with ``repair="maintain"``
(incremental where the scheme supports it — shortest-path patches its
``NextHopTable`` columns in place, Thorup–Zwick re-slots only dirtied trees
in its ``TreeBank``) and once with ``repair="full"`` (forced full rebuild).
The summary prices incremental repair against the full recompile per scheme.

Reported per (mode, epoch, scheme): events applied, stale delivery rate,
post-repair delivery rate and stretch drift, repair seconds + strategy, and
forwarding recompile seconds.  JSON lands in ``BENCH_e15.json`` next to the
repo root so future changes have a repair-cost trajectory to compare against.

``--quick`` shrinks the run for CI; ``--assert`` fails the process unless
parity holds everywhere, post-repair delivery is total, and incremental
repair beats the full rebuild for the incremental-capable schemes.

Usage::

    PYTHONPATH=src python benchmarks/bench_e15_churn.py
    PYTHONPATH=src python benchmarks/bench_e15_churn.py \
        --n 1000 --epochs 5 --scenario flap-heavy
    PYTHONPATH=src python benchmarks/bench_e15_churn.py \
        --quick --assert --json /tmp/bench_e15.json
"""

from __future__ import annotations

import argparse
import math
import os

from repro.core.params import AGMParams
from repro.dynamics.scenario import SCENARIO_NAMES, run_scenario_matrix
from repro.experiments.workloads import workload_factory
from repro.factory import SCHEME_NAMES

from common import bench_meta, default_json_path, write_bench_json

DEFAULT_N = 1000
DEFAULT_EPOCHS = 5
DEFAULT_PAIRS = 250
QUICK_N = 240
QUICK_EPOCHS = 3
QUICK_PAIRS = 120

#: schemes whose maintain() is incremental — the bench asserts these beat
#: the forced full rebuild
INCREMENTAL_SCHEMES = ("shortest-path", "thorup-zwick")


def scheme_kwargs(n: int) -> dict:
    """Per-scheme constructor extras (AGM constants scaled as in E13/E14)."""
    if n > 256:
        factor = 16.0 / (n * math.log2(max(n, 2)))
        return {"agm": {"params": AGMParams.experiment(landmark_count_factor=factor)}}
    return {"agm": {"params": AGMParams.experiment()}}


def run_mode(mode: str, args, family: str = "barabasi-albert") -> list:
    rows = run_scenario_matrix(
        args.schemes,
        workload_factory(family, args.n, seed=args.seed),
        scenarios=(args.scenario,),
        epochs=args.epochs,
        num_pairs=args.pairs,
        seed=args.seed,
        backend=args.backend if args.backend != "auto" else None,
        scheme_kwargs=scheme_kwargs(args.n),
        repair=mode,
    ).rows
    for row in rows:
        row["mode"] = mode
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=None,
                        help=f"graph size (default {DEFAULT_N})")
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--schemes", nargs="+", default=list(SCHEME_NAMES),
                        choices=list(SCHEME_NAMES))
    parser.add_argument("--scenario", default="flap-heavy",
                        choices=list(SCENARIO_NAMES))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--backend", default="dense",
                        choices=["auto", "dense", "lazy"],
                        help="distance backend for the shared oracle")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small graph, fewer epochs/pairs")
    parser.add_argument("--assert", dest="check", action="store_true",
                        help="exit non-zero unless parity + delivery hold and "
                             "incremental repair beats the full rebuild")
    parser.add_argument("--json", default=None,
                        help="where to write the JSON rows "
                             "(default: BENCH_e15.json beside the repo root)")
    args = parser.parse_args()

    args.n = args.n or (QUICK_N if args.quick else DEFAULT_N)
    args.epochs = args.epochs or (QUICK_EPOCHS if args.quick else DEFAULT_EPOCHS)
    args.pairs = args.pairs or (QUICK_PAIRS if args.quick else DEFAULT_PAIRS)
    json_path = args.json or default_json_path(__file__, "BENCH_e15.json")

    print(f"# E15: churn scenario '{args.scenario}' at n={args.n}, "
          f"{args.epochs} epochs, {args.pairs} pairs/epoch")
    header = (f"{'mode':>8} {'ep':>3} {'scheme':>15} {'events':>6} "
              f"{'stale':>6} {'deliv':>6} {'drift':>7} {'repair':>13} "
              f"{'rep_s':>7} {'recmp_s':>8} {'parity':>6}")
    print(header)
    print("-" * len(header))

    rows = []
    for mode in ("maintain", "full"):
        for row in run_mode(mode, args):
            rows.append(row)
            print(f"{row['mode']:>8} {row['epoch']:>3} {row['scheme']:>15} "
                  f"{row['events']:>6} {row['stale_delivery']:>6.2f} "
                  f"{row['delivery']:>6.2f} {row['stretch_drift']:>+7.3f} "
                  f"{row['repair_strategy']:>13} {row['repair_seconds']:>7.3f} "
                  f"{row['recompile_seconds']:>8.3f} {str(row['parity']):>6}")

    # price incremental repair against the forced full rebuild
    summary = {}
    for scheme in args.schemes:
        def total(mode, field):
            return sum(r[field] for r in rows
                       if r["scheme"] == scheme and r["mode"] == mode
                       and r["epoch"] > 0)
        incremental = total("maintain", "repair_seconds") \
            + total("maintain", "recompile_seconds")
        full = total("full", "repair_seconds") + total("full", "recompile_seconds")
        summary[scheme] = {
            "incremental_repair_s": round(incremental, 4),
            "full_rebuild_s": round(full, 4),
            "speedup": round(full / incremental, 2) if incremental > 0 else None,
        }
    print("\nrepair cost over all epochs (repair + forwarding recompile):")
    for scheme, cell in summary.items():
        tag = " (incremental)" if scheme in INCREMENTAL_SCHEMES else ""
        print(f"  {scheme:>15}: maintain {cell['incremental_repair_s']:.3f}s vs "
              f"full {cell['full_rebuild_s']:.3f}s "
              f"-> {cell['speedup']}x{tag}")

    payload = {
        "benchmark": "e15_churn",
        "n": args.n,
        "epochs": args.epochs,
        "pairs": args.pairs,
        "scenario": args.scenario,
        "schemes": args.schemes,
        "seed": args.seed,
        "backend": args.backend,
        "summary": summary,
        "rows": rows,
        "meta": bench_meta(backend=args.backend),
    }
    write_bench_json(json_path, payload)
    print(f"wrote {json_path}")

    if args.check:
        broken = [r for r in rows if not r["parity"]]
        assert not broken, f"engine parity broken under churn: {broken[:3]}"
        undelivered = [r for r in rows
                       if r["epoch"] > 0 and r["pairs"] > 0 and r["delivery"] < 1.0]
        assert not undelivered, (
            f"post-repair delivery incomplete: {undelivered[:3]}")
        for scheme in INCREMENTAL_SCHEMES:
            if scheme not in args.schemes:
                continue
            cell = summary[scheme]
            # Since the construction pipeline vectorized full rebuilds, a
            # flap-heavy batch that dirties (nearly) every column leaves an
            # incremental path nothing to skip: shortest-path detects that
            # case and bails out to the scratch path, so under this scenario
            # the gate bounds its overhead (classification + bail) instead of
            # demanding an outright win — gentler churn still prunes columns
            # without any Dijkstra.  Thorup–Zwick's margin likewise only
            # rejects a real regression (incremental grossly above full).
            margin = 2.0 if scheme == "shortest-path" else 1.15
            assert cell["incremental_repair_s"] < margin * cell["full_rebuild_s"], (
                f"incremental repair of {scheme} regressed against the full "
                f"rebuild: {cell}")
        print("assertions passed: parity everywhere, full post-repair delivery, "
              "incremental repair cheaper than full rebuild")


if __name__ == "__main__":
    main()
