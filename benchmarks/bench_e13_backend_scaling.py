"""E13 — distance-backend scaling: dense matrix vs lazy LRU rows.

Standalone script (not a pytest-benchmark module: the point is peak *memory*,
which needs a process-wide tracemalloc window per backend).  For each
``n`` in ``--sizes`` it builds a scale-free (Barabási–Albert) workload graph
and, for the dense and lazy backends, records

* backend build time (APSP + eager argsort for dense, cache setup for lazy),
* a fixed query workload: global stats, ball / nearest probes, and a
  200-pair vectorized ``pair_distances`` batch,
* tracemalloc peak memory over build + workload.

With ``--agm`` it additionally runs the headline scenario: a k=2 AGM scheme
build plus a 200-pair evaluation on the largest size with the lazy backend —
demonstrating that the full pipeline completes without ever allocating the
dense n×n matrix (constant factors of the landmark sets are scaled down via
``AGMParams.experiment``, which documents the substitution; exponents are
untouched).

Usage::

    PYTHONPATH=src python benchmarks/bench_e13_backend_scaling.py
    PYTHONPATH=src python benchmarks/bench_e13_backend_scaling.py --sizes 200 1000
    PYTHONPATH=src python benchmarks/bench_e13_backend_scaling.py --agm
"""

from __future__ import annotations

import argparse
import math
import time
import tracemalloc

from repro.core.params import AGMParams
from repro.core.scheme import AGMRoutingScheme
from repro.experiments.workloads import make_workload
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator

NUM_PAIRS = 200
NUM_PROBES = 64


def run_workload(graph, oracle) -> None:
    """The fixed query mix every backend is measured on."""
    oracle.diameter()
    oracle.min_positive_distance()
    step = max(1, graph.n // NUM_PROBES)
    radius = oracle.diameter() / 8.0
    for u in range(0, graph.n, step):
        oracle.ball_size(u, radius)
        oracle.nearest(u, 8)
    sim = RoutingSimulator(graph, oracle=oracle)
    pairs = sim.sample_pairs(NUM_PAIRS, seed=7)
    oracle.pair_distances([u for u, _ in pairs], [v for _, v in pairs])


def measure(graph, backend: str) -> dict:
    """Build one backend and run the workload inside a tracemalloc window."""
    tracemalloc.start()
    t0 = time.perf_counter()
    oracle = DistanceOracle(graph, backend=backend)
    if backend == "dense":
        _ = oracle.matrix  # the eager build happens in the constructor
    build_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    run_workload(graph, oracle)
    evaluate_seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "backend": backend,
        "build_s": build_seconds,
        "evaluate_s": evaluate_seconds,
        "peak_mb": peak / 1e6,
        "resident_mb": oracle.nbytes() / 1e6,
    }


def run_agm_scenario(n: int, seed: int = 42) -> None:
    """k=2 AGM build + 200-pair evaluation, lazy backend, no dense matrix."""
    graph = make_workload("barabasi-albert", n, seed=seed)
    tracemalloc.start()
    oracle = DistanceOracle(graph, backend="lazy")
    # scale the landmark-set constant factor so |S(u, i)| stays ~16 at this n
    # (exponents untouched; the paper's constant exceeds n outright here)
    factor = 16.0 / (n * math.log2(max(n, 2)))
    params = AGMParams.experiment(landmark_count_factor=factor)
    t0 = time.perf_counter()
    scheme = AGMRoutingScheme.build(graph, k=2, params=params, oracle=oracle, seed=3)
    build_seconds = time.perf_counter() - t0
    simulator = RoutingSimulator(graph, oracle=oracle)
    t0 = time.perf_counter()
    report = simulator.evaluate(scheme, num_pairs=NUM_PAIRS, seed=5)
    evaluate_seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    dense_mb = graph.n * graph.n * 8 / 1e6
    print(f"\n## AGM k=2 on scale-free n={graph.n} (lazy backend)")
    print(f"build        {build_seconds:8.1f} s")
    print(f"evaluate     {evaluate_seconds:8.1f} s   "
          f"({report.num_pairs} pairs, {report.failures} failures, "
          f"max stretch {report.max_stretch:.2f}, "
          f"fallback uses {scheme.fallback_uses})")
    print(f"peak memory  {peak / 1e6:8.0f} MB  "
          f"(dense matrix alone would be {dense_mb:.0f} MB; "
          f"row cache held {oracle.nbytes() / 1e6:.0f} MB)")
    assert oracle.backend_name == "lazy"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=[200, 1000, 5000])
    parser.add_argument("--agm", action="store_true",
                        help="also run the k=2 AGM build + evaluation at the "
                             "largest size on the lazy backend")
    args = parser.parse_args()

    print("# E13: distance-backend scaling (dense vs lazy), scale-free graphs")
    header = f"{'n':>6} {'backend':>8} {'build_s':>9} {'evaluate_s':>11} {'peak_mb':>9} {'resident_mb':>12}"
    print(header)
    print("-" * len(header))
    for n in args.sizes:
        graph = make_workload("barabasi-albert", n, seed=42)
        rows = [measure(graph, backend) for backend in ("dense", "lazy")]
        for row in rows:
            print(f"{graph.n:>6} {row['backend']:>8} {row['build_s']:>9.2f} "
                  f"{row['evaluate_s']:>11.2f} {row['peak_mb']:>9.1f} "
                  f"{row['resident_mb']:>12.1f}")
        dense_peak = rows[0]["peak_mb"]
        lazy_peak = rows[1]["peak_mb"]
        if lazy_peak > 0:
            print(f"{'':>6} {'ratio':>8} {'':>9} {'':>11} "
                  f"{dense_peak / lazy_peak:>8.1f}x")

    if args.agm:
        run_agm_scenario(max(args.sizes))


if __name__ == "__main__":
    main()
