"""E14 — forwarding throughput: packets/second, scalar vs lockstep engines.

For each ``n`` in ``--sizes`` a scale-free (Barabási–Albert) workload graph
is built; every scheme in ``--schemes`` is constructed once, compiled once
(``compile_forwarding``), and then the *same* sampled pair batch is evaluated
under both engines.  Reported per (n, scheme):

* ``scalar_pps`` / ``lockstep_pps`` — evaluated pairs per second (including
  verification and stretch scoring, i.e. end-to-end evaluation throughput),
* ``speedup`` — lockstep over scalar,
* ``compile_s`` — one-time forwarding-table compilation cost,
* ``parity`` — whether the two engines' evaluation reports agree field for
  field (they must; a mismatch is a bug in the compiled-forwarding layer).

The distance backend defaults to ``dense`` regardless of ``n`` so the timed
region isolates the *evaluation engines*: under the auto-selected lazy
backend the shared exact-distance computation (identical work in both
engines) dominates at large ``n`` and masks the routing speedup — backend
scaling is E13's subject.  Pass ``--backend auto`` to measure the combined
system instead.

Results are also emitted as machine-readable JSON (``--json``, default
``BENCH_e14.json`` next to the repo root) so future changes have a
packets/second trajectory to compare against.

``--quick`` shrinks the run for CI (one small size, fewer pairs);
``--assert-speedup`` fails the process when parity breaks or the lockstep
engine is not at least as fast as the scalar engine in aggregate — the CI
perf-regression guard.

Usage::

    PYTHONPATH=src python benchmarks/bench_e14_forwarding_throughput.py
    PYTHONPATH=src python benchmarks/bench_e14_forwarding_throughput.py \
        --sizes 1000 5000 --pairs 2000 --schemes thorup-zwick awerbuch-peleg
    PYTHONPATH=src python benchmarks/bench_e14_forwarding_throughput.py \
        --quick --assert-speedup --json /tmp/bench_e14.json
"""

from __future__ import annotations

import argparse
import math
import os
import time

from repro.core.params import AGMParams
from repro.experiments.workloads import make_workload
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator

from common import bench_meta, default_json_path, write_bench_json

DEFAULT_SIZES = [1000, 5000, 20000]
DEFAULT_PAIRS = 2000
QUICK_SIZES = [400]
QUICK_PAIRS = 1500


def scheme_kwargs(name: str, n: int) -> dict:
    """Per-scheme constructor extras (AGM constants scaled as in E13)."""
    if name == "agm" and n > 256:
        # keep |S(u, i)| ~16 at this n (exponents untouched; see E13)
        factor = 16.0 / (n * math.log2(max(n, 2)))
        return {"params": AGMParams.experiment(landmark_count_factor=factor)}
    if name == "agm":
        return {"params": AGMParams.experiment()}
    return {}


def run_cell(sim, graph, oracle, name: str, pairs, seed: int) -> dict:
    """Build + compile one scheme, evaluate the batch under both engines."""
    t0 = time.perf_counter()
    scheme = build_scheme(name, graph, k=2, seed=seed, oracle=oracle,
                          **scheme_kwargs(name, graph.n))
    build_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    scalar_report = sim.evaluate(scheme, pairs=pairs, engine="scalar")
    scalar_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    program = scheme.compiled_forwarding()
    compile_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    lockstep_report = sim.evaluate(scheme, pairs=pairs, engine="lockstep")
    lockstep_s = time.perf_counter() - t0

    scalar_dict = scalar_report.as_dict()
    lockstep_dict = lockstep_report.as_dict()
    scalar_dict.pop("engine")
    lockstep_dict.pop("engine")
    return {
        "n": graph.n,
        "scheme": name,
        "pairs": len(pairs),
        "build_s": round(build_s, 4),
        "compile_s": round(compile_s, 4),
        "scalar_s": round(scalar_s, 4),
        "lockstep_s": round(lockstep_s, 4),
        "scalar_pps": round(len(pairs) / scalar_s, 1),
        "lockstep_pps": round(len(pairs) / lockstep_s, 1),
        "speedup": round(scalar_s / lockstep_s, 2),
        "parity": scalar_dict == lockstep_dict,
        "avg_stretch": scalar_dict["avg_stretch"],
        "failures": scalar_dict["failures"],
        "compiled_trees": program.describe()["trees"],
        "compiled_table_entries": program.describe()["table_entries"],
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--pairs", type=int, default=None)
    parser.add_argument("--schemes", nargs="+", default=list(SCHEME_NAMES),
                        choices=list(SCHEME_NAMES))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--backend", default="dense",
                        choices=["auto", "dense", "lazy"],
                        help="distance backend for the shared oracle "
                             "(default dense: isolates engine throughput)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: one small size, fewer pairs")
    parser.add_argument("--assert-speedup", action="store_true",
                        help="exit non-zero unless parity holds everywhere and "
                             "aggregate lockstep throughput >= scalar")
    parser.add_argument("--json", default=None,
                        help="where to write the JSON rows "
                             "(default: BENCH_e14.json beside the repo root)")
    args = parser.parse_args()

    sizes = args.sizes or (QUICK_SIZES if args.quick else DEFAULT_SIZES)
    num_pairs = args.pairs or (QUICK_PAIRS if args.quick else DEFAULT_PAIRS)
    json_path = args.json or default_json_path(__file__, "BENCH_e14.json")

    print("# E14: evaluation throughput, scalar vs lockstep (pairs/second)")
    header = (f"{'n':>6} {'scheme':>15} {'build_s':>8} {'compile_s':>9} "
              f"{'scalar_pps':>11} {'lockstep_pps':>13} {'speedup':>8} {'parity':>7}")
    print(header)
    print("-" * len(header))

    rows = []
    for n in sizes:
        graph = make_workload("barabasi-albert", n, seed=args.seed)
        oracle = DistanceOracle(graph, backend=None if args.backend == "auto"
                                else args.backend)
        sim = RoutingSimulator(graph, oracle=oracle)
        pairs = sim.sample_pairs(num_pairs, seed=args.seed + 1)
        for name in args.schemes:
            row = run_cell(sim, graph, oracle, name, pairs, seed=args.seed + 2)
            rows.append(row)
            print(f"{row['n']:>6} {row['scheme']:>15} {row['build_s']:>8.1f} "
                  f"{row['compile_s']:>9.2f} {row['scalar_pps']:>11.0f} "
                  f"{row['lockstep_pps']:>13.0f} {row['speedup']:>7.1f}x "
                  f"{str(row['parity']):>7}")

    total_scalar = sum(r["scalar_s"] for r in rows)
    total_lockstep = sum(r["lockstep_s"] for r in rows)
    aggregate = total_scalar / total_lockstep if total_lockstep else float("inf")
    print(f"\naggregate speedup (sum of scalar time / sum of lockstep time): "
          f"{aggregate:.1f}x")

    payload = {
        "benchmark": "e14_forwarding_throughput",
        "sizes": sizes,
        "pairs": num_pairs,
        "schemes": args.schemes,
        "seed": args.seed,
        "backend": args.backend,
        "aggregate_speedup": round(aggregate, 2),
        "rows": rows,
        "meta": bench_meta(backend=args.backend),
    }
    write_bench_json(json_path, payload)
    print(f"wrote {json_path}")

    if args.assert_speedup:
        broken = [r for r in rows if not r["parity"]]
        assert not broken, f"engine parity broken for: {broken}"
        assert aggregate >= 1.0, (
            f"lockstep engine slower than scalar in aggregate ({aggregate:.2f}x)")
        print("assertions passed: parity everywhere, lockstep >= scalar")


if __name__ == "__main__":
    main()
