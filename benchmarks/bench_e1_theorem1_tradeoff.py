"""E1 — Theorem 1's space-stretch trade-off (DESIGN.md experiment index).

For each k, build the AGM scheme on the common workload and measure the
maximum/average stretch over sampled pairs and the per-node table size; the
theoretical references are recorded next to the measurements.
"""

import pytest

from benchmarks.conftest import record
from repro.core.analysis import lemma11_table_bits, stretch_bound, theorem1_table_bits
from repro.core.scheme import AGMRoutingScheme


@pytest.mark.bench
@pytest.mark.parametrize("k", [1, 2, 3])
def test_e1_tradeoff(benchmark, bench_graph, bench_oracle, bench_simulator, agm_params, k):
    def build_and_evaluate():
        scheme = AGMRoutingScheme.build(bench_graph, k=k, params=agm_params,
                                        oracle=bench_oracle, seed=17)
        report = bench_simulator.evaluate(scheme, num_pairs=80, seed=5)
        return scheme, report

    scheme, report = benchmark.pedantic(build_and_evaluate, rounds=1, iterations=1)
    assert report.failures == 0
    record(
        benchmark,
        experiment="E1",
        n=bench_graph.n,
        k=k,
        max_stretch=round(report.max_stretch, 3),
        avg_stretch=round(report.avg_stretch, 3),
        stretch_bound_linear=stretch_bound(k, constant=16),
        max_table_bits=report.max_table_bits,
        avg_table_bits=round(report.avg_table_bits),
        bits_bound_theorem1=round(theorem1_table_bits(bench_graph.n, k)),
        bits_bound_lemma11=round(lemma11_table_bits(bench_graph.n, k)),
        header_bits=report.max_header_bits,
        fallback_uses=scheme.fallback_uses,
    )
    # the measured stretch must respect the O(k) guarantee (generous constant)
    assert report.max_stretch <= 16 * k + 8
