"""Benchmark suite regenerating every experiment in DESIGN.md's index."""
