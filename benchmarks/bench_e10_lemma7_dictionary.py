"""E10 — Lemma 7: dictionary tree routing lookups on cover trees."""

import pytest

from benchmarks.conftest import record
from repro.core.analysis import lemma7_route_bound
from repro.covers.tree_cover import build_tree_cover
from repro.trees.error_reporting import DictionaryTreeRouting


@pytest.mark.bench
def test_e10_lemma7_lookup(benchmark, bench_graph, bench_oracle):
    k = 2
    rho = bench_oracle.diameter() / 4
    cover = build_tree_cover(bench_graph, k, rho, oracle=bench_oracle)
    tree = max(cover.trees, key=lambda t: t.size)
    names = {v: bench_graph.name_of(v) for v in tree.nodes}
    routing = DictionaryTreeRouting(tree, names, seed=61)
    sources = tree.nodes[:: max(tree.size // 10, 1)]
    targets = tree.nodes[:: max(tree.size // 10, 1)]

    def lookup_all():
        return [routing.lookup(s, names[t]) for s in sources for t in targets]

    results = benchmark(lookup_all)
    bound = lemma7_route_bound(tree.radius(), tree.max_edge(), k)
    assert all(r.found for r in results)
    assert all(r.cost <= bound + 1e-9 for r in results)
    record(
        benchmark,
        experiment="E10",
        tree_size=tree.size,
        lookups=len(results),
        max_lookup_cost=round(max(r.cost for r in results), 3),
        lemma7_bound=round(bound, 3),
        tree_radius=round(tree.radius(), 3),
        max_table_bits=routing.max_table_bits(),
        max_bucket_entries=routing.max_bucket_entries(),
    )
