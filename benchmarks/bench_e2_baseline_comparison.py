"""E2 — the Section 1.3 comparison: AGM vs the five baselines on one workload."""

import pytest

from benchmarks.conftest import record
from repro.factory import build_scheme

SCHEMES = ["shortest-path", "cowen", "thorup-zwick", "awerbuch-peleg", "exponential", "agm"]


@pytest.mark.bench
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_e2_comparison(benchmark, bench_graph, bench_oracle, bench_simulator,
                       agm_params, scheme_name):
    k = 3
    kwargs = {"params": agm_params} if scheme_name == "agm" else {}

    def build_and_evaluate():
        scheme = build_scheme(scheme_name, bench_graph, k=k, seed=23,
                              oracle=bench_oracle, **kwargs)
        report = bench_simulator.evaluate(scheme, num_pairs=80, seed=7)
        return scheme, report

    scheme, report = benchmark.pedantic(build_and_evaluate, rounds=1, iterations=1)
    assert report.failures == 0
    record(
        benchmark,
        experiment="E2",
        scheme=scheme_name,
        labeled=scheme.labeled,
        k=k,
        max_stretch=round(report.max_stretch, 3),
        avg_stretch=round(report.avg_stretch, 3),
        max_table_bits=report.max_table_bits,
        avg_table_bits=round(report.avg_table_bits),
        max_label_bits=report.max_label_bits,
        header_bits=report.max_header_bits,
    )
