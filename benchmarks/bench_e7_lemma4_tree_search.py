"""E7 — Lemma 4: name-independent tree searches (stretch and per-node storage)."""

import pytest

from benchmarks.conftest import record
from repro.core.analysis import lemma4_table_bits
from repro.graphs.generators import random_tree_graph
from repro.graphs.shortest_paths import shortest_path_tree
from repro.trees.name_independent import NameIndependentTreeRouting


@pytest.mark.bench
@pytest.mark.parametrize("k", [2, 3])
def test_e7_lemma4_search(benchmark, quick, k):
    m = 120 if quick else 400
    graph = random_tree_graph(m, seed=41)
    tree = shortest_path_tree(graph, 0)
    names = {v: graph.name_of(v) for v in tree.nodes}
    routing = NameIndependentTreeRouting(tree, names, k=k, seed=41)
    targets = [graph.name_of(v) for v in tree.nodes[:: max(tree.size // 40, 1)]]

    def search_all():
        return [routing.search_from_root(t) for t in targets]

    results = benchmark(search_all)
    assert all(r.found for r in results)
    worst_stretch = 0.0
    for r in results:
        node = r.destination
        if node is not None and tree.depth[node] > 0:
            worst_stretch = max(worst_stretch, r.cost / tree.depth[node])
    record(
        benchmark,
        experiment="E7",
        tree_size=tree.size,
        k=k,
        searches=len(targets),
        worst_root_stretch=round(worst_stretch, 2),
        stretch_bound=2 * routing.max_digits - 1,
        max_table_bits=routing.max_table_bits(),
        table_bound=round(lemma4_table_bits(tree.size, k, constant=200.0)),
        max_dictionary_entries=routing.max_dictionary_entries(),
    )
    assert worst_stretch <= 2 * routing.max_digits - 1 + 1e-9
