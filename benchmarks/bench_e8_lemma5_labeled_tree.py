"""E8 — Lemma 5: labeled tree routing (stretch 1, compact tables, short labels)."""

import pytest

from benchmarks.conftest import record
from repro.core.analysis import lemma5_label_bits, lemma5_table_bits
from repro.graphs.generators import random_tree_graph
from repro.graphs.shortest_paths import shortest_path_tree
from repro.trees.compact_labeled import CompactTreeRouting


@pytest.mark.bench
@pytest.mark.parametrize("k", [1, 2, 4])
def test_e8_lemma5_routing(benchmark, quick, k):
    m = 150 if quick else 500
    graph = random_tree_graph(m, seed=51)
    tree = shortest_path_tree(graph, 0)
    routing = CompactTreeRouting(tree, k=k)
    pairs = [(tree.nodes[i], tree.nodes[-1 - i]) for i in range(0, tree.size // 2,
                                                                max(tree.size // 60, 1))]

    def route_all():
        return [routing.walk(s, t) for s, t in pairs]

    walks = benchmark(route_all)
    for (s, t), (path, cost) in zip(pairs, walks):
        assert path[-1] == t
        assert cost == pytest.approx(tree.tree_distance(s, t))
    record(
        benchmark,
        experiment="E8",
        tree_size=tree.size,
        k=k,
        routes=len(pairs),
        stretch=1.0,
        max_table_bits=routing.max_table_bits(),
        table_bound=round(lemma5_table_bits(tree.size, k, constant=16.0)),
        max_label_bits=routing.max_label_bits(),
        label_bound=round(lemma5_label_bits(tree.size, k, constant=8.0)),
        max_light_edges=routing.max_light_edges(),
    )
