"""E5/E6 — empirical verification of Lemma 2, Lemma 3 and Claims 1-2 (Figures 1-2)."""

import pytest

from benchmarks.conftest import record
from repro.experiments import exp_lemma_properties


@pytest.mark.bench
def test_e5_e6_lemma_properties(benchmark, quick):
    def run():
        return exp_lemma_properties.run(quick=quick, seed=5, k=3)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    total_l2 = sum(r["lemma2_checked"] for r in result.rows)
    total_l3 = sum(r["lemma3_checked"] for r in result.rows)
    record(
        benchmark,
        experiment="E5/E6",
        lemma2_triples_checked=total_l2,
        lemma2_violations=sum(r["lemma2_violations"] for r in result.rows),
        lemma3_triples_checked=total_l3,
        lemma3_violations=sum(r["lemma3_violations"] for r in result.rows),
        claim1_holds=all(r["claim1_holds"] for r in result.rows),
        claim2_holds=all(r["claim2_holds"] for r in result.rows),
    )
    assert sum(r["lemma2_violations"] for r in result.rows) == 0
    assert sum(r["lemma3_violations"] for r in result.rows) == 0
