"""E19 — live network: traffic and churn interleaved on one seeded clock.

Drives :func:`repro.experiments.harness.run_live_matrix` — one
``LiveSimulator`` timeline per scheme over the *same* seeded event
sequence.  Per epoch the timeline captures the compiled forwarding
program, applies the scenario's churn batch, routes a probe batch on the
**stale** program over the mutated graph (staleness-window loss: packets
in flight between failure and repair), repairs the scheme with
``maintain()``, recompiles forwarding, and streams the epoch's traffic
through the service-loop engine.  Reported per (scheme, epoch): events,
staleness-window delivery, repair strategy/seconds, recompile seconds,
the post-repair SLA delivery rate and the streamed stretch/hop
statistics.

The default run keeps ``verify_determinism=True``: every epoch's official
statistics are re-derived under a different shard split and with the
fused kernels disabled (``REPRO_KERNELS=0``) and must match **bit for
bit** — the timeline's numbers do not depend on how the work was
partitioned or which engine routed it.

``--quick`` shrinks the run for CI; ``--assert`` fails the process unless
every post-repair epoch delivers 100% of reachable traffic, every epoch
passed the determinism cross-checks, and the flap scenario produced real
staleness-window loss for the timeline to account for.

Usage::

    PYTHONPATH=src python benchmarks/bench_e19_live.py
    PYTHONPATH=src python benchmarks/bench_e19_live.py \
        --n 20000 --epochs 5 --packets 100000
    PYTHONPATH=src python benchmarks/bench_e19_live.py \
        --quick --assert --json /tmp/bench_e19.json
"""

from __future__ import annotations

import argparse
import os

from repro.dynamics.scenario import SCENARIO_NAMES
from repro.experiments.harness import run_live_matrix
from repro.graphs.generators import make_graph

from common import bench_meta, default_json_path, write_bench_json

DEFAULT_N = 20_000
DEFAULT_EPOCHS = 5
DEFAULT_PACKETS = 100_000
DEFAULT_STALE = 4096
DEFAULT_SCHEMES = ["shortest-path", "cowen", "thorup-zwick"]
QUICK_N = 300
QUICK_EPOCHS = 2
QUICK_PACKETS = 4000
QUICK_STALE = 512


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=None,
                        help=f"graph size (default {DEFAULT_N})")
    parser.add_argument("--epochs", type=int, default=None,
                        help=f"churn epochs (default {DEFAULT_EPOCHS})")
    parser.add_argument("--packets", type=int, default=None,
                        help=f"packets per epoch (default {DEFAULT_PACKETS})")
    parser.add_argument("--stale-packets", type=int, default=None,
                        help="probe packets per staleness window "
                             f"(default {DEFAULT_STALE})")
    parser.add_argument("--schemes", nargs="+", default=DEFAULT_SCHEMES)
    parser.add_argument("--scenario", default="flap-heavy",
                        choices=list(SCENARIO_NAMES))
    parser.add_argument("--family", default="barabasi-albert")
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--backend", default="lazy",
                        choices=["auto", "dense", "lazy"],
                        help="distance backend for each scheme's oracle")
    parser.add_argument("--scoring", default=None,
                        choices=["exact", "sampled", "landmark"],
                        help="stretch scoring mode (default: landmark at "
                             "full size, exact under --quick)")
    parser.add_argument("--no-verify", dest="verify", action="store_false",
                        help="skip the per-epoch determinism cross-checks "
                             "(3x less routing, no bit-identity guarantee)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small graph, short timeline")
    parser.add_argument("--assert", dest="check", action="store_true",
                        help="exit non-zero unless post-repair delivery is "
                             "total and every determinism check passed")
    parser.add_argument("--json", default=None,
                        help="where to write the JSON rows "
                             "(default: BENCH_e19.json beside the repo root)")
    args = parser.parse_args()

    args.n = args.n or (QUICK_N if args.quick else DEFAULT_N)
    args.epochs = args.epochs or (QUICK_EPOCHS if args.quick else DEFAULT_EPOCHS)
    args.packets = args.packets or (QUICK_PACKETS if args.quick else DEFAULT_PACKETS)
    if args.stale_packets is None:
        args.stale_packets = QUICK_STALE if args.quick else DEFAULT_STALE
    # exact scoring is exact-oracle work per packet — fine at smoke scale,
    # certified landmark bounds at full scale (as in E18)
    scoring = args.scoring or ("exact" if args.quick else "landmark")
    json_path = args.json or default_json_path(__file__, "BENCH_e19.json")

    print(f"# E19: live timeline '{args.scenario}' at n={args.n}, "
          f"{args.epochs} epochs x {args.packets} packets, "
          f"scoring {scoring}, verify={args.verify}")
    result = run_live_matrix(
        "e19_live",
        args.schemes,
        lambda: make_graph(args.family, n=args.n, seed=args.seed),
        scenario=args.scenario,
        k=args.k,
        epochs=args.epochs,
        epoch_packets=args.packets,
        stale_packets=args.stale_packets,
        seed=args.seed,
        backend=args.backend if args.backend != "auto" else None,
        scoring=scoring,
        verify_determinism=args.verify,
    )

    header = (f"{'scheme':>15} {'ep':>3} {'events':>6} {'stale':>6} "
              f"{'sla':>7} {'repair':>13} {'rep_s':>7} {'recmp_s':>8} "
              f"{'pps':>9} {'checked':>7}")
    print(header)
    print("-" * len(header))
    for row in result.rows:
        print(f"{row['scheme']:>15} {row['epoch']:>3} {row['events']:>6} "
              f"{row['stale_delivery']:>6.3f} {row['delivery_rate']:>7.4f} "
              f"{row['repair_strategy']:>13} {row['repair_seconds']:>7.3f} "
              f"{row['recompile_seconds']:>8.3f} {row['pps']:>9.0f} "
              f"{str(row['determinism_checked']):>7}")

    print("\ntimeline summaries:")
    for scheme, summary in result.metadata["timelines"].items():
        print(f"  {scheme:>15}: min SLA delivery "
              f"{summary['min_delivery_rate']:.4f}, worst window loss "
              f"{summary['max_stale_loss']:.3f}, repair "
              f"{summary['total_repair_seconds']:.3f}s over "
              f"{summary['epochs'] - 1} repairs")

    payload = {
        "benchmark": "e19_live",
        "n": args.n,
        "epochs": args.epochs,
        "packets_per_epoch": args.packets,
        "stale_packets": args.stale_packets,
        "scenario": args.scenario,
        "schemes": args.schemes,
        "k": args.k,
        "seed": args.seed,
        "backend": args.backend,
        "scoring": scoring,
        "verify_determinism": args.verify,
        "timelines": result.metadata["timelines"],
        "rows": result.rows,
        "meta": bench_meta(backend=args.backend),
    }
    write_bench_json(json_path, payload)
    print(f"wrote {json_path}")

    if args.check:
        undelivered = [r for r in result.rows
                       if r["epoch"] > 0 and r["delivery_rate"] < 1.0]
        assert not undelivered, (
            f"SLA broken: delivery below 100% after repair: {undelivered[:3]}")
        if args.verify:
            unchecked = [r for r in result.rows
                         if not r["determinism_checked"]]
            assert not unchecked, (
                f"determinism cross-check missing: {unchecked[:3]}")
        lossy = [r for r in result.rows
                 if r["epoch"] > 0 and r["stale_loss"] > 0]
        assert lossy, ("no staleness-window loss anywhere — the scenario "
                       "never exercised stale state")
        print("assertions passed: full post-repair delivery, determinism "
              "checks everywhere, staleness window observed real loss")


if __name__ == "__main__":
    main()
