"""E4 — stretch growth in k: AGM (linear) vs the prior scale-free family (super-linear)."""

import pytest

from benchmarks.conftest import record
from repro.factory import build_scheme


@pytest.mark.bench
@pytest.mark.parametrize("scheme_name", ["agm", "exponential"])
def test_e4_stretch_vs_k(benchmark, bench_graph, bench_oracle, bench_simulator,
                         agm_params, quick, scheme_name):
    ks = [1, 2, 3] if quick else [1, 2, 3, 4, 5]

    def sweep():
        rows = []
        for k in ks:
            kwargs = {"params": agm_params} if scheme_name == "agm" else {}
            scheme = build_scheme(scheme_name, bench_graph, k=k, seed=31,
                                  oracle=bench_oracle, **kwargs)
            report = bench_simulator.evaluate(scheme, num_pairs=70, seed=9)
            rows.append((k, report))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(report.failures == 0 for _, report in rows)
    record(
        benchmark,
        experiment="E4",
        scheme=scheme_name,
        ks=ks,
        max_stretch=[round(r.max_stretch, 2) for _, r in rows],
        avg_stretch=[round(r.avg_stretch, 2) for _, r in rows],
        max_table_bits=[r.max_table_bits for _, r in rows],
    )
