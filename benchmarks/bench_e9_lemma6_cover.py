"""E9 — Lemma 6: tree-cover construction (cover, sparsity, radius, edge bounds)."""

import math

import pytest

from benchmarks.conftest import record
from repro.core.analysis import lemma6_membership
from repro.covers.tree_cover import build_tree_cover


@pytest.mark.bench
@pytest.mark.parametrize("k", [2, 3])
def test_e9_lemma6_cover(benchmark, bench_graph, bench_oracle, k):
    rho = bench_oracle.diameter() / 8

    def build():
        return build_tree_cover(bench_graph, k, rho, oracle=bench_oracle)

    cover = benchmark.pedantic(build, rounds=1, iterations=1)
    covered = all(cover.covers_ball(v, bench_oracle) for v in range(bench_graph.n))
    record(
        benchmark,
        experiment="E9",
        n=bench_graph.n,
        k=k,
        rho=round(rho, 3),
        num_trees=len(cover.trees),
        cover_property=covered,
        max_membership=cover.max_membership(),
        membership_bound=round(lemma6_membership(bench_graph.n, k)),
        max_radius_over_rho=round(cover.max_radius() / rho, 2),
        radius_bound_over_rho=2 * k + 3,
        max_edge_over_rho=round(cover.max_edge() / rho, 2),
    )
    assert covered
    assert cover.max_radius() <= (2 * k + 3) * rho + 1e-9
    assert cover.max_edge() <= 2 * rho + 1e-9
    assert cover.max_membership() <= 4 * k * math.ceil(bench_graph.n ** (1 / k)) + 4
