"""Shared benchmark plumbing: run metadata for every ``BENCH_*.json``.

Every bench emitter stamps its payload with :func:`bench_meta` so a committed
JSON records not just the numbers but the conditions they were measured
under — peak RSS, the distance-backend and scoring modes in force, the
memory budget, and whether the JIT kernels were active.  Scale results
(e18) are meaningless without these: 40 GB of dense rows versus a 16 GB
budget with memmapped spill produce very different "seconds" columns.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import tempfile
from typing import Dict, Optional


def write_bench_json(path: str, payload: object) -> None:
    """Atomically write a bench payload: temp file + rename on completion.

    A ``BENCH_*.json`` must never exist half-written — a reader (or a commit)
    racing a crashed or still-running bench would ship truncated JSON.  The
    payload is serialized to a temp file in the destination directory and
    ``os.replace``d into place, so the final path only ever holds a complete
    document (rename within one filesystem is atomic on POSIX).
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    bytes.  The value is monotone over the life of the process — callers
    that need a per-stage peak must fork the stage into a child process
    and read the child's own peak (see ``bench_e18_scale``).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def default_json_path(script_file: str, filename: str) -> str:
    """The committed artifact path for a bench: ``<repo root>/<filename>``.

    Every emitter writes its ``BENCH_*.json`` beside the repo root (one
    directory above ``benchmarks/``); this replaces the copy-pasted
    ``dirname(dirname(abspath(__file__)))`` incantation in each script.
    """
    return os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(script_file))),
        filename)


def assert_all_delivered(rows, packets_key: str = "packets") -> None:
    """The shared delivery gate: zero failures, exact packet accounting.

    Raises ``AssertionError`` naming the offending ``(n, scheme)`` rungs.
    Benches with extra gates (speedup thresholds, parity) layer them on
    top of this one.
    """
    bad = [r for r in rows if r.get("failures", 0) != 0]
    assert not bad, \
        f"delivery failures at: {[(r.get('n'), r.get('scheme')) for r in bad]}"
    assert all(r["delivered"] + r.get("unreachable", 0) == r[packets_key]
               for r in rows if "delivered" in r), "packet accounting mismatch"


def numba_version() -> str:
    """The importable numba version, or ``"absent"``.

    Recorded in every bench meta block: a ``REPRO_JIT=1`` run where numba
    is absent silently falls back to the numpy kernels, and the committed
    numbers must say which path actually executed.
    """
    try:
        import numba
        return str(numba.__version__)
    except Exception:
        return "absent"


def bench_meta(backend: Optional[str] = None,
               scoring: Optional[str] = None) -> Dict[str, object]:
    """Metadata block recorded in every bench payload.

    ``backend``/``scoring`` override the environment-derived defaults when
    the script chose them explicitly (e.g. e18 forces ``lazy`` + an
    approximate scoring mode regardless of the environment).
    """
    from repro.storage import memory_budget, storage_report

    budget = memory_budget()
    report = storage_report()
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "backend": backend or os.environ.get("REPRO_DISTANCE_BACKEND", "auto"),
        "scoring": scoring or "exact",
        "memory_budget_bytes": budget,
        "spilled_bytes": report["spilled_bytes"],
        "spill_count": report["spill_count"],
        "spill_live_bytes": report.get("spill_live_bytes", 0),
        "spill_high_water_bytes": report.get("spill_high_water_bytes", 0),
        "jit": os.environ.get("REPRO_JIT", "0") == "1",
        "numba": numba_version(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }
