"""Shared benchmark plumbing: run metadata for every ``BENCH_*.json``.

Every bench emitter stamps its payload with :func:`bench_meta` so a committed
JSON records not just the numbers but the conditions they were measured
under — peak RSS, the distance-backend and scoring modes in force, the
memory budget, and whether the JIT kernels were active.  Scale results
(e18) are meaningless without these: 40 GB of dense rows versus a 16 GB
budget with memmapped spill produce very different "seconds" columns.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import tempfile
from typing import Dict, Optional


def write_bench_json(path: str, payload: object) -> None:
    """Atomically write a bench payload: temp file + rename on completion.

    A ``BENCH_*.json`` must never exist half-written — a reader (or a commit)
    racing a crashed or still-running bench would ship truncated JSON.  The
    payload is serialized to a temp file in the destination directory and
    ``os.replace``d into place, so the final path only ever holds a complete
    document (rename within one filesystem is atomic on POSIX).
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize to
    bytes.  The value is monotone over the life of the process — callers
    that need a per-stage peak must fork the stage into a child process
    and read the child's own peak (see ``bench_e18_scale``).
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def bench_meta(backend: Optional[str] = None,
               scoring: Optional[str] = None) -> Dict[str, object]:
    """Metadata block recorded in every bench payload.

    ``backend``/``scoring`` override the environment-derived defaults when
    the script chose them explicitly (e.g. e18 forces ``lazy`` + an
    approximate scoring mode regardless of the environment).
    """
    from repro.storage import memory_budget, storage_report

    budget = memory_budget()
    report = storage_report()
    return {
        "peak_rss_bytes": peak_rss_bytes(),
        "backend": backend or os.environ.get("REPRO_DISTANCE_BACKEND", "auto"),
        "scoring": scoring or "exact",
        "memory_budget_bytes": budget,
        "spilled_bytes": report["spilled_bytes"],
        "spill_count": report["spill_count"],
        "jit": os.environ.get("REPRO_JIT", "0") == "1",
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
    }
