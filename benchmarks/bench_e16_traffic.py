"""E16 — traffic engine: million-packet sharded streaming vs single process.

Two stages:

**Parity** (small ``--parity-n`` graph, dense backend): the streamed
statistics are cross-checked against ground truth and across configurations —

* exact: per-packet stretch/hop arrays (``run_traffic_exact``) vs the
  streamed histogram and P² quantiles (histogram within its documented
  relative-error bound, P² within a loose tolerance; count/max/avg exact);
* shards: ``shards ∈ {1, 2}`` produce identical official statistics;
* engines: scalar vs lockstep produce identical statistics.

**Throughput** (``--n`` nodes, lazy backend — no O(n²) distance matrix):
every scheme in ``--schemes`` routes ``--packets`` packets of Zipf-skewed
traffic twice — once single-process (``shards=1``) and once sharded across
``--shards`` forked workers sharing the spawn-once compiled forwarding
program — reporting packets/second for both, the sharded speedup, and
whether the two runs' streamed statistics agree (they must).  The hot
destinations' distance rows are prefetched by ``run_traffic`` *outside* its
timed region (both runs alike), so the speedup compares routing engines at
equal cache state rather than whichever run happened to warm the oracle
first.

Sharded speedup scales with *available cores*: the workers are full
processes, so on a ``c``-core machine the expected speedup is ~``min(shards,
c)``, and on a single-core machine ~1x (the run degenerates to time-sliced
workers; ``cpu_count`` is recorded in the JSON so trajectories from
different machines are comparable).  ``--assert-speedup`` gates accordingly.

Usage::

    PYTHONPATH=src python benchmarks/bench_e16_traffic.py
    PYTHONPATH=src python benchmarks/bench_e16_traffic.py \
        --n 20000 --packets 1000000 --schemes shortest-path cowen --shards 4
    PYTHONPATH=src python benchmarks/bench_e16_traffic.py \
        --quick --assert-speedup --json /tmp/bench_e16.json
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.experiments.workloads import make_workload
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.backends import LazyDijkstraBackend
from repro.graphs.shortest_paths import DistanceOracle
from repro.traffic.engine import run_traffic, run_traffic_exact
from repro.traffic.models import make_traffic_model
from repro.traffic.stats import LOG_QUANTILE_RTOL

from common import (assert_all_delivered, bench_meta, default_json_path,
                    write_bench_json)

DEFAULT_N = 20000
DEFAULT_PACKETS = 1_000_000
DEFAULT_SCHEMES = ["shortest-path", "cowen"]
DEFAULT_SHARDS = 4
DEFAULT_BATCH = 16384
DEFAULT_SUPPORT = 512
QUICK_N = 400
QUICK_PACKETS = 60_000
QUICK_SCHEMES = ["cowen"]
QUICK_SHARDS = 2

#: quantile tolerance vs ground truth: histogram buckets are ~0.54% wide;
#: allow a few buckets of slack for nearest-rank vs interpolated ranks
HIST_RTOL = max(8 * LOG_QUANTILE_RTOL, 0.02)
P2_RTOL = 0.05


def close(a: float, b: float, rtol: float) -> bool:
    return bool(abs(a - b) <= rtol * max(abs(a), abs(b), 1e-12))


def parity_stage(args) -> dict:
    """Small-graph ground-truth and cross-configuration checks."""
    n = args.parity_n
    graph = make_workload("barabasi-albert", n, seed=args.seed)
    oracle = DistanceOracle(graph, backend="dense")
    scheme = build_scheme("cowen", graph, k=2, seed=args.seed + 2, oracle=oracle)
    model = make_traffic_model("zipf", graph, seed=args.seed + 3,
                               support=min(64, n // 4))

    streamed = run_traffic(scheme, model, args.parity_packets,
                           shards=1, engine="lockstep", oracle=oracle)
    sharded = run_traffic(scheme, model, args.parity_packets,
                          shards=2, engine="lockstep", oracle=oracle)
    exact = run_traffic_exact(scheme, model, args.parity_packets,
                              engine="lockstep", oracle=oracle)
    summary = streamed.summary()
    stretch = exact["stretch"]

    quantile_checks = {}
    for q in (50, 95, 99):
        true = float(np.percentile(stretch, q))
        quantile_checks[f"p{q}"] = {
            "exact": true,
            "histogram": summary[f"stretch_p{q}"],
            "histogram_ok": close(summary[f"stretch_p{q}"], true, HIST_RTOL),
        }
        p2_key = f"stretch_p2_p{q}"
        if p2_key in summary:
            quantile_checks[f"p{q}"]["p2"] = summary[p2_key]
            quantile_checks[f"p{q}"]["p2_ok"] = close(summary[p2_key], true,
                                                      P2_RTOL)

    exact_fields_ok = (
        int(summary["stretch_count"]) == int(stretch.size)
        and summary["max_stretch"] == float(stretch.max())
        and close(summary["avg_stretch"], float(stretch.mean()), 1e-9)
        and int(summary["delivered"]) == int(exact["found"].sum())
        and int(summary["hops_count"]) == int(exact["hops"].size)
        and summary["max_hops"] == float(exact["hops"].max())
    )
    shard_parity = streamed.summary(include_p2=False) \
        == sharded.summary(include_p2=False)

    scalar = run_traffic(scheme, model, args.parity_scalar_packets,
                         shards=1, engine="scalar", oracle=oracle)
    lockstep = run_traffic(scheme, model, args.parity_scalar_packets,
                           shards=1, engine="lockstep", oracle=oracle)
    engine_parity = scalar.summary() == lockstep.summary()

    sketch_ok = all(c["histogram_ok"] and c.get("p2_ok", True)
                    for c in quantile_checks.values())
    return {
        "n": n,
        "packets": args.parity_packets,
        "scalar_packets": args.parity_scalar_packets,
        "quantiles": quantile_checks,
        "exact_fields_ok": exact_fields_ok,
        "sketch_ok": sketch_ok,
        "shard_parity": shard_parity,
        "engine_parity": engine_parity,
        "ok": exact_fields_ok and sketch_ok and shard_parity and engine_parity,
    }


def throughput_stage(args) -> list:
    """The headline runs: packets/second, single-process vs sharded."""
    graph = make_workload("barabasi-albert", args.n, seed=args.seed)
    support = min(args.zipf_support, max(args.n // 4, 8))
    backend = LazyDijkstraBackend(graph, cache_rows=support + 64)
    oracle = DistanceOracle(graph, backend=backend)
    model = make_traffic_model("zipf", graph, seed=args.seed + 1,
                               support=support)
    rows = []
    for name in args.schemes:
        t0 = time.perf_counter()
        scheme = build_scheme(name, graph, k=2, seed=args.seed + 2,
                              oracle=oracle)
        build_s = time.perf_counter() - t0

        single = run_traffic(scheme, model, args.packets, shards=1,
                             batch_size=args.batch, engine="lockstep",
                             oracle=oracle, profile=args.profile)
        sharded = run_traffic(scheme, model, args.packets, shards=args.shards,
                              batch_size=args.batch, engine="lockstep",
                              oracle=oracle, profile=args.profile)
        summary = single.summary()
        row = {
            "n": args.n,
            "scheme": name,
            "model": model.name,
            "zipf_support": support,
            "packets": args.packets,
            "batch_size": args.batch,
            "build_s": round(build_s, 2),
            "single_s": round(single.seconds, 2),
            "single_pps": round(single.pps, 1),
            "sharded_s": round(sharded.seconds, 2),
            "sharded_pps": round(sharded.pps, 1),
            "sharded_speedup": round(sharded.pps / single.pps, 3),
            "shards": args.shards,
            "used_processes": sharded.processes,
            "stats_match": single.summary(include_p2=False)
            == sharded.summary(include_p2=False),
            "delivered": int(summary["delivered"]),
            "failures": int(summary["failures"]),
            "avg_stretch": summary["avg_stretch"],
            "p95_stretch": summary["stretch_p95"],
            "max_stretch": summary["max_stretch"],
            "avg_hops": summary["avg_hops"],
            "p95_hops": summary["hops_p95"],
        }
        if args.profile:
            # per-stage wall seconds (plan/step/verify/score/reduce) for
            # both runs; the sharded dict sums stage time across workers
            row["profile_single"] = {k: round(v, 3) for k, v
                                     in sorted((single.profile or {}).items())}
            row["profile_sharded"] = {k: round(v, 3) for k, v
                                      in sorted((sharded.profile or {}).items())}
        rows.append(row)
        print(f"{row['n']:>6} {row['scheme']:>15} build {row['build_s']:>7.1f}s "
              f"single {row['single_pps']:>9.0f} pps  sharded({args.shards}) "
              f"{row['sharded_pps']:>9.0f} pps  speedup {row['sharded_speedup']:>5.2f}x "
              f"match {row['stats_match']}")
    return rows


def speedup_threshold(shards: int, quick: bool) -> float:
    """Core-aware gate: processes cannot beat the hardware they run on."""
    effective = min(shards, os.cpu_count() or 1)
    if effective <= 1:
        # single core: sharding is time-slicing; only guard against
        # pathological fork/merge overhead
        return 0.5
    if quick:
        return 1.15
    return min(2.0, 0.75 * effective)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=list(SCHEME_NAMES))
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--zipf-support", type=int, default=DEFAULT_SUPPORT)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--parity-n", type=int, default=None)
    parser.add_argument("--parity-packets", type=int, default=None)
    parser.add_argument("--parity-scalar-packets", type=int, default=None)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small graph, fewer packets")
    parser.add_argument("--profile", action="store_true",
                        help="record the per-stage wall-time breakdown "
                             "(plan/step/verify/score/reduce) in the JSON rows")
    parser.add_argument("--assert-speedup", action="store_true",
                        help="exit non-zero unless parity holds everywhere, "
                             "all packets are delivered, and the sharded "
                             "speedup clears the core-aware threshold")
    parser.add_argument("--json", default=None,
                        help="where to write the JSON rows "
                             "(default: BENCH_e16.json beside the repo root)")
    args = parser.parse_args()

    args.n = args.n or (QUICK_N if args.quick else DEFAULT_N)
    args.packets = args.packets or (QUICK_PACKETS if args.quick
                                    else DEFAULT_PACKETS)
    args.schemes = args.schemes or (QUICK_SCHEMES if args.quick
                                    else DEFAULT_SCHEMES)
    args.shards = args.shards or (QUICK_SHARDS if args.quick
                                  else DEFAULT_SHARDS)
    args.parity_n = args.parity_n or (QUICK_N if args.quick else 1000)
    args.parity_packets = args.parity_packets or (8000 if args.quick
                                                  else 50_000)
    args.parity_scalar_packets = args.parity_scalar_packets or \
        (2000 if args.quick else 4000)
    json_path = args.json or default_json_path(__file__, "BENCH_e16.json")

    print("# E16: traffic engine — streamed statistics parity + sharded throughput")
    parity = parity_stage(args)
    print(f"parity (n={parity['n']}): exact-fields {parity['exact_fields_ok']} "
          f"sketch {parity['sketch_ok']} shards {parity['shard_parity']} "
          f"engines {parity['engine_parity']}")

    rows = throughput_stage(args)
    threshold = speedup_threshold(args.shards, args.quick)
    total_packets = sum(2 * r["packets"] for r in rows)
    payload = {
        "benchmark": "e16_traffic",
        "n": args.n,
        "packets_per_run": args.packets,
        "total_packets_routed": total_packets,
        "schemes": args.schemes,
        "shards": args.shards,
        "batch_size": args.batch,
        "backend": "lazy",
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "speedup_threshold": threshold,
        "parity": parity,
        "rows": rows,
        "meta": bench_meta(backend="lazy"),
    }
    write_bench_json(json_path, payload)
    print(f"wrote {json_path}")

    if args.assert_speedup:
        assert parity["ok"], f"parity stage failed: {parity}"
        mismatched = [r["scheme"] for r in rows if not r["stats_match"]]
        assert not mismatched, \
            f"sharded statistics diverge from single-process: {mismatched}"
        assert_all_delivered(rows)
        slow = [r for r in rows if r["sharded_speedup"] < threshold]
        assert not slow, (
            f"sharded speedup below the core-aware threshold {threshold:.2f}x "
            f"({os.cpu_count()} cores): "
            f"{[(r['scheme'], r['sharded_speedup']) for r in slow]}")
        print(f"assertions passed: parity everywhere, statistics identical "
              f"across shards, speedup >= {threshold:.2f}x")


if __name__ == "__main__":
    main()
