"""E17 — fused hop kernels: the kernel-vs-legacy throughput ladder.

The tentpole measurement of the fused lockstep executor
(:mod:`repro.routing.kernels`): every scheme in ``--schemes`` routes
``--packets`` packets of Zipf-skewed traffic through four configurations —

* **legacy** — the per-step lockstep loop (``REPRO_KERNELS=0``), single
  process; the pre-kernel baseline;
* **kernel** — the fused per-program-type cohort executor, single process;
* **kernel+service** — fused kernels under the steady-state service loop
  (warm per-shard batch buffers, per-epoch stats flushes);
* **kernel+shards** — fused kernels across ``--shards`` forked workers with
  the compiled program and pinned hot distance rows published once in
  shared memory.

All four runs must produce bit-identical official streamed statistics
(asserted), so the ladder is a pure throughput comparison.  The JSON also
records per-core pps (sharded pps divided by the effective core count) and,
when a ``BENCH_e16.json`` rung is present beside the repo root, the speedup
of the fused engine over that recorded pre-kernel baseline per scheme.

Usage::

    PYTHONPATH=src python benchmarks/bench_e17_throughput.py
    PYTHONPATH=src python benchmarks/bench_e17_throughput.py \
        --n 20000 --packets 1000000 --schemes shortest-path cowen
    PYTHONPATH=src python benchmarks/bench_e17_throughput.py \
        --quick --assert-speedup --json /tmp/bench_e17.json
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.experiments.workloads import make_workload
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.backends import LazyDijkstraBackend
from repro.graphs.shortest_paths import DistanceOracle
from repro.traffic.engine import run_traffic
from repro.traffic.models import make_traffic_model

from common import (assert_all_delivered, bench_meta, default_json_path,
                    write_bench_json)

DEFAULT_N = 20000
DEFAULT_PACKETS = 1_000_000
DEFAULT_SCHEMES = ["shortest-path", "cowen"]
DEFAULT_SHARDS = 4
DEFAULT_BATCH = 16384
DEFAULT_SUPPORT = 512
QUICK_N = 400
QUICK_PACKETS = 60_000
QUICK_SCHEMES = ["cowen"]
QUICK_SHARDS = 2


def kernel_env(enabled: bool):
    """Context manager flipping the fused-kernel dispatch for one run."""
    class _Ctx:
        def __enter__(self):
            self._prev = os.environ.get("REPRO_KERNELS")
            os.environ["REPRO_KERNELS"] = "1" if enabled else "0"

        def __exit__(self, *exc):
            if self._prev is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = self._prev

    return _Ctx()


def load_e16_baseline(json_path: str) -> dict:
    """``scheme -> single-process pps`` from the recorded E16 rung, if any."""
    e16_path = os.path.join(os.path.dirname(json_path), "BENCH_e16.json")
    try:
        with open(e16_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return {}
    return {row["scheme"]: float(row["single_pps"])
            for row in payload.get("rows", [])
            if "scheme" in row and "single_pps" in row}


def ladder_stage(args, baseline_pps: dict) -> list:
    graph = make_workload("barabasi-albert", args.n, seed=args.seed)
    support = min(args.zipf_support, max(args.n // 4, 8))
    backend = LazyDijkstraBackend(graph, cache_rows=support + 64)
    oracle = DistanceOracle(graph, backend=backend)
    model = make_traffic_model("zipf", graph, seed=args.seed + 1,
                               support=support)
    rows = []
    for name in args.schemes:
        t0 = time.perf_counter()
        scheme = build_scheme(name, graph, k=2, seed=args.seed + 2,
                              oracle=oracle)
        build_s = time.perf_counter() - t0

        with kernel_env(False):
            legacy = run_traffic(scheme, model, args.packets, shards=1,
                                 batch_size=args.batch, engine="lockstep",
                                 oracle=oracle, profile=args.profile)
        with kernel_env(True):
            kernel = run_traffic(scheme, model, args.packets, shards=1,
                                 batch_size=args.batch, engine="lockstep",
                                 oracle=oracle, profile=args.profile)
            service = run_traffic(scheme, model, args.packets, shards=1,
                                  batch_size=args.batch, engine="lockstep",
                                  oracle=oracle, service=True)
            sharded = run_traffic(scheme, model, args.packets,
                                  shards=args.shards, batch_size=args.batch,
                                  engine="lockstep", oracle=oracle)

        official = legacy.summary(include_p2=False)
        stats_match = all(r.summary(include_p2=False) == official
                          for r in (kernel, service, sharded))
        cores = min(args.shards, os.cpu_count() or 1)
        summary = kernel.summary()
        row = {
            "n": args.n,
            "scheme": name,
            "model": model.name,
            "zipf_support": support,
            "packets": args.packets,
            "batch_size": args.batch,
            "build_s": round(build_s, 2),
            "legacy_pps": round(legacy.pps, 1),
            "kernel_pps": round(kernel.pps, 1),
            "service_pps": round(service.pps, 1),
            "sharded_pps": round(sharded.pps, 1),
            "kernel_speedup": round(kernel.pps / legacy.pps, 3),
            "service_speedup": round(service.pps / legacy.pps, 3),
            "per_core_pps": round(sharded.pps / cores, 1),
            "shards": args.shards,
            "used_processes": sharded.processes,
            "used_shared_memory": sharded.shared_memory,
            "stats_match": stats_match,
            "delivered": int(summary["delivered"]),
            "failures": int(summary["failures"]),
            "avg_stretch": summary["avg_stretch"],
            "p95_stretch": summary["stretch_p95"],
        }
        if args.profile:
            row["profile_legacy"] = {k: round(v, 3) for k, v
                                     in sorted((legacy.profile or {}).items())}
            row["profile_kernel"] = {k: round(v, 3) for k, v
                                     in sorted((kernel.profile or {}).items())}
        if name in baseline_pps:
            row["e16_single_pps"] = baseline_pps[name]
            row["e16_speedup"] = round(kernel.pps / baseline_pps[name], 3)
        rows.append(row)
        e16_note = (f"  vs-e16 {row['e16_speedup']:.2f}x"
                    if "e16_speedup" in row else "")
        print(f"{row['n']:>6} {row['scheme']:>15} "
              f"legacy {row['legacy_pps']:>9.0f} pps  "
              f"kernel {row['kernel_pps']:>9.0f} pps "
              f"({row['kernel_speedup']:.2f}x)  service "
              f"{row['service_pps']:>9.0f}  sharded({args.shards}) "
              f"{row['sharded_pps']:>9.0f}  match {stats_match}{e16_note}")
    return rows


def speedup_threshold(quick: bool) -> float:
    """Kernel-vs-legacy gate (same process, same core — no core scaling).

    Quick mode runs a 400-node graph where per-batch numpy overhead still
    dominates, so the gate only asserts the fused path is not a regression;
    the full ladder at n=20000 is where the multiples show up.
    """
    return 1.05 if quick else 1.5


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument("--schemes", nargs="+", default=None,
                        choices=list(SCHEME_NAMES))
    parser.add_argument("--shards", type=int, default=None)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--zipf-support", type=int, default=DEFAULT_SUPPORT)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small graph, fewer packets")
    parser.add_argument("--profile", action="store_true",
                        help="record per-stage wall-time breakdowns per run")
    parser.add_argument("--assert-speedup", action="store_true",
                        help="exit non-zero unless statistics are identical "
                             "across all four configurations, all packets "
                             "are delivered, and the fused kernels clear "
                             "the kernel-vs-legacy threshold")
    parser.add_argument("--json", default=None,
                        help="where to write the JSON rows "
                             "(default: BENCH_e17.json beside the repo root)")
    args = parser.parse_args()

    args.n = args.n or (QUICK_N if args.quick else DEFAULT_N)
    args.packets = args.packets or (QUICK_PACKETS if args.quick
                                    else DEFAULT_PACKETS)
    args.schemes = args.schemes or (QUICK_SCHEMES if args.quick
                                    else DEFAULT_SCHEMES)
    args.shards = args.shards or (QUICK_SHARDS if args.quick
                                  else DEFAULT_SHARDS)
    json_path = args.json or default_json_path(__file__, "BENCH_e17.json")

    print("# E17: fused hop kernels — kernel vs legacy throughput ladder")
    baseline_pps = load_e16_baseline(json_path)
    rows = ladder_stage(args, baseline_pps)
    threshold = speedup_threshold(args.quick)
    payload = {
        "benchmark": "e17_throughput",
        "n": args.n,
        "packets_per_run": args.packets,
        "total_packets_routed": sum(4 * r["packets"] for r in rows),
        "schemes": args.schemes,
        "shards": args.shards,
        "batch_size": args.batch,
        "backend": "lazy",
        "seed": args.seed,
        "cpu_count": os.cpu_count(),
        "kernel_speedup_threshold": threshold,
        "rows": rows,
        "meta": bench_meta(backend="lazy"),
    }
    write_bench_json(json_path, payload)
    print(f"wrote {json_path}")

    if args.assert_speedup:
        mismatched = [r["scheme"] for r in rows if not r["stats_match"]]
        assert not mismatched, \
            f"kernel/service/sharded statistics diverge from legacy: {mismatched}"
        assert_all_delivered(rows)
        slow = [r for r in rows if r["kernel_speedup"] < threshold]
        assert not slow, (
            f"fused kernels below the {threshold:.2f}x kernel-vs-legacy "
            f"threshold: "
            f"{[(r['scheme'], r['kernel_speedup']) for r in slow]}")
        print(f"assertions passed: statistics identical across the ladder, "
              f"kernel speedup >= {threshold:.2f}x")


if __name__ == "__main__":
    main()
