"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the experiment tables/figures listed in
DESIGN.md §2 and records the reproduced rows in ``benchmark.extra_info`` so
that ``pytest benchmarks/ --benchmark-only`` both times the operations and
leaves the measured numbers in the report (the source for EXPERIMENTS.md).

Sizes default to the *quick* workloads; set ``REPRO_BENCH_FULL=1`` for the
larger ones.
"""

from __future__ import annotations

import pytest

from repro.core.params import AGMParams
from repro.experiments.workloads import full_mode, make_workload
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark reproducing a paper experiment")


@pytest.fixture(scope="session")
def quick() -> bool:
    """Whether to use the small workloads (default) or the full ones."""
    return not full_mode()


@pytest.fixture(scope="session")
def bench_graph(quick):
    """The common workload graph used by most benches (random geometric)."""
    return make_workload("geometric", 64 if quick else 192, seed=11)


@pytest.fixture(scope="session")
def bench_oracle(bench_graph):
    """Distance oracle of the common workload graph."""
    return DistanceOracle(bench_graph)


@pytest.fixture(scope="session")
def bench_simulator(bench_graph, bench_oracle):
    """Simulator bound to the common workload graph."""
    return RoutingSimulator(bench_graph, oracle=bench_oracle)


@pytest.fixture(scope="session")
def agm_params():
    """Scaled experiment constants (exponents untouched); see DESIGN.md §3."""
    return AGMParams.experiment()


def record(benchmark, **info) -> None:
    """Store reproduced numbers in the benchmark report."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
