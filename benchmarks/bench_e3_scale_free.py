"""E3 — the scale-free claim: table size vs aspect ratio for AGM vs Awerbuch-Peleg."""

import pytest

from benchmarks.conftest import record
from repro.experiments import exp_scale_free


@pytest.mark.bench
def test_e3_scale_free(benchmark, quick):
    deltas = [1e2, 1e6, 1e12] if quick else [1e2, 1e4, 1e6, 1e9, 1e12]

    def run():
        return exp_scale_free.run(quick=quick, seed=3, k=2, deltas=deltas, num_pairs=30)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    agm = sorted(result.filter(scheme="agm"), key=lambda r: r["target_delta"])
    ap = sorted(result.filter(scheme="awerbuch-peleg"), key=lambda r: r["target_delta"])
    assert all(r["failures"] == 0 for r in result.rows)
    agm_growth = agm[-1]["max_table_bits"] / agm[0]["max_table_bits"]
    ap_growth = ap[-1]["max_table_bits"] / ap[0]["max_table_bits"]
    record(
        benchmark,
        experiment="E3",
        deltas=[f"{d:.0e}" for d in deltas],
        agm_max_table_bits=[r["max_table_bits"] for r in agm],
        ap_max_table_bits=[r["max_table_bits"] for r in ap],
        agm_growth=round(agm_growth, 2),
        ap_growth=round(ap_growth, 2),
        agm_max_stretch=max(r["max_stretch"] for r in agm),
        ap_max_stretch=max(r["max_stretch"] for r in ap),
    )
    # the scale-free scheme's storage must grow strictly less than the log Δ scheme's
    assert agm_growth < ap_growth
