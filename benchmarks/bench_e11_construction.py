"""E11 — construction cost: the scheme is polynomial-time constructible.

The paper's headline object is a *polynomial-time constructible* space–stretch
trade-off; this bench times the full preprocessing of all six schemes on a
growing ladder ``n ∈ {200, 1000, 5000, 20000}`` and contrasts the default
array-native construction pipeline (shared ``BuildContext``: batched SPT
forests, CSR ball tables, vectorized cover coarsening, array-built next-hop
tables) against the legacy scalar constructors (``REPRO_BUILD_MODE=scalar``,
the build-parity reference).

Each rung uses the scheme's own ``DistanceOracle`` backend auto-selection —
dense matrix up to the dense-node limit, lazy LRU rows beyond it — so the big
rungs never allocate the n×n matrix.  The scalar baseline is skipped above
``--scalar-cap`` (its per-destination Python loops are quadratic; the ladder
would take hours), and the aggregate speedup is computed over the rungs both
modes completed.  Every built scheme is also evaluated on a small pair batch
(failures must be zero) so a "fast but broken" build cannot pass.

Two baselines are reported: the live ``REPRO_BUILD_MODE=scalar`` constructors
(re-measured every run) and the frozen seed-era build record (the ``build_s``
column BENCH_e14.json carried before this pipeline landed).  Results are
emitted as machine-readable JSON (``--json``, default ``BENCH_e11.json`` next
to the repo root).  ``--quick`` shrinks the run for CI (one small rung);
``--assert-speedup`` fails the process when any scheme fails routing, when
the aggregate speedup over the scalar mode falls below ``--min-speedup``
(default 3 on the full ladder, 1.0 in quick mode), or when the aggregate over
the seed record — wherever its cells are in scope — falls below 10x (the E11
acceptance bar).

Usage::

    PYTHONPATH=src python benchmarks/bench_e11_construction.py
    PYTHONPATH=src python benchmarks/bench_e11_construction.py \
        --sizes 1000 5000 --schemes cowen thorup-zwick
    PYTHONPATH=src python benchmarks/bench_e11_construction.py \
        --quick --assert-speedup --json /tmp/bench_e11.json
"""

from __future__ import annotations

import argparse
import math
import os
import time

from repro.construction.context import BuildContext
from repro.core.params import AGMParams
from repro.experiments.workloads import make_workload
from repro.factory import SCHEME_NAMES, build_scheme
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator

from common import bench_meta, default_json_path, write_bench_json

DEFAULT_SIZES = [200, 1000, 5000, 20000]
QUICK_SIZES = [200]
DEFAULT_SCALAR_CAP = 5000
EVAL_PAIRS = 200

#: Seed-era construction times (seconds) for the identical build cells —
#: the ``build_s`` column of BENCH_e14.json as committed by the forwarding
#: PR, i.e. the same barabasi-albert/seed-42/k=2 builds (AGM with the same
#: scaled experiment constants) measured *before* the vectorized pipeline
#: landed.  The ladder reports the trajectory against both baselines: the
#: living scalar mode (re-measured every run) and this frozen seed record.
#: Cells are limited to rungs the ladder still runs on the dense backend —
#: the seed record was measured dense, and the seed could not build the four
#: quadratic-constructor schemes at n=20000 in reasonable time at all (which
#: is why those rows were missing from BENCH_e14.json until this ladder).
SEED_BUILD_SECONDS = {
    (1000, "agm"): 2.3524, (1000, "awerbuch-peleg"): 1.4633,
    (1000, "cowen"): 7.1094, (1000, "exponential"): 0.158,
    (1000, "shortest-path"): 4.4812, (1000, "thorup-zwick"): 2.8997,
    (5000, "agm"): 33.5606, (5000, "awerbuch-peleg"): 51.147,
    (5000, "cowen"): 259.079, (5000, "exponential"): 1.2085,
    (5000, "shortest-path"): 179.7295, (5000, "thorup-zwick"): 60.6583,
}


def scheme_kwargs(name: str, n: int) -> dict:
    """Per-scheme constructor extras (AGM constants scaled as in E13/E14)."""
    if name == "agm" and n > 256:
        # keep |S(u, i)| ~16 at this n (exponents untouched; see E13)
        factor = 16.0 / (n * math.log2(max(n, 2)))
        return {"params": AGMParams.experiment(landmark_count_factor=factor)}
    if name == "agm":
        return {"params": AGMParams.experiment()}
    return {}


def build_once(name: str, graph, oracle, seed: int, parallel) -> tuple:
    """Build one scheme, returning (seconds, instance).

    The cyclic GC is paused for the timed region (and a full collection runs
    before it): generation-2 passes triggered by construction's allocation
    bursts would otherwise re-scan every object of the previously built
    schemes, charging scheme A's footprint to scheme B's build time.
    """
    import gc

    context = BuildContext(graph, oracle=oracle, seed=seed, parallel=parallel)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        scheme = build_scheme(name, graph, k=2, seed=seed, oracle=oracle,
                              context=context, **scheme_kwargs(name, graph.n))
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, scheme


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--schemes", nargs="+", default=list(SCHEME_NAMES),
                        choices=list(SCHEME_NAMES))
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--family", default="barabasi-albert")
    parser.add_argument("--scalar-cap", type=int, default=DEFAULT_SCALAR_CAP,
                        help="largest n on which the scalar baseline also runs")
    parser.add_argument("--parallel", type=int, default=None,
                        help="worker threads for the BuildContext fan-out")
    parser.add_argument("--pairs", type=int, default=EVAL_PAIRS,
                        help="evaluation pairs per built scheme (sanity gate)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: one small rung")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="aggregate speedup over the live scalar mode the "
                             "--assert-speedup gate requires (default 3, "
                             "quick mode 1.0; the seed-record bar is a "
                             "separate hard 10x)")
    parser.add_argument("--assert-speedup", action="store_true",
                        help="exit non-zero unless every scheme routes with "
                             "zero failures and the aggregate construction "
                             "speedup meets --min-speedup")
    parser.add_argument("--json", default=None,
                        help="where to write the JSON rows "
                             "(default: BENCH_e11.json beside the repo root)")
    args = parser.parse_args()

    sizes = args.sizes or (QUICK_SIZES if args.quick else DEFAULT_SIZES)
    min_speedup = args.min_speedup if args.min_speedup is not None \
        else (1.0 if args.quick else 3.0)
    json_path = args.json or default_json_path(__file__, "BENCH_e11.json")

    print("# E11: construction ladder, vectorized pipeline vs scalar baseline")
    header = (f"{'n':>6} {'scheme':>15} {'vect_s':>8} {'scalar_s':>9} "
              f"{'speedup':>8} {'failures':>8} {'backend':>8}")
    print(header)
    print("-" * len(header))

    rows = []
    for n in sizes:
        graph = make_workload(args.family, n, seed=args.seed)
        # the scheme's own backend auto-selection: dense for small rungs,
        # lazy beyond the dense-node limit — no forced n×n matrix
        oracle = DistanceOracle(graph)
        sim = RoutingSimulator(graph, oracle=oracle)
        pairs = sim.sample_pairs(min(args.pairs, n), seed=args.seed + 1)
        for name in args.schemes:
            os.environ["REPRO_BUILD_MODE"] = "vectorized"
            vect_s, scheme = build_once(name, graph, oracle, args.seed + 2,
                                        args.parallel)
            report = sim.evaluate(scheme, pairs=pairs)
            del scheme  # keep the next timed build free of this one's footprint
            scalar_s = None
            if n <= args.scalar_cap:
                os.environ["REPRO_BUILD_MODE"] = "scalar"
                scalar_s, _ = build_once(name, graph, oracle, args.seed + 2,
                                         args.parallel)
                os.environ["REPRO_BUILD_MODE"] = "vectorized"
            seed_s = SEED_BUILD_SECONDS.get((n, name)) \
                if args.family == "barabasi-albert" and args.seed == 42 else None
            row = {
                "n": n,
                "scheme": name,
                "backend": oracle.backend_name,
                "vectorized_s": round(vect_s, 4),
                "scalar_s": round(scalar_s, 4) if scalar_s is not None else None,
                "seed_s": seed_s,
                "speedup": round(scalar_s / vect_s, 2) if scalar_s else None,
                "speedup_vs_seed": round(seed_s / vect_s, 2) if seed_s else None,
                "failures": report.failures,
                "avg_stretch": report.avg_stretch,
                "max_table_bits": report.max_table_bits,
            }
            rows.append(row)
            scalar_str = f"{scalar_s:9.1f}" if scalar_s is not None else "        -"
            speedup_str = f"{row['speedup']:7.1f}x" if row["speedup"] else "       -"
            print(f"{n:>6} {name:>15} {vect_s:>8.1f} {scalar_str} "
                  f"{speedup_str} {report.failures:>8} {oracle.backend_name:>8}")

    both = [r for r in rows if r["scalar_s"] is not None]
    total_scalar = sum(r["scalar_s"] for r in both)
    total_vect = sum(r["vectorized_s"] for r in both)
    aggregate = total_scalar / total_vect if total_vect else float("inf")
    seeded = [r for r in rows if r["seed_s"] is not None]
    total_seed = sum(r["seed_s"] for r in seeded)
    total_vect_seeded = sum(r["vectorized_s"] for r in seeded)
    aggregate_vs_seed = total_seed / total_vect_seeded if total_vect_seeded \
        else None
    print(f"\naggregate construction speedup vs the scalar mode "
          f"(sum scalar / sum vectorized, dual-mode rungs): {aggregate:.1f}x")
    if aggregate_vs_seed is not None:
        print(f"aggregate construction speedup vs the seed record "
              f"(sum seed / sum vectorized, recorded cells): "
              f"{aggregate_vs_seed:.1f}x")

    payload = {
        "benchmark": "e11_construction",
        "family": args.family,
        "sizes": sizes,
        "schemes": args.schemes,
        "seed": args.seed,
        "scalar_cap": args.scalar_cap,
        "eval_pairs": args.pairs,
        "aggregate_speedup": round(aggregate, 2),
        "aggregate_speedup_vs_seed": round(aggregate_vs_seed, 2)
        if aggregate_vs_seed is not None else None,
        "rows": rows,
        "meta": bench_meta(),
    }
    write_bench_json(json_path, payload)
    print(f"wrote {json_path}")

    if args.assert_speedup:
        broken = [r for r in rows if r["failures"]]
        assert not broken, f"routing failures after vectorized build: {broken}"
        assert both, ("--assert-speedup needs at least one rung at or below "
                      "--scalar-cap, otherwise the speedup gate is vacuous")
        # the gate: vectorized must beat the scalar mode by --min-speedup in
        # aggregate, and — whenever seed-era cells are in scope — beat the
        # seed record by >= 10x (the E11 ladder acceptance bar)
        assert aggregate >= min_speedup, (
            f"aggregate construction speedup {aggregate:.2f}x below the "
            f"required {min_speedup:.2f}x")
        # the 10x bar is an aggregate over the whole seed record (dominated
        # by the n=5000 rung), so it only gates runs covering every seeded
        # rung — partial --sizes runs skip it instead of failing spuriously
        seeded_sizes = {n for n, _ in SEED_BUILD_SECONDS}
        if aggregate_vs_seed is not None and seeded_sizes <= set(sizes):
            assert aggregate_vs_seed >= 10.0, (
                f"aggregate speedup vs the seed record {aggregate_vs_seed:.2f}x "
                f"fell below 10x")
        print(f"assertions passed: zero failures, aggregate >= "
              f"{min_speedup:.1f}x vs scalar mode"
              + (f", {aggregate_vs_seed:.1f}x vs seed record"
                 if aggregate_vs_seed is not None else ""))


if __name__ == "__main__":
    main()
