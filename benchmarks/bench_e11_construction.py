"""E11 — construction cost: the scheme is polynomial-time constructible.

Times the full preprocessing (decomposition + landmarks + both strategies +
fallback) for growing n, and records the routing throughput of the built
scheme so the preprocessing/online split is visible.
"""

import time

import pytest

from benchmarks.conftest import record
from repro.core.scheme import AGMRoutingScheme
from repro.experiments.workloads import make_workload
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator


@pytest.mark.bench
@pytest.mark.parametrize("n", [32, 64, 96])
def test_e11_construction(benchmark, agm_params, quick, n):
    if not quick:
        n *= 2
    graph = make_workload("erdos-renyi", n, seed=71)
    oracle = DistanceOracle(graph)

    def build():
        return AGMRoutingScheme.build(graph, k=2, params=agm_params, oracle=oracle, seed=3)

    scheme = benchmark.pedantic(build, rounds=1, iterations=1)
    simulator = RoutingSimulator(graph, oracle=oracle)
    start = time.perf_counter()
    report = simulator.evaluate(scheme, num_pairs=60, seed=5)
    routing_seconds = time.perf_counter() - start
    assert report.failures == 0
    record(
        benchmark,
        experiment="E11",
        n=graph.n,
        m=graph.num_edges,
        max_table_bits=report.max_table_bits,
        max_stretch=round(report.max_stretch, 2),
        routes_per_second=round(60 / routing_seconds, 1),
    )
