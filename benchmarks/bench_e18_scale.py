"""E18 — out-of-core scale ladder: build + route 1M packets at n up to 100k.

Each ``(n, scheme)`` rung **forks a child process** that

1. sets ``REPRO_MEMORY_BUDGET`` (default ``16G``), so structures above the
   budget — the shortest-path scheme's 40 GB next-hop matrix at n=100k,
   the ball-CSR tables and SPT forests — spill to anonymous ``np.memmap``
   files instead of resident RAM;
2. builds the scheme against the **lazy** distance backend (never an
   n×n matrix — the dense backend refuses above its node limit);
3. routes ``--packets`` Zipf packets through the lockstep engine under an
   **approximate scoring mode** (``landmark`` by default: certified stretch
   upper bounds from ALT landmark rows, plus a seeded exact-row sample that
   measures the certificate slack — ``avg/max_score_error`` in the stats);
4. reports its own ``ru_maxrss`` back through a queue.

Forking per rung is what makes the peak-RSS column honest: ``ru_maxrss``
is monotone over a process lifetime, so rungs sharing one process would
all inherit the largest rung's peak — and memory is actually returned to
the OS between rungs.

Usage::

    PYTHONPATH=src python benchmarks/bench_e18_scale.py            # full ladder
    PYTHONPATH=src python benchmarks/bench_e18_scale.py \
        --sizes 20000 --packets 100000 --budget 2G
    PYTHONPATH=src python benchmarks/bench_e18_scale.py --quick --assert-ok
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import time

from common import bench_meta, peak_rss_bytes, write_bench_json

DEFAULT_SIZES = [20000, 50000, 100000]
DEFAULT_SCHEMES = ["shortest-path", "cowen"]
DEFAULT_PACKETS = 1_000_000
DEFAULT_BATCH = 8192
DEFAULT_BUDGET = "16G"
DEFAULT_SCORING = "landmark"
DEFAULT_SAMPLE = 8
DEFAULT_LANDMARKS = 16
QUICK_SIZES = [2000]
QUICK_PACKETS = 50_000
QUICK_BUDGET = "8M"          # force the spill path even at toy sizes


def run_rung(n: int, scheme_name: str, args, queue) -> None:
    """Child-process body: build one scheme at one size, route, report."""
    os.environ["REPRO_MEMORY_BUDGET"] = args.budget
    os.environ["REPRO_DISTANCE_BACKEND"] = "lazy"

    from repro.experiments.workloads import make_workload
    from repro.factory import build_scheme
    from repro.graphs.backends import LazyDijkstraBackend
    from repro.graphs.shortest_paths import DistanceOracle
    from repro.storage import reset_accounting, storage_report
    from repro.traffic.engine import run_traffic
    from repro.traffic.models import make_traffic_model
    from repro.traffic.scoring import make_scorer

    reset_accounting()
    graph = make_workload(args.family, n, seed=args.seed)
    support = min(args.zipf_support, max(n // 4, 8))
    backend = LazyDijkstraBackend(graph, cache_rows=support + 64)
    oracle = DistanceOracle(graph, backend=backend)
    model = make_traffic_model("zipf", graph, seed=args.seed + 1,
                               support=support)

    t0 = time.perf_counter()
    scheme = build_scheme(scheme_name, graph, k=2, seed=args.seed + 2,
                          oracle=oracle)
    build_s = time.perf_counter() - t0

    scorer = make_scorer(args.scoring, graph, oracle, seed=args.seed + 1,
                         sample_per_batch=args.sample_per_batch,
                         num_landmarks=args.landmarks)
    report = run_traffic(scheme, model, args.packets, shards=args.shards,
                         batch_size=args.batch, engine="lockstep",
                         oracle=oracle, scoring=scorer)
    summary = report.stats.summary()
    storage = storage_report()
    # under a bounding scorer (landmark) the stretch columns are certified
    # upper bounds and carry the stretch_upper prefix; exact/sampled runs
    # keep the plain stretch names — the two are never conflated in a row
    prefix = report.stats.stretch_prefix
    row = {
        "n": n,
        "scheme": scheme_name,
        "model": model.name,
        "zipf_support": support,
        "packets": args.packets,
        "batch_size": args.batch,
        "backend": "lazy",
        "scoring": report.scoring,
        "memory_budget": args.budget,
        "build_s": round(build_s, 2),
        "route_s": round(report.seconds, 2),
        "pps": round(report.pps, 1),
        "delivered": int(summary["delivered"]),
        "failures": int(summary["failures"]),
        "unreachable": int(summary["unreachable"]),
        f"avg_{prefix}": summary[f"avg_{prefix}"],
        f"max_{prefix}": summary[f"max_{prefix}"],
        f"{prefix}_count": int(summary[f"{prefix}_count"]),
        "avg_score_error": summary.get("avg_score_error"),
        "max_score_error": summary.get("max_score_error"),
        f"{prefix}_stderr": summary.get(f"{prefix}_stderr"),
        "peak_rss_bytes": peak_rss_bytes(),
        "spilled_bytes": storage["spilled_bytes"],
        "spill_count": storage["spill_count"],
    }
    queue.put(row)


def ladder(args, partial_path=None) -> list:
    ctx = mp.get_context("fork")
    rows = []
    for n in args.sizes:
        for scheme_name in args.schemes:
            queue = ctx.Queue()
            start = time.perf_counter()
            child = ctx.Process(target=run_rung,
                                args=(n, scheme_name, args, queue))
            child.start()
            row = None
            while row is None:      # poll so a crashed rung aborts the ladder
                try:
                    row = queue.get(timeout=30)
                except Exception:
                    if not child.is_alive():
                        child.join()
                        raise RuntimeError(
                            f"rung n={n} scheme={scheme_name} died "
                            f"(exit {child.exitcode}) without reporting")
            child.join()
            row["rung_wall_s"] = round(time.perf_counter() - start, 2)
            rows.append(row)
            if partial_path:
                # hours-long ladder: completed rungs survive a late crash.
                # the .partial file is scratch state (gitignored, never the
                # final artifact) but still written atomically so it is
                # readable at any instant
                write_bench_json(partial_path, rows)
            print(f"{row['n']:>7} {row['scheme']:>15} "
                  f"build {row['build_s']:>8.1f}s "
                  f"route {row['route_s']:>7.1f}s {row['pps']:>9.0f} pps "
                  f"rss {row['peak_rss_bytes'] / 2**30:>6.2f} GiB "
                  f"spill {row['spilled_bytes'] / 2**30:>6.2f} GiB "
                  f"fail {row['failures']}", flush=True)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--family", default="barabasi-albert",
                        help="workload family (scale-free by default: the "
                        "sparse internet-like testbed the schemes target)")
    parser.add_argument("--schemes", nargs="+", default=DEFAULT_SCHEMES)
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--budget", default=None,
                        help="REPRO_MEMORY_BUDGET for every rung (e.g. 16G)")
    parser.add_argument("--scoring", default=DEFAULT_SCORING,
                        choices=["landmark", "sampled", "exact"])
    parser.add_argument("--sample-per-batch", type=int, default=DEFAULT_SAMPLE,
                        help="exact-row certificate sample size per batch")
    parser.add_argument("--landmarks", type=int, default=DEFAULT_LANDMARKS)
    parser.add_argument("--zipf-support", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--quick", action="store_true",
                        help="toy ladder with a budget small enough to spill")
    parser.add_argument("--assert-ok", action="store_true")
    parser.add_argument("--json", default=None)
    args = parser.parse_args()
    args.sizes = args.sizes or (QUICK_SIZES if args.quick else DEFAULT_SIZES)
    args.packets = args.packets or (QUICK_PACKETS if args.quick
                                    else DEFAULT_PACKETS)
    args.budget = args.budget or (QUICK_BUDGET if args.quick
                                  else DEFAULT_BUDGET)
    json_path = args.json or os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "BENCH_e18.json")

    print(f"# E18: out-of-core scale ladder — sizes {args.sizes}, "
          f"budget {args.budget}, scoring {args.scoring}", flush=True)
    rows = ladder(args, partial_path=json_path + ".partial")

    payload = {
        "benchmark": "e18_scale",
        "family": args.family,
        "sizes": args.sizes,
        "schemes": args.schemes,
        "packets_per_run": args.packets,
        "batch_size": args.batch,
        "backend": "lazy",
        "scoring": args.scoring,
        "memory_budget": args.budget,
        "sample_per_batch": args.sample_per_batch,
        "landmarks": args.landmarks,
        "seed": args.seed,
        "rows": rows,
        "meta": bench_meta(backend="lazy", scoring=args.scoring),
    }
    write_bench_json(json_path, payload)
    try:
        os.unlink(json_path + ".partial")   # superseded by the complete file
    except OSError:
        pass
    print(f"wrote {json_path}")

    if args.assert_ok:
        bad = [r for r in rows if r["failures"] != 0]
        assert not bad, f"delivery failures at: {[(r['n'], r['scheme']) for r in bad]}"
        assert all(r["delivered"] + r["unreachable"] == r["packets"]
                   for r in rows), "packet accounting mismatch"
        print("assertions passed: zero failures on every rung")


if __name__ == "__main__":
    main()
