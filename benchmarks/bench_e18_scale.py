"""E18 — out-of-core scale ladder: all six schemes at n up to 100k (and past).

Each ``(n, scheme)`` rung **forks a child process** that

1. sets ``REPRO_MEMORY_BUDGET`` (default ``16G``), so structures above the
   budget — the shortest-path scheme's 40 GB next-hop matrix at n=100k,
   the ball-CSR tables and SPT forests — spill to anonymous ``np.memmap``
   files instead of resident RAM;
2. builds the scheme against the **lazy** distance backend (never an
   n×n matrix — the dense backend refuses above its node limit);
3. routes ``--packets`` Zipf packets through the lockstep engine under an
   **approximate scoring mode** (``landmark`` by default: certified stretch
   upper bounds from ALT landmark rows, plus a seeded exact-row sample that
   measures the certificate slack — ``avg/max_score_error`` in the stats);
4. reports its own ``ru_maxrss`` back through a queue.

Forking per rung is what makes the peak-RSS column honest: ``ru_maxrss``
is monotone over a process lifetime, so rungs sharing one process would
all inherit the largest rung's peak — and memory is actually returned to
the OS between rungs.

Usage::

    PYTHONPATH=src python benchmarks/bench_e18_scale.py            # full ladder
    PYTHONPATH=src python benchmarks/bench_e18_scale.py \
        --sizes 20000 --packets 100000 --budget 2G
    PYTHONPATH=src python benchmarks/bench_e18_scale.py --quick --assert-ok
"""

from __future__ import annotations

import argparse
import multiprocessing as mp
import os
import shutil
import tempfile
import time

from common import (assert_all_delivered, bench_meta, default_json_path,
                    peak_rss_bytes, write_bench_json)

DEFAULT_SIZES = [20000, 50000, 100000]
DEFAULT_SCHEMES = ["shortest-path", "cowen", "thorup-zwick", "exponential",
                   "awerbuch-peleg", "agm"]
DEFAULT_PACKETS = 1_000_000
DEFAULT_BATCH = 8192
DEFAULT_BUDGET = "16G"
DEFAULT_SCORING = "landmark"
DEFAULT_SAMPLE = 8
DEFAULT_LANDMARKS = 16
#: the first rung past 100k: schemes whose table footprint still fits the
#: machine.  shortest-path is *excluded* by default — its next-hop matrix
#: is n² · 4 B ≈ 233 GiB at n=250k, beyond this host's spill disk; the
#: payload records the skip so the committed JSON says why the row is
#: absent rather than silently omitting it.
DEFAULT_XL_SIZES = [250000]
DEFAULT_XL_SCHEMES = ["cowen"]
XL_NOTE = ("shortest-path skipped at xl sizes: the dense next-hop matrix "
           "needs n^2 * 4 bytes of spill disk (233 GiB at n=250k)")
QUICK_SIZES = [2000]
QUICK_PACKETS = 50_000
QUICK_BUDGET = "8M"          # force the spill path even at toy sizes

#: above this size the agm rung switches from the paper parameterization
#: to k=3 with a small landmark factor: at the paper's factor-16 nearby
#: landmark count and k<=3, S(v,j) degenerates to "every finite member"
#: (nearby >= n), which makes every used-center tree span its whole
#: component — Θ(n) trees of Θ(n) nodes is the dense-table regime the
#: scheme exists to avoid.  The experiment parameterization keeps the
#: sublinear structure the paper's asymptotics describe; the row records
#: the parameterization it measured.
AGM_XL_THRESHOLD = 20000


def scheme_build_kwargs(scheme_name: str, n: int):
    """Per-scheme constructor kwargs for one rung, plus a description.

    Returned lazily inside the child (imports repro); every non-default
    choice is recorded in the row's ``build_params`` column.
    """
    if scheme_name == "agm" and n >= AGM_XL_THRESHOLD:
        from repro.core.params import AGMParams
        return ({"k": 3, "params": AGMParams.experiment(0.05)},
                "k=3 experiment(landmark_count_factor=0.05)")
    return {"k": 2}, "k=2"


def run_rung(n: int, scheme_name: str, args, queue, spill_dir=None) -> None:
    """Child-process body: build one scheme at one size, route, report."""
    os.environ["REPRO_MEMORY_BUDGET"] = args.budget
    os.environ["REPRO_DISTANCE_BACKEND"] = "lazy"
    if spill_dir:
        # parent-owned per-rung scratch dir: survives a SIGKILLed child
        # only until the parent's cleanup handler removes it
        os.environ["REPRO_SPILL_DIR"] = spill_dir

    from repro.experiments.workloads import make_workload
    from repro.factory import build_scheme
    from repro.graphs.backends import LazyDijkstraBackend
    from repro.graphs.shortest_paths import DistanceOracle
    from repro.storage import reset_accounting, storage_report
    from repro.traffic.engine import run_traffic
    from repro.traffic.models import make_traffic_model
    from repro.traffic.scoring import make_scorer

    reset_accounting()
    graph = make_workload(args.family, n, seed=args.seed)
    support = min(args.zipf_support, max(n // 4, 8))
    backend = LazyDijkstraBackend(graph, cache_rows=support + 64)
    oracle = DistanceOracle(graph, backend=backend)
    model = make_traffic_model("zipf", graph, seed=args.seed + 1,
                               support=support)

    build_kwargs, build_params = scheme_build_kwargs(scheme_name, n)
    t0 = time.perf_counter()
    scheme = build_scheme(scheme_name, graph, seed=args.seed + 2,
                          oracle=oracle, **build_kwargs)
    build_s = time.perf_counter() - t0

    scorer = make_scorer(args.scoring, graph, oracle, seed=args.seed + 1,
                         sample_per_batch=args.sample_per_batch,
                         num_landmarks=args.landmarks)
    report = run_traffic(scheme, model, args.packets, shards=args.shards,
                         batch_size=args.batch, engine="lockstep",
                         oracle=oracle, scoring=scorer)
    summary = report.stats.summary()
    storage = storage_report()
    # under a bounding scorer (landmark) the stretch columns are certified
    # upper bounds and carry the stretch_upper prefix; exact/sampled runs
    # keep the plain stretch names — the two are never conflated in a row
    prefix = report.stats.stretch_prefix
    row = {
        "n": n,
        "scheme": scheme_name,
        "build_params": build_params,
        "model": model.name,
        "zipf_support": support,
        "packets": args.packets,
        "batch_size": args.batch,
        "backend": "lazy",
        "scoring": report.scoring,
        "memory_budget": args.budget,
        "build_s": round(build_s, 2),
        "route_s": round(report.seconds, 2),
        "pps": round(report.pps, 1),
        "delivered": int(summary["delivered"]),
        "failures": int(summary["failures"]),
        "unreachable": int(summary["unreachable"]),
        f"avg_{prefix}": summary[f"avg_{prefix}"],
        f"max_{prefix}": summary[f"max_{prefix}"],
        f"{prefix}_count": int(summary[f"{prefix}_count"]),
        "avg_score_error": summary.get("avg_score_error"),
        "max_score_error": summary.get("max_score_error"),
        f"{prefix}_stderr": summary.get(f"{prefix}_stderr"),
        "peak_rss_bytes": peak_rss_bytes(),
        "spilled_bytes": storage["spilled_bytes"],
        "spill_count": storage["spill_count"],
        "spill_high_water_bytes": storage.get("spill_high_water_bytes", 0),
        "row_cache": backend.row_cache_report(),
    }
    queue.put(row)


def run_one(n: int, scheme_name: str, args, ctx) -> dict:
    """Fork one rung; clean its spill scratch even when it dies.

    The child gets a private ``REPRO_SPILL_DIR`` under the parent's
    control.  Memmap scratch files are mkstemp-then-unlinked, so a child
    that *exits* leaks nothing — but a SIGKILLed child (OOM killer) can
    die between mkstemp and unlink, and an operator-supplied spill dir
    must not accumulate those orphans across an hours-long ladder.  The
    ``finally`` below removes the whole per-rung directory regardless of
    how the child ended.
    """
    queue = ctx.Queue()
    spill_dir = tempfile.mkdtemp(prefix=f"e18-{n}-{scheme_name}-",
                                 dir=os.environ.get("REPRO_SPILL_DIR") or None)
    child = ctx.Process(target=run_rung,
                        args=(n, scheme_name, args, queue, spill_dir))
    child.start()
    try:
        row = None
        while row is None:      # poll so a crashed rung aborts the ladder
            try:
                row = queue.get(timeout=30)
            except Exception:
                if not child.is_alive():
                    child.join()
                    raise RuntimeError(
                        f"rung n={n} scheme={scheme_name} died "
                        f"(exit {child.exitcode}) without reporting")
        child.join()
        return row
    finally:
        if child.is_alive():
            child.terminate()
            child.join()
        shutil.rmtree(spill_dir, ignore_errors=True)


def ladder(args, partial_path=None) -> list:
    ctx = mp.get_context("fork")
    rows = []
    rungs = [(n, s) for n in args.sizes for s in args.schemes]
    rungs += [(n, s) for n in args.xl_sizes for s in args.xl_schemes]
    for n, scheme_name in rungs:
        start = time.perf_counter()
        try:
            row = run_one(n, scheme_name, args, ctx)
        except RuntimeError as exc:
            # a dead rung (OOM kill, crash) must not void the hours of
            # completed rungs behind it or the rungs still ahead; the
            # error row keeps the failure visible (and fails --assert-ok)
            row = {"n": n, "scheme": scheme_name, "error": str(exc),
                   "failures": -1}
        row["rung_wall_s"] = round(time.perf_counter() - start, 2)
        rows.append(row)
        if partial_path:
            # hours-long ladder: completed rungs survive a late crash.
            # the .partial file is scratch state (gitignored, never the
            # final artifact) but still written atomically so it is
            # readable at any instant
            write_bench_json(partial_path, rows)
        if "error" in row:
            print(f"{n:>7} {scheme_name:>15} DIED: {row['error']}",
                  flush=True)
            continue
        print(f"{row['n']:>7} {row['scheme']:>15} "
              f"build {row['build_s']:>8.1f}s "
              f"route {row['route_s']:>7.1f}s {row['pps']:>9.0f} pps "
              f"rss {row['peak_rss_bytes'] / 2**30:>6.2f} GiB "
              f"spill {row['spilled_bytes'] / 2**30:>6.2f} GiB "
              f"fail {row['failures']}", flush=True)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--family", default="barabasi-albert",
                        help="workload family (scale-free by default: the "
                        "sparse internet-like testbed the schemes target)")
    parser.add_argument("--schemes", nargs="+", default=DEFAULT_SCHEMES)
    parser.add_argument("--packets", type=int, default=None)
    parser.add_argument("--batch", type=int, default=DEFAULT_BATCH)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--budget", default=None,
                        help="REPRO_MEMORY_BUDGET for every rung (e.g. 16G)")
    parser.add_argument("--scoring", default=DEFAULT_SCORING,
                        choices=["landmark", "sampled", "exact"])
    parser.add_argument("--sample-per-batch", type=int, default=DEFAULT_SAMPLE,
                        help="exact-row certificate sample size per batch")
    parser.add_argument("--landmarks", type=int, default=DEFAULT_LANDMARKS)
    parser.add_argument("--zipf-support", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--xl-sizes", type=int, nargs="*", default=None,
                        help="first-rung-past-100k sizes (default 250000; "
                             "empty list disables)")
    parser.add_argument("--xl-schemes", nargs="*", default=None,
                        help=f"schemes run at the xl sizes (default "
                             f"{DEFAULT_XL_SCHEMES}; see XL_NOTE for why "
                             f"shortest-path is not among them)")
    parser.add_argument("--quick", action="store_true",
                        help="toy ladder with a budget small enough to spill")
    parser.add_argument("--assert-ok", action="store_true")
    parser.add_argument("--json", default=None)
    args = parser.parse_args()
    args.sizes = args.sizes or (QUICK_SIZES if args.quick else DEFAULT_SIZES)
    args.packets = args.packets or (QUICK_PACKETS if args.quick
                                    else DEFAULT_PACKETS)
    args.budget = args.budget or (QUICK_BUDGET if args.quick
                                  else DEFAULT_BUDGET)
    if args.xl_sizes is None:
        args.xl_sizes = [] if args.quick else DEFAULT_XL_SIZES
    if args.xl_schemes is None:
        args.xl_schemes = DEFAULT_XL_SCHEMES if args.xl_sizes else []
    json_path = args.json or default_json_path(__file__, "BENCH_e18.json")

    print(f"# E18: out-of-core scale ladder — sizes {args.sizes} "
          f"(+xl {args.xl_sizes} for {args.xl_schemes}), "
          f"schemes {args.schemes}, budget {args.budget}, "
          f"scoring {args.scoring}", flush=True)
    rows = ladder(args, partial_path=json_path + ".partial")

    payload = {
        "benchmark": "e18_scale",
        "family": args.family,
        "sizes": args.sizes,
        "schemes": args.schemes,
        "xl_sizes": args.xl_sizes,
        "xl_schemes": args.xl_schemes,
        "xl_note": XL_NOTE if args.xl_sizes else None,
        "packets_per_run": args.packets,
        "batch_size": args.batch,
        "backend": "lazy",
        "scoring": args.scoring,
        "memory_budget": args.budget,
        "sample_per_batch": args.sample_per_batch,
        "landmarks": args.landmarks,
        "seed": args.seed,
        "rows": rows,
        "meta": bench_meta(backend="lazy", scoring=args.scoring),
    }
    write_bench_json(json_path, payload)
    try:
        os.unlink(json_path + ".partial")   # superseded by the complete file
    except OSError:
        pass
    print(f"wrote {json_path}")

    if args.assert_ok:
        assert_all_delivered(rows)
        print("assertions passed: zero failures on every rung")


if __name__ == "__main__":
    main()
