"""Array-native, parallel scheme construction.

The evaluation path has been compiled and batched for a while (the lockstep
engine) but preprocessing used to be scalar Python: one Dijkstra per tree or
cluster, Python set coarsening for covers, per-entry dict passes for next-hop
tables.  This package makes construction itself batch array work:

* :class:`~repro.construction.context.BuildContext` — the shared per-(graph,
  seed) build state: batched multi-source shortest-path-tree forests (one
  SciPy kernel call per chunk of roots instead of one call per tree, with
  per-chunk distance limits so small cluster trees stay local searches),
  streamed ball tables in CSR form, vectorized tree assembly that feeds
  :meth:`repro.routing.forwarding.TreeBank.freeze` per-tree slot caches
  directly, and an order-preserving worker-thread ``map`` for independent
  scales / cluster chunks.
* :func:`~repro.construction.context.scalar_build_mode` — the
  ``REPRO_BUILD_MODE=scalar`` escape hatch that re-enables the original
  scalar constructors; the build-parity tests assert the vectorized and
  scalar paths produce identical schemes.

``build_matrix`` (the construction sibling of ``run_matrix``) lives in
:mod:`repro.experiments.harness`.
"""

from repro.construction.context import (BuildContext, SPTJob,
                                        scalar_build_mode,
                                        tree_from_predecessors)

__all__ = [
    "BuildContext",
    "SPTJob",
    "scalar_build_mode",
    "tree_from_predecessors",
]
