"""Shared build state: batched SPT forests, ball tables, parallel fan-out.

Every scheme's preprocessing decomposes into the same few primitives — grow a
shortest-path tree per root, restrict it to a member set, compute the ball of
every node at some radius, fan independent units (scales, cluster chunks)
out.  :class:`BuildContext` owns the batched implementations of those
primitives so all six schemes share them:

* :meth:`BuildContext.spt_trees` answers a whole list of :class:`SPTJob`
  requests with one SciPy multi-source Dijkstra call per chunk of roots.
  Jobs carrying a distance ``limit`` (the farthest member the tree must
  reach) are grouped by limit magnitude so a chunk of small cluster trees is
  a chunk of *local* searches — the kernel abandons every path beyond the
  chunk limit instead of running ``n`` full-graph Dijkstras.
* :meth:`BuildContext.ball_csr` streams the ball membership of every node at
  one radius into flat CSR arrays (one row-block pass over the oracle, no
  Python sets), which is what the vectorized sparse-cover coarsening and the
  dense-strategy covers consume.
* :meth:`BuildContext.map` is an order-preserving thread fan-out for
  independent build units.  Unit seeds are always derived from the unit's
  *index* (never from execution order), so parallel builds are bit-identical
  to serial ones.

Trees produced here carry their forwarding slot arrays from construction
(see :meth:`repro.graphs.trees.Tree._compute_dfs`), so a later
``TreeBank.freeze`` finds every per-tree cache already populated.

``REPRO_BUILD_MODE=scalar`` switches the schemes back to their original
scalar constructors; the build-parity suite asserts both paths produce
identical instances.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from repro.construction.kernels import ancestor_closure
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (DistanceOracle, exact_distance_oracle,
                                          shortest_path_tree)
from repro.graphs.trees import Tree
from repro.storage import persist_array
from repro.utils.validation import require

#: roots per SciPy kernel call in :meth:`BuildContext.spt_trees`
DEFAULT_SPT_CHUNK = 256


def scalar_build_mode() -> bool:
    """Whether the legacy scalar construction paths are forced.

    Controlled by ``REPRO_BUILD_MODE`` (``vectorized`` is the default;
    ``scalar`` re-enables the original per-node Python constructors).  The
    build-parity tests build schemes under both modes and assert the results
    are identical.
    """
    return os.environ.get("REPRO_BUILD_MODE", "vectorized").lower() == "scalar"


def limited_dijkstra(csr, sources: Sequence[int], limit: Optional[float] = None,
                     predecessors: bool = False):
    """Multi-source Dijkstra rows under one shared distance limit.

    The single place the limit margin lives: a node at exactly the limit must
    still be finalized, so the bound is widened by one relative + absolute
    epsilon before reaching the kernel.  ``limit=None`` (or ``inf``) runs
    unbounded.  Returns ``rows`` or ``(rows, preds)`` as 2-D arrays.
    """
    limit_arg = np.inf
    if limit is not None and np.isfinite(limit):
        limit_arg = float(limit) * (1.0 + 1e-12) + 1e-12
    out = _scipy_dijkstra(csr, directed=False, indices=list(sources),
                          return_predecessors=predecessors, limit=limit_arg)
    if predecessors:
        return np.atleast_2d(out[0]), np.atleast_2d(out[1])
    return np.atleast_2d(out)


class SPTJob(NamedTuple):
    """One shortest-path-tree request for :meth:`BuildContext.spt_trees`.

    ``members`` prunes the tree to the union of root-to-member shortest paths
    (``None`` spans everything reachable).  ``limit`` is an upper bound on the
    distance from the root to any required node; it lets the batched kernel
    abandon paths beyond the tree's reach.  A correct limit never changes the
    output — it only makes the search local.
    """

    root: int
    members: Optional[Sequence[int]] = None
    limit: Optional[float] = None


def tree_from_predecessors(graph: WeightedGraph, root: int,
                           dist: np.ndarray, pred: np.ndarray,
                           members: Optional[Sequence[int]] = None,
                           edge_index: Optional["_EdgeIndex"] = None) -> Tree:
    """Assemble a (pruned) :class:`Tree` from one Dijkstra row, vectorized.

    The scalar path walks each member's parent chain in Python; here the kept
    set is computed as an ancestor closure with whole-frontier array gathers
    and the edge weights come from one sorted-key lookup instead of per-edge
    ``edge_weight`` calls.
    """
    parent = np.where(pred < 0, -1, pred).astype(np.int64)
    n = graph.n
    keep = np.zeros(n, dtype=bool)
    keep[root] = True
    if members is None:
        keep |= np.isfinite(dist)
    else:
        frontier = np.unique(np.asarray(list(members), dtype=np.int64))
        frontier = frontier[np.isfinite(dist[frontier])]
        ancestor_closure(frontier, parent, keep)
    kept = np.flatnonzero(keep)
    children = kept[kept != root]
    if children.size == 0:
        return Tree.single_node(int(root))
    parents_of = parent[children]
    require(bool((parents_of >= 0).all()),
            "kept tree node without a predecessor (pruning bug)")
    if edge_index is None:
        edge_index = _EdgeIndex(graph)
    weights = edge_index.weights(parents_of, children)
    return Tree(root=int(root),
                parent=dict(zip(children.tolist(), parents_of.tolist())),
                edge_weight=dict(zip(children.tolist(), weights.tolist())))


class _EdgeIndex:
    """Vectorized ``weight(u, v)`` lookups over one sorted edge-key array.

    Row-major CSR traversal yields ascending ``u * n + v`` keys, so a batch of
    edge weights is one ``searchsorted`` — far cheaper than SciPy matrix
    fancy-indexing per tree when thousands of small trees are assembled.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        csr = graph.to_scipy_csr()
        n = graph.n
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(csr.indptr))
        self._keys = row_of * n + csr.indices
        self._weights = csr.data
        self.n = n

    def weights(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        pos = np.searchsorted(self._keys, us * self.n + vs)
        return self._weights[pos]


class BuildContext:
    """Batched construction primitives for one ``(graph, seed)``.

    Parameters
    ----------
    graph:
        The network being preprocessed.
    oracle:
        Exact distance oracle (created with automatic backend selection when
        omitted); shared by every primitive so streamed passes reuse one row
        cache.
    seed:
        The build seed (carried for diagnostics; schemes keep deriving their
        unit seeds themselves so serial/parallel orders agree).
    parallel:
        Worker threads for :meth:`map` fan-outs (``None``/``0``/``1`` =
        serial).  The kernel calls release the GIL, so independent scales and
        tree chunks genuinely overlap on multi-core hosts; outputs are
        bit-identical either way.
    """

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None,
                 seed=None, parallel: Optional[int] = None,
                 spt_chunk: int = DEFAULT_SPT_CHUNK) -> None:
        self.graph = graph
        self.oracle = exact_distance_oracle(graph, oracle)
        self.seed = seed
        self.parallel = int(parallel) if parallel else 0
        self.spt_chunk = max(1, int(spt_chunk))
        self._edge_index: Optional[_EdgeIndex] = None

    def edge_index(self) -> "_EdgeIndex":
        """Shared sorted-edge-key weight lookup (built once per context)."""
        if self._edge_index is None:
            self._edge_index = _EdgeIndex(self.graph)
        return self._edge_index

    # ------------------------------------------------------------------ #
    # parallel fan-out
    # ------------------------------------------------------------------ #
    def map(self, fn: Callable, items: Sequence) -> List:
        """Apply ``fn`` to every item, fanning out over worker threads.

        Results come back in input order and every item's work must depend
        only on the item itself (unit seeds derive from indices), so the
        parallel result is bit-identical to the serial one.
        """
        items = list(items)
        if self.parallel > 1 and len(items) > 1:
            with ThreadPoolExecutor(max_workers=self.parallel) as pool:
                return list(pool.map(fn, items))
        return [fn(item) for item in items]

    # ------------------------------------------------------------------ #
    # batched shortest-path-tree forests
    # ------------------------------------------------------------------ #
    def spt_trees(self, jobs: Sequence[SPTJob]) -> List[Tree]:
        """Build every requested tree, one kernel call per chunk of roots.

        Jobs are grouped by limit magnitude (unlimited jobs together) so that
        one chunk's shared limit — the maximum over its jobs — stays close to
        each job's own reach.  Chunks run through :meth:`map`.  Output order
        matches input order.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        if self.graph.num_edges == 0:
            # no edges: every tree is its lone root (same as the scalar path)
            return [Tree.single_node(int(job.root)) for job in jobs]
        order = sorted(range(len(jobs)),
                       key=lambda j: (jobs[j].limit is None,
                                      jobs[j].limit if jobs[j].limit is not None
                                      else 0.0, j))
        chunks = [order[start:start + self.spt_chunk]
                  for start in range(0, len(order), self.spt_chunk)]
        csr = self.graph.to_scipy_csr()
        edge_index = self.edge_index()

        def run_chunk(chunk: List[int]) -> List[Tuple[int, Tree]]:
            roots = [int(jobs[j].root) for j in chunk]
            limits = [jobs[j].limit for j in chunk]
            shared = max(limits) if all(l is not None for l in limits) else None
            dist, pred = limited_dijkstra(csr, roots, shared, predecessors=True)
            # under a tight REPRO_MEMORY_BUDGET the per-chunk SPT forest rows
            # spill too, so a whole build streams through the budget
            dist, pred = persist_array(dist), persist_array(pred)
            out = []
            for local, j in enumerate(chunk):
                job = jobs[j]
                out.append((j, tree_from_predecessors(
                    self.graph, int(job.root), dist[local], pred[local],
                    members=job.members, edge_index=edge_index)))
            return out

        trees: List[Optional[Tree]] = [None] * len(jobs)
        for part in self.map(run_chunk, chunks):
            for j, tree in part:
                trees[j] = tree
        return trees  # type: ignore[return-value]

    def spt_tree(self, root: int, members: Optional[Sequence[int]] = None,
                 limit: Optional[float] = None) -> Tree:
        """Single-tree convenience wrapper of :meth:`spt_trees`."""
        if scalar_build_mode():
            return shortest_path_tree(self.graph, root, members=members)
        return self.spt_trees([SPTJob(root, members, limit)])[0]

    # ------------------------------------------------------------------ #
    # streamed ball tables
    # ------------------------------------------------------------------ #
    def ball_csr(self, rho: float,
                 universe: Optional[Sequence[int]] = None,
                 allowed_mask: Optional[np.ndarray] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
        """Balls ``B(v, rho)`` of every universe node as flat CSR arrays.

        Returns ``(indptr, indices)``: ball of the ``p``-th universe node is
        ``indices[indptr[p]:indptr[p+1]]`` (sorted global node ids,
        restricted to ``allowed_mask`` when given).  One streamed row-block
        pass over the oracle — no per-node Python and no O(n²) residency
        under the lazy backend.
        """
        if universe is None:
            sources = np.arange(self.graph.n, dtype=np.int64)
        else:
            sources = np.asarray(list(universe), dtype=np.int64)
        counts = np.zeros(sources.size, dtype=np.int64)
        parts: List[np.ndarray] = []
        block = self.oracle.block_rows()
        # Under a backend that materializes rows on demand, balls only need
        # distances up to rho: a radius-limited kernel call per block turns a
        # small-scale pass into a union of local searches instead of a full
        # APSP-equivalent sweep.  The dense backend's rows are already paid
        # for, so it streams them unchanged.
        limited = self.oracle.backend_name == "lazy" and self.graph.num_edges > 0
        csr = self.graph.to_scipy_csr() if limited else None
        for start in range(0, sources.size, block):
            chunk = sources[start:start + block]
            if limited:
                rows = limited_dijkstra(csr, chunk, rho)
            else:
                rows = self.oracle.rows(chunk)
            mask = rows <= rho + 1e-12
            if allowed_mask is not None:
                mask &= allowed_mask[np.newaxis, :]
            local_rows, members = np.nonzero(mask)
            counts[start:start + chunk.size] = np.bincount(
                local_rows, minlength=chunk.size)
            parts.append(members.astype(np.int64))
        indptr = np.concatenate(([0], np.cumsum(counts)))
        indices = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        # large ball tables are placed through the storage layer: memmap
        # spill files above REPRO_MEMORY_BUDGET, plain RAM below
        return indptr, persist_array(indices)
