"""Guarded-numba kernels for the construction hot loops (``REPRO_JIT=1``).

The same pattern as :mod:`repro.routing.kernels`, applied to preprocessing:
the two remaining Python-rate inner loops of a large build are

* the **ancestor closure** of :func:`~repro.construction.context.tree_from_predecessors`
  — restricting a per-chunk SPT forest row to a member set walks every
  member's parent chain; the numpy fallback advances a whole frontier per
  iteration, the numba kernel walks each chain scalar-style with early exit
  at the first already-kept node;
* the **absorb / mark-touching** passes of the sparse-cover coarsening
  (:func:`repro.covers.sparse_cover._coarsen_vectorized`) — per growth layer,
  gather the member nodes of the freshly merged balls, dedupe them against
  the cluster stamp, and stamp every pending ball that owns one of the new
  nodes; the numba kernel fuses the three gathers into one pass over the CSR
  rows.

Both kernels are *set-identical* to their numpy fallbacks: the ancestor
closure produces the same ``keep`` mask, and the fused absorb emits the same
new-node **set** (discovery order instead of sorted order — downstream
consumers are stamp arrays and Python sets, so every scheme output is
bit-identical; the build-parity suite asserts it).

``REPRO_JIT=1`` opts in; the import is guarded and any numba failure
silently keeps the numpy fallbacks, so environments without numba (the
default CI container) are unaffected.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np


def jit_requested() -> bool:
    """Whether the environment asked for the numba construction kernels."""
    return os.environ.get("REPRO_JIT", "") == "1"


_JIT_STATE: Dict[str, object] = {"loaded": False, "closure": None,
                                 "absorb": None}


def _jit_kernels():
    """(closure_kernel, absorb_kernel) or (None, None) when numba is unusable.

    Compiled lazily on first use; any failure (missing package, compile
    error) disables the JIT path for the process — the callers fall through
    to the numpy implementations.
    """
    if not _JIT_STATE["loaded"]:
        _JIT_STATE["loaded"] = True
        try:  # pragma: no cover - numba is absent in the default container
            import numba

            _JIT_STATE["closure"] = numba.njit(cache=False, nogil=True)(
                _ancestor_closure_py)
            _JIT_STATE["absorb"] = numba.njit(cache=False, nogil=True)(
                _absorb_mark_py)
        except Exception:
            _JIT_STATE["closure"] = None
            _JIT_STATE["absorb"] = None
    return _JIT_STATE["closure"], _JIT_STATE["absorb"]


# --------------------------------------------------------------------- #
# kernel sources (plain python; compiled by numba under REPRO_JIT=1)
# --------------------------------------------------------------------- #
def _ancestor_closure_py(members, parent, keep):
    """Mark every ancestor of every member in ``keep`` (numba source).

    Walks each member's parent chain until it meets a node already kept —
    the suffix of that chain is shared with a previous walk, so total work
    is O(kept nodes), the same as the frontier fallback.
    """
    for i in range(members.shape[0]):
        v = members[i]
        while v >= 0 and not keep[v]:
            keep[v] = True
            v = parent[v]
    return keep


def _absorb_mark_py(indptr, indices, owners_indptr, owners, merged_stamp,
                    node_stamp, touch_stamp, positions, cid, scratch,
                    mark):  # pragma: no cover - exercised via REPRO_JIT=1
    """Fused coarsening layer: merge balls, collect new nodes, stamp owners.

    For every not-yet-merged ball position, walks its CSR row once; nodes
    unseen by cluster ``cid`` are appended to ``scratch`` (discovery order)
    and — when ``mark`` is set — their owning balls are stamped as touching
    the cluster.  Returns the number of new nodes written to ``scratch``.
    """
    count = 0
    for i in range(positions.shape[0]):
        c = positions[i]
        if merged_stamp[c] == cid:
            continue
        merged_stamp[c] = cid
        for p in range(indptr[c], indptr[c + 1]):
            v = indices[p]
            if node_stamp[v] == cid:
                continue
            node_stamp[v] = cid
            scratch[count] = v
            count += 1
            if mark:
                for q in range(owners_indptr[v], owners_indptr[v + 1]):
                    touch_stamp[owners[q]] = cid
    return count


# --------------------------------------------------------------------- #
# dispatchers (numpy fallback is the always-available reference)
# --------------------------------------------------------------------- #
def ancestor_closure(members: np.ndarray, parent: np.ndarray,
                     keep: np.ndarray) -> np.ndarray:
    """Mark the ancestor closure of ``members`` in ``keep`` (in place).

    ``parent`` maps node -> predecessor (-1 at roots); ``keep`` may already
    hold nodes (chains stop there).  Returns ``keep``.
    """
    if jit_requested():
        kernel = _jit_kernels()[0]
        if kernel is not None:
            kernel(np.ascontiguousarray(members, dtype=np.int64),
                   np.ascontiguousarray(parent, dtype=np.int64), keep)
            return keep
    frontier = np.asarray(members, dtype=np.int64)
    while frontier.size:
        fresh = frontier[~keep[frontier]]
        if fresh.size == 0:
            break
        keep[fresh] = True
        parents = parent[fresh]
        frontier = np.unique(parents[parents >= 0])
    return keep


def absorb_kernel():
    """The compiled fused absorb/mark kernel, or ``None`` (numpy path)."""
    if not jit_requested():
        return None
    return _jit_kernels()[1]
