"""repro — reproduction of *On Space-Stretch Trade-Offs: Upper Bounds*.

Abraham, Gavoille, Malkhi (SPAA 2006) construct, for every integer ``k >= 1``,
a *scale-free name-independent* compact routing scheme with stretch ``O(k)``
and ``~O(n^{1/k})``-bit routing tables whose size is independent of the
network's aspect ratio.

The public API is intentionally small:

``WeightedGraph``
    The weighted, undirected, arbitrarily-named network model.
``AGMRoutingScheme`` / ``AGMParams``
    The paper's routing scheme (Theorem 1) and its tunable constants.
``RoutingSimulator``
    Hop-by-hop execution of any scheme, measuring stretch and cost.
``build_scheme``
    Convenience constructor dispatching on a scheme name ("agm",
    "shortest-path", "cowen", "thorup-zwick", "awerbuch-peleg",
    "exponential").

Example
-------
>>> from repro import WeightedGraph, AGMRoutingScheme, RoutingSimulator
>>> from repro.graphs.generators import random_geometric_graph
>>> g = random_geometric_graph(64, seed=0)
>>> scheme = AGMRoutingScheme.build(g, k=2, seed=1)
>>> sim = RoutingSimulator(g)
>>> report = sim.evaluate(scheme, num_pairs=100, seed=2)
>>> report.max_stretch >= 1.0
True
"""

from repro.graphs.graph import WeightedGraph
from repro.core.params import AGMParams
from repro.core.scheme import AGMRoutingScheme
from repro.routing.simulator import RoutingSimulator
from repro.routing.messages import RouteResult
from repro.factory import build_scheme

__all__ = [
    "WeightedGraph",
    "AGMParams",
    "AGMRoutingScheme",
    "RoutingSimulator",
    "RouteResult",
    "build_scheme",
    "__version__",
]

__version__ = "1.0.0"
