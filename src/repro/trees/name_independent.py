"""Name-independent error-reporting tree routing (Lemma 4).

Lemma 4 of the paper (an enhancement of Laing's scheme [21]): for any
``k >= 1`` and any weighted rooted tree ``T`` there is a *name-independent*
tree routing scheme such that

1. each node stores ``O(k n^{1/k} log^2 n)`` bits;
2. the root can perform a ``j``-bounded search for a destination ``v``:
   (a) if ``v`` is among the ``n^{j/k}`` closest tree nodes to the root, the
   search reaches ``v`` with stretch ``2j - 1``;
   (b) otherwise a negative response returns to the root at cost at most
   ``(2j - 2) * max{ d(root, w) : w among the n^{(j-1)/k} closest }``.

Construction (following §3.1 of the paper):

* nodes are sorted by distance from the root and given **primary names** —
  digit strings over ``Sigma = {0..sigma-1}``: the root gets the empty word,
  the next ``sigma`` nodes one-digit names, the next ``sigma^2`` two-digit
  names, and so on (``V_j`` = nodes whose primary name has at most ``j``
  digits);
* every node also has a **hash name** ``h(name) in Sigma^L`` drawn from a
  ``Theta(log n)``-wise independent family;
* a node with primary name ``(x_1..x_j)`` stores (i) its Lemma 5 table, (ii)
  the Lemma 5 labels of its *trie children* — the nodes named
  ``(x_1..x_j, y)`` for each ``y`` — and (iii) a dictionary mapping the
  global name of every node ``v`` with at most ``j+1`` digits whose hash
  prefix equals ``(x_1..x_j)`` to ``v``'s Lemma 5 label;
* a ``j``-bounded search from the root walks the trie path determined by the
  destination's hash digits; as soon as some visited node's dictionary knows
  the destination's label the search routes to it, and if the budget ``j`` is
  exhausted the search walks back to the root and reports failure.

Deviation from the paper (documented in DESIGN.md §3): the dictionary is not
truncated to the ``n^{1/k} log n`` closest matching nodes — all matching
nodes of ``V_{j+1}`` are stored, which guarantees searches never miss; the
w.h.p. load bound of the paper makes the two choices coincide on all but
pathological hash draws, and the measured dictionary sizes are reported so
the bound can be audited.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graphs.trees import Tree
from repro.hashing.universal import DigitHash
from repro.trees.compact_labeled import CompactTreeRouting, TreeLabel
from repro.utils.bitsize import BitBudget, bits_for_count
from repro.utils.validation import require


@dataclass
class BoundedSearchResult:
    """Outcome of a ``j``-bounded search started at the tree root."""

    found: bool
    path: List[int] = field(default_factory=list)
    cost: float = 0.0
    rounds_used: int = 0
    destination: Optional[int] = None


class NameIndependentTreeRouting:
    """Lemma 4 structure for one rooted tree.

    Parameters
    ----------
    tree:
        The rooted weighted tree.
    names:
        Mapping from tree node (graph index) to its arbitrary global name.
    k:
        Trade-off parameter used for the underlying Lemma 5 tables.
    sigma:
        Alphabet size; defaults to ``ceil(m^{1/k})`` so that ``k`` digit
        levels suffice for all ``m`` nodes.
    name_bits:
        Bits charged for storing one global name in a dictionary entry.
    seed:
        Randomness for the hash family.
    """

    def __init__(
        self,
        tree: Tree,
        names: Dict[int, Hashable],
        k: int = 2,
        sigma: Optional[int] = None,
        name_bits: int = 64,
        seed=None,
    ) -> None:
        require(k >= 1, f"k must be >= 1, got {k}")
        for v in tree.nodes:
            require(v in names, f"missing name for tree node {v}")
        self.tree = tree
        self.k = int(k)
        self.m = tree.size
        self.names = {v: names[v] for v in tree.nodes}
        self.name_to_node = {name: v for v, name in self.names.items()}
        require(len(self.name_to_node) == self.m, "tree node names must be unique")
        self.name_bits = int(name_bits)

        if sigma is None:
            sigma = int(math.ceil(self.m ** (1.0 / self.k))) if self.m > 1 else 1
        self.sigma = max(1, int(sigma))

        self.compact = CompactTreeRouting(tree, k=self.k)

        self._assign_primary_names()
        self.max_digits = max((len(p) for p in self.primary_name.values()), default=0)
        hash_length = max(self.max_digits, 1)
        independence = max(8, int(math.ceil(math.log2(max(self.m, 2)))) + 1)
        self.digit_hash = DigitHash(self.sigma, hash_length, independence=independence, seed=seed)

        self._build_tables()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _assign_primary_names(self) -> None:
        """Assign digit-string names by increasing distance from the root."""
        ordered = self.tree.nodes_by_depth()
        self.primary_name: Dict[int, Tuple[int, ...]] = {}
        self.node_of_primary: Dict[Tuple[int, ...], int] = {}
        idx = 0
        level = 0
        level_capacity = 1  # sigma^0 names of length 0 (just the root)
        current_name: List[int] = []
        for node in ordered:
            if idx >= level_capacity:
                # move to the next digit length
                level += 1
                level_capacity = self.sigma ** level if self.sigma > 1 else 1
                if self.sigma == 1 and level > 0:
                    level_capacity = 1
                idx = 0
            name = self._int_to_digits(idx, level)
            self.primary_name[node] = name
            self.node_of_primary[name] = node
            idx += 1

    def _int_to_digits(self, value: int, length: int) -> Tuple[int, ...]:
        digits = [0] * length
        for pos in range(length - 1, -1, -1):
            digits[pos] = value % self.sigma if self.sigma > 1 else 0
            value //= max(self.sigma, 1)
        return tuple(digits)

    def _build_tables(self) -> None:
        # trie children: primary name (x1..xj) -> for each digit y, the node named (x1..xj,y)
        self.trie_children: Dict[int, Dict[int, int]] = {v: {} for v in self.tree.nodes}
        for node, name in self.primary_name.items():
            if len(name) == 0:
                continue
            parent_name = name[:-1]
            parent = self.node_of_primary.get(parent_name)
            if parent is not None:
                self.trie_children[parent][name[-1]] = node

        # hash digits of every tree node's global name
        self.hash_digits: Dict[int, Tuple[int, ...]] = {
            v: self.digit_hash.digits(self.names[v]) for v in self.tree.nodes
        }

        # dictionary: a node with a j-digit primary name stores label entries for
        # every node with at most j+1 digits whose hash prefix matches its name.
        # For a fixed target t only one holder exists per prefix length j (the
        # node whose primary name equals h(t)[:j]), so the construction is
        # O(m * max_digits) rather than O(m^2).
        self.dictionary: Dict[int, Dict[Hashable, int]] = {v: {} for v in self.tree.nodes}
        for target in self.tree.nodes:
            t_digits = len(self.primary_name[target])
            t_hash = self.hash_digits[target]
            for j in range(max(t_digits - 1, 0), self.max_digits + 1):
                holder = self.node_of_primary.get(t_hash[:j])
                if holder is not None:
                    self.dictionary[holder][self.names[target]] = target

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def table_budget(self, v: int) -> BitBudget:
        """Bit budget of node ``v``: hash function + Lemma 5 table + labels + dictionary."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        b = BitBudget()
        b.add("hash_function", self.digit_hash.storage_bits())
        b.merge(self.compact.table_budget(v), prefix="mu_")
        label_bits = self.compact.max_label_bits()
        digit_bits = bits_for_count(max(self.sigma - 1, 1))
        b.add("trie_child_labels", digit_bits + label_bits, count=len(self.trie_children[v]))
        b.add("dictionary", self.name_bits + label_bits, count=len(self.dictionary[v]))
        return b

    def table_bits(self, v: int) -> int:
        """Total bits stored at node ``v``."""
        return self.table_budget(v).total()

    def table_bits_list(self) -> List[int]:
        """``table_bits`` of every node (tree-node order) in one lean pass."""
        hash_bits = self.digit_hash.storage_bits()
        label_bits = self.compact.max_label_bits()
        digit_bits = bits_for_count(max(self.sigma - 1, 1))
        compact_bits = self.compact.table_bits_list()
        return [hash_bits + cb
                + len(self.trie_children[v]) * (digit_bits + label_bits)
                + len(self.dictionary[v]) * (self.name_bits + label_bits)
                for v, cb in zip(self.tree.nodes, compact_bits)]

    def max_table_bits(self) -> int:
        """Largest per-node table."""
        return max((self.table_bits(v) for v in self.tree.nodes), default=0)

    def max_dictionary_entries(self) -> int:
        """Largest dictionary at any node (to audit the w.h.p. load bound)."""
        return max((len(d) for d in self.dictionary.values()), default=0)

    def header_bits(self) -> int:
        """Header: destination name + hash digits + a Lemma 5 label once learned."""
        digit_bits = bits_for_count(max(self.sigma - 1, 1))
        return (self.name_bits + self.max_digits * digit_bits
                + self.compact.max_label_bits() + bits_for_count(max(self.max_digits, 1)))

    # ------------------------------------------------------------------ #
    # searches
    # ------------------------------------------------------------------ #
    def digits_of(self, v: int) -> int:
        """Number of digits of ``v``'s primary name (its trie depth)."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        return len(self.primary_name[v])

    def required_bound(self, nodes: Sequence[int]) -> int:
        """The minimal ``j`` such that a ``j``-bounded search finds every node in ``nodes``.

        This is the quantity ``b(u, i)`` of §3.2 stores for each sparse level.
        """
        best = 1
        for v in nodes:
            if self.tree.contains(v):
                best = max(best, max(self.digits_of(v), 1))
        return best

    def contains_name(self, name: Hashable) -> bool:
        """Whether some tree node carries this global name."""
        return name in self.name_to_node

    def search_from_root(self, target_name: Hashable,
                         j_bound: Optional[int] = None) -> BoundedSearchResult:
        """Perform a ``j``-bounded search for ``target_name`` starting at the root.

        The returned walk starts at the root; on success it ends at the target
        node, otherwise it ends back at the root (the error report).
        """
        root = self.tree.root
        if j_bound is None:
            j_bound = max(self.max_digits, 1)
        j_bound = max(1, int(j_bound))
        result = BoundedSearchResult(found=False, path=[root], cost=0.0, rounds_used=0)

        target_hash = self.digit_hash.digits(target_name)
        current = root
        for round_no in range(1, j_bound + 1):
            result.rounds_used = round_no
            # does the current node know the destination?
            if self.names[current] == target_name:
                result.found = True
                result.destination = current
                return result
            known = self.dictionary[current].get(target_name)
            if known is not None:
                seg, cost = self.compact.walk(current, known)
                self._extend(result, seg, cost)
                result.found = True
                result.destination = known
                return result
            if round_no == j_bound:
                break
            # descend the trie along the destination's hash digits
            digit = target_hash[round_no - 1] if round_no - 1 < len(target_hash) else 0
            child = self.trie_children[current].get(digit)
            if child is None:
                break  # the trie has no deeper node on this hash path
            seg, cost = self.compact.walk(current, child)
            self._extend(result, seg, cost)
            current = child
        # negative response: report back to the root
        if current != root:
            seg, cost = self.compact.walk(current, root)
            self._extend(result, seg, cost)
        result.found = False
        result.destination = None
        return result

    def plan_search_from_root(self, target_name: Hashable,
                              j_bound: Optional[int] = None
                              ) -> Tuple[List[int], bool, Optional[int]]:
        """The waypoints of :meth:`search_from_root` without performing the walk.

        Returns ``(targets, found, destination)``: the sequence of tree nodes
        the bounded search heads for in order (trie children along the hash
        digits, then the destination once some dictionary knows it, or back
        to the root on a miss).  Mirrors :meth:`search_from_root` decision for
        decision, so the compiled-forwarding walk over these waypoints is
        identical to the scalar search walk.
        """
        root = self.tree.root
        if j_bound is None:
            j_bound = max(self.max_digits, 1)
        j_bound = max(1, int(j_bound))
        targets: List[int] = []
        target_hash = self.digit_hash.digits(target_name)
        current = root
        for round_no in range(1, j_bound + 1):
            if self.names[current] == target_name:
                return targets, True, current
            known = self.dictionary[current].get(target_name)
            if known is not None:
                targets.append(known)
                return targets, True, known
            if round_no == j_bound:
                break
            digit = target_hash[round_no - 1] if round_no - 1 < len(target_hash) else 0
            child = self.trie_children[current].get(digit)
            if child is None:
                break
            targets.append(child)
            current = child
        if current != root:
            targets.append(root)
        return targets, False, None

    @staticmethod
    def _extend(result: BoundedSearchResult, segment: List[int], cost: float) -> None:
        if segment and result.path and segment[0] == result.path[-1]:
            result.path.extend(segment[1:])
        else:
            result.path.extend(segment)
        result.cost += cost
