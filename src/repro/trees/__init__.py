"""Tree routing schemes.

Four schemes, all operating on a :class:`repro.graphs.trees.Tree`:

* :class:`IntervalTreeRouting` — classic DFS-interval routing (stretch 1,
  per-node space proportional to the node's degree).  Used as an addressing
  substrate by the Lemma 7 dictionary scheme and by baselines.
* :class:`CompactTreeRouting` — the labeled scheme of Lemma 5
  (Thorup–Zwick / Fraigniaud–Gavoille style): stretch 1,
  ``O(m^{1/k} log m)``-bit tables, ``O(k log m)``-bit labels.
* :class:`NameIndependentTreeRouting` — Lemma 4: name-independent
  error-reporting routing with ``j``-bounded searches from the root.
* :class:`DictionaryTreeRouting` — Lemma 7: name-independent error-reporting
  routing whose lookup cost is ``O(rad(T))``, used on cover trees.
"""

from repro.trees.interval_routing import IntervalTreeRouting
from repro.trees.compact_labeled import CompactTreeRouting
from repro.trees.name_independent import NameIndependentTreeRouting, BoundedSearchResult
from repro.trees.error_reporting import DictionaryTreeRouting

__all__ = [
    "IntervalTreeRouting",
    "CompactTreeRouting",
    "NameIndependentTreeRouting",
    "BoundedSearchResult",
    "DictionaryTreeRouting",
]
