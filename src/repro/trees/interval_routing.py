"""DFS-interval tree routing (stretch 1).

The oldest labeled tree-routing idea: label every node with its DFS-in
number; every node stores, for each child, the DFS interval of that child's
subtree together with the local port leading to it, plus the port to its
parent.  Routing toward a destination label ``t``:

* if ``t`` equals the current node's DFS-in number — arrived;
* if ``t`` falls inside some child's interval — forward on that child's port;
* otherwise — forward to the parent.

The route follows the unique tree path, so the stretch is exactly 1.  The
per-node space is ``O(deg(v) log m)`` bits, which is *not* compact for
high-degree nodes — that is exactly the weakness Lemma 5 removes — but the
scheme is a convenient addressing layer ("route to the node whose DFS index
is p") used by the Lemma 7 dictionary construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graphs.trees import Tree
from repro.utils.bitsize import BitBudget, bits_for_count, bits_for_id
from repro.utils.validation import require


class IntervalTreeRouting:
    """Interval routing tables for one rooted tree."""

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self.m = tree.size
        # dfs_index -> graph node (the inverse of the label map)
        self._by_dfs: Dict[int, int] = {tree.dfs_in[v]: v for v in tree.nodes}

    # -- labels ---------------------------------------------------------- #
    def label_of(self, v: int) -> int:
        """The routing label of tree node ``v`` (its DFS-in number)."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        return self.tree.dfs_in[v]

    def node_with_label(self, label: int) -> int:
        """The tree node whose DFS-in number is ``label``."""
        require(label in self._by_dfs, f"no tree node has DFS index {label}")
        return self._by_dfs[label]

    def label_bits(self) -> int:
        """Bits per label."""
        return bits_for_count(max(self.m - 1, 1))

    # -- per-node storage -------------------------------------------------- #
    def table_bits(self, v: int) -> int:
        """Declared table size of tree node ``v``."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        budget = self.table_budget(v)
        return budget.total()

    def table_budget(self, v: int) -> BitBudget:
        """Detailed bit budget of node ``v``'s interval table."""
        b = BitBudget()
        idbits = bits_for_count(max(self.m - 1, 1))
        degree = len(self.tree.children[v]) + (0 if v == self.tree.root else 1)
        portbits = bits_for_id(max(degree, 1))
        b.add("own_interval", 2 * idbits)
        if v != self.tree.root:
            b.add("parent_port", portbits)
        b.add("child_intervals", (2 * idbits + portbits), count=len(self.tree.children[v]))
        return b

    def table_bits_list(self) -> List[int]:
        """``table_bits`` of every node (tree-node order) in one lean pass.

        Same integers as :meth:`table_bits`, but computed as plain arithmetic
        without a :class:`BitBudget` per node — construction-time accounting
        charges whole trees at once.
        """
        idbits = bits_for_count(max(self.m - 1, 1))
        root = self.tree.root
        children = self.tree.children
        out: List[int] = []
        for v in self.tree.nodes:
            num_children = len(children[v])
            degree = num_children + (0 if v == root else 1)
            portbits = bits_for_id(max(degree, 1))
            bits = 2 * idbits + num_children * (2 * idbits + portbits)
            if v != root:
                bits += portbits
            out.append(bits)
        return out

    # -- routing ----------------------------------------------------------- #
    def next_hop(self, current: int, target_label: int) -> Optional[int]:
        """Next tree node on the way to the node labeled ``target_label``.

        Returns ``None`` when ``current`` already is the destination.
        """
        require(self.tree.contains(current), f"node {current} is not in the tree")
        t_in = target_label
        c_in = self.tree.dfs_in[current]
        c_out = self.tree.dfs_out[current]
        if t_in == c_in:
            return None
        if c_in <= t_in <= c_out:
            for child in self.tree.children[current]:
                if self.tree.dfs_in[child] <= t_in <= self.tree.dfs_out[child]:
                    return child
            raise RuntimeError(
                f"inconsistent intervals: {t_in} inside node {current} but no child matches")
        require(current != self.tree.root,
                f"target label {t_in} is outside the tree rooted at {self.tree.root}")
        return self.tree.parent[current]

    def walk(self, source: int, target_label: int) -> Tuple[List[int], float]:
        """Full walk (node sequence, weighted cost) from ``source`` to the label."""
        path = [source]
        cost = 0.0
        current = source
        for _ in range(2 * self.m + 1):
            nxt = self.next_hop(current, target_label)
            if nxt is None:
                return path, cost
            cost += self._edge_weight(current, nxt)
            path.append(nxt)
            current = nxt
        raise RuntimeError("interval routing walk did not terminate")

    def _edge_weight(self, a: int, b: int) -> float:
        if self.tree.parent.get(a) == b:
            return self.tree.edge_weight[a]
        if self.tree.parent.get(b) == a:
            return self.tree.edge_weight[b]
        raise RuntimeError(f"({a}, {b}) is not a tree edge")
