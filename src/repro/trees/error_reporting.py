"""Name-independent error-reporting tree routing with O(rad) lookups (Lemma 7).

Lemma 7 of the paper (inherited from Abraham–Gavoille–Malkhi, DISC 2004 [3]):
for every tree ``T`` with ``m`` nodes taken from an ``n``-node graph there is
a name-independent tree routing scheme that routes on paths of length at most
``4 rad(T) + 2k maxE(T)``, uses ``O(k n^{1/k} log n)`` bits per node and
``O(log^2 n)``-bit headers; looking up a name that is *not* in the tree also
costs at most one such closed path before a negative answer returns to the
source.

The cited construction is not spelled out in this paper, so the reproduction
implements a hash-distributed dictionary with the same interface and the same
cost shape (see DESIGN.md §3, item 4):

* every global name hashes to a *responsible* tree node — the node whose DFS
  index equals ``hash(name) mod m``;
* the responsible node stores, for every tree node ``v`` in its bucket, the
  pair (name of ``v``, DFS index of ``v``);
* each node keeps a DFS-interval routing table so that "walk to the node with
  DFS index p" needs no extra information;
* a lookup starting at any tree node walks: source → root → responsible node
  → destination, i.e. at most ``4 rad(T)`` in tree distance (each leg is a
  tree path of length ≤ 2 rad, and the first two legs are root-bound so ≤ rad
  each); a miss walks back to the source, again within the same bound.

The per-node space is ``O(deg(v) log m)`` (interval table) plus the expected
``O(1)`` (w.h.p. ``O(log n)``) dictionary bucket — the degree term is the
substitution's deviation from the paper's bound and is reported separately in
the bit budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.graphs.trees import Tree
from repro.hashing.universal import BucketHash
from repro.trees.interval_routing import IntervalTreeRouting
from repro.utils.bitsize import BitBudget, bits_for_count
from repro.utils.validation import require


@dataclass
class DictionaryLookupResult:
    """Outcome of one lookup through the distributed dictionary."""

    found: bool
    path: List[int] = field(default_factory=list)
    cost: float = 0.0
    destination: Optional[int] = None


class DictionaryTreeRouting:
    """Lemma 7 structure for one (cover) tree."""

    def __init__(
        self,
        tree: Tree,
        names: Dict[int, Hashable],
        name_bits: int = 64,
        seed=None,
    ) -> None:
        for v in tree.nodes:
            require(v in names, f"missing name for tree node {v}")
        self.tree = tree
        self.m = tree.size
        self.names = {v: names[v] for v in tree.nodes}
        self.name_to_node = {name: v for v, name in self.names.items()}
        require(len(self.name_to_node) == self.m, "tree node names must be unique")
        self.name_bits = int(name_bits)

        self.interval = IntervalTreeRouting(tree)
        self.bucket_hash = BucketHash(self.m, seed=seed)
        self._dfs_order = tree.nodes_by_dfs()

        # responsible node (by DFS index) -> {name: dfs label of the named node}
        self.buckets: Dict[int, Dict[Hashable, int]] = {v: {} for v in tree.nodes}
        for v in tree.nodes:
            responsible = self.responsible_node(self.names[v])
            self.buckets[responsible][self.names[v]] = self.interval.label_of(v)

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def responsible_node(self, name: Hashable) -> int:
        """The tree node responsible for storing ``name``'s dictionary entry."""
        return self._dfs_order[self.bucket_hash.bucket(name)]

    def max_bucket_entries(self) -> int:
        """Largest dictionary bucket (w.h.p. ``O(log n / log log n)``)."""
        return max((len(b) for b in self.buckets.values()), default=0)

    def contains_name(self, name: Hashable) -> bool:
        """Whether the tree contains a node with this global name."""
        return name in self.name_to_node

    # ------------------------------------------------------------------ #
    # storage accounting
    # ------------------------------------------------------------------ #
    def table_budget(self, v: int) -> BitBudget:
        """Bit budget of node ``v``: interval table + hash function + bucket entries."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        b = BitBudget()
        b.merge(self.interval.table_budget(v), prefix="interval_")
        b.add("bucket_hash", self.bucket_hash.storage_bits())
        entry_bits = self.name_bits + bits_for_count(max(self.m - 1, 1))
        b.add("bucket_entries", entry_bits, count=len(self.buckets[v]))
        return b

    def table_bits(self, v: int) -> int:
        """Total bits stored at node ``v``."""
        return self.table_budget(v).total()

    def table_bits_list(self) -> List[int]:
        """``table_bits`` of every node (tree-node order) in one lean pass."""
        hash_bits = self.bucket_hash.storage_bits()
        entry_bits = self.name_bits + bits_for_count(max(self.m - 1, 1))
        interval_bits = self.interval.table_bits_list()
        return [ib + hash_bits + entry_bits * len(self.buckets[v])
                for v, ib in zip(self.tree.nodes, interval_bits)]

    def max_table_bits(self) -> int:
        """Largest per-node table in the tree."""
        return max((self.table_bits(v) for v in self.tree.nodes), default=0)

    def header_bits(self) -> int:
        """Header: destination name + a DFS label + a small state tag."""
        return self.name_bits + bits_for_count(max(self.m - 1, 1)) + 8

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def lookup(self, source: int, target_name: Hashable) -> DictionaryLookupResult:
        """Route from tree node ``source`` to the node named ``target_name``.

        The walk is source → root → responsible node → destination.  If the
        name is not stored (the destination is not in this tree) the walk
        returns to ``source`` and ``found`` is ``False`` — the error report.
        """
        require(self.tree.contains(source), f"source {source} is not in the tree")
        result = DictionaryLookupResult(found=False, path=[source], cost=0.0)

        # leg 1: climb to the root (the paper's dense strategy also starts at the root)
        self._walk_to_label(result, self.interval.label_of(self.tree.root))
        # leg 2: descend to the responsible node
        responsible = self.responsible_node(target_name)
        self._walk_to_label(result, self.interval.label_of(responsible))
        # leg 3: the responsible node either knows the destination or reports a miss
        entry = self.buckets[responsible].get(target_name)
        if entry is None:
            # negative response: travel back to the source
            self._walk_to_label(result, self.interval.label_of(source))
            result.found = False
            return result
        self._walk_to_label(result, entry)
        result.found = True
        result.destination = self.interval.node_with_label(entry)
        return result

    def lookup_from_root(self, target_name: Hashable) -> DictionaryLookupResult:
        """Lookup starting at the root (used when the caller already routed there)."""
        return self.lookup(self.tree.root, target_name)

    def plan_lookup(self, source: int, target_name: Hashable
                    ) -> Tuple[List[int], bool, Optional[int]]:
        """The waypoints of :meth:`lookup` without performing the walk.

        Returns ``(targets, found, destination)`` where ``targets`` is the
        sequence of tree nodes the walk heads for in order (root, responsible
        node, then the destination on a hit or back to ``source`` on a miss).
        The compiled-forwarding layer turns each waypoint into a lockstep
        tree leg; the resulting walk is identical to :meth:`lookup`'s.
        """
        require(self.tree.contains(source), f"source {source} is not in the tree")
        responsible = self.responsible_node(target_name)
        targets = [self.tree.root, responsible]
        entry = self.buckets[responsible].get(target_name)
        if entry is None:
            targets.append(source)
            return targets, False, None
        destination = self.interval.node_with_label(entry)
        targets.append(destination)
        return targets, True, destination

    def _walk_to_label(self, result: DictionaryLookupResult, label: int) -> None:
        current = result.path[-1]
        seg, cost = self.interval.walk(current, label)
        if seg and seg[0] == current:
            result.path.extend(seg[1:])
        else:
            result.path.extend(seg)
        result.cost += cost
