"""Labeled tree routing with compact tables (Lemma 5).

Lemma 5 (Fraigniaud–Gavoille [15], Thorup–Zwick [29]): *for every integer
``k > 1`` and weighted tree with ``m`` nodes there is a labeled routing
scheme that routes optimally from any source to any destination given the
destination's label; storage is ``O(m^{1/k} log m)`` bits per node and labels
and headers are ``O(k log m)`` bits.*

The implementation uses the ``b``-heavy-child decomposition with
``b = ceil(m^{1/k})``:

* a child ``c`` of ``v`` is **heavy** when ``subtree_size(c) >= subtree_size(v)/b``
  — a node has at most ``b`` heavy children;
* every root-to-node path contains at most ``k`` **light** edges, because each
  light descent divides the subtree size by more than ``b`` and ``b^k >= m``;
* a node's *table* holds its own DFS interval, its parent port, and the
  (interval, port) of each heavy child — ``O(b log m)`` bits;
* a node's *label* holds its DFS-in number plus, for every light edge on its
  root path, the pair (DFS-in of the edge's upper endpoint, port of the edge
  at that endpoint) — ``O(k log m)`` bits.

Routing at node ``x`` toward label ``L(t)``: if ``t`` is not in ``x``'s
subtree, go to the parent; if it is, forward into the heavy child whose
interval contains ``t`` if one exists, otherwise the label's light-edge list
contains an entry for ``x`` and gives the port directly.  The walk follows
the unique tree path, so the stretch is exactly 1.

Ports are local edge indices (position of the neighbor in the node's sorted
tree-neighbor list); in the standard routing model forwarding on a known port
is free and costs no table space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.graphs.trees import Tree
from repro.utils.bitsize import BitBudget, bits_for_count, bits_for_id
from repro.utils.validation import require


@dataclass(frozen=True)
class TreeLabel:
    """Destination label: own DFS-in number + light-edge (origin DFS-in, port) list."""

    dfs_in: int
    light_edges: Tuple[Tuple[int, int], ...]

    def size_bits(self, m: int) -> int:
        """Size of the label for a tree with ``m`` nodes."""
        idbits = bits_for_count(max(m - 1, 1))
        # each light entry: origin id + port number (port <= degree <= m)
        return idbits + len(self.light_edges) * 2 * idbits


class _HeavyChildren:
    """Read-only ``{node: [heavy children]}`` view, materialized per lookup.

    Keeps the historical ``routing.heavy_children[v]`` access working while
    the heavy classification itself lives in one boolean slot array.
    """

    __slots__ = ("_routing",)

    def __init__(self, routing: "CompactTreeRouting") -> None:
        self._routing = routing

    def __getitem__(self, v: int) -> List[int]:
        return self._routing._heavy_children_of(v)


class CompactTreeRouting:
    """Lemma 5 routing structure for one rooted tree.

    Parameters
    ----------
    tree:
        The rooted weighted tree.
    k:
        Trade-off parameter; ``b = ceil(m^{1/k})`` heavy children are kept
        per node and labels contain at most ``k`` light-edge entries.
    """

    def __init__(self, tree: Tree, k: int = 2) -> None:
        require(k >= 1, f"k must be >= 1, got {k}")
        self.tree = tree
        self.k = int(k)
        self.m = tree.size
        self.b = max(2, int(math.ceil(self.m ** (1.0 / self.k)))) if self.m > 1 else 1

        # Heavy classification straight from the tree's slot arrays:
        # slot = DFS-in number, so subtree_size(slot) = dfs_out - slot + 1 and
        # the heavy test is one vectorized comparison over all child slots.
        # Full labels and port lists are materialized lazily per node — a
        # construction only pays O(m) array work plus one light-edge counting
        # scan, not a Python tuple/list build per node.
        import numpy as np

        slots = tree._forwarding_slots
        size = self.m
        subtree = slots.dfs_out - np.arange(size, dtype=np.int64) + 1
        parent_local = slots.parent_local
        child_slots = np.flatnonzero(parent_local >= 0)
        heavy_of_slot = np.zeros(size, dtype=bool)
        heavy_of_slot[child_slots] = (
            subtree[child_slots] * self.b >= subtree[parent_local[child_slots]])
        self._node_of_slot = slots.node_of_slot
        self._heavy_of_slot = heavy_of_slot

        # light-edge count per slot: one preorder scan (parents precede
        # children in slot order)
        counts = [0] * size
        parents_list = parent_local.tolist()
        heavy_list = heavy_of_slot.tolist()
        for s in range(size):
            p = parents_list[s]
            if p >= 0:
                counts[s] = counts[p] + (0 if heavy_list[s] else 1)
        self._light_count_of_slot = counts

        self.heavy_children = _HeavyChildren(self)
        self._ports: Dict[int, List[int]] = {}
        self._labels: Dict[int, TreeLabel] = {}
        self._max_label_bits: Optional[int] = None
        self._max_table_bits: Optional[int] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _ports_of(self, v: int) -> List[int]:
        """Sorted tree-neighbor list of ``v`` (lazy; children are pre-sorted)."""
        ports = self._ports.get(v)
        if ports is None:
            import bisect

            ports = list(self.tree.children[v])
            if v != self.tree.root:
                bisect.insort(ports, self.tree.parent[v])
            self._ports[v] = ports
        return ports

    def _port_to(self, v: int, neighbor: int) -> int:
        return self._ports_of(v).index(neighbor)

    def _neighbor_on_port(self, v: int, port: int) -> int:
        return self._ports_of(v)[port]

    def _heavy_children_of(self, v: int) -> List[int]:
        """Heavy children of ``v`` in ascending id order (lazy per node)."""
        tree = self.tree
        dfs_in = tree.dfs_in
        return [c for c in tree.children[v] if self._heavy_of_slot[dfs_in[c]]]

    # ------------------------------------------------------------------ #
    # public queries
    # ------------------------------------------------------------------ #
    def label_of(self, v: int) -> TreeLabel:
        """The destination label of tree node ``v`` (materialized on demand).

        The light-edge list is collected by one walk up the root path —
        identical content and order (root first) to the eager construction.
        """
        require(self.tree.contains(v), f"node {v} is not in the tree")
        label = self._labels.get(v)
        if label is None:
            tree = self.tree
            dfs_in = tree.dfs_in
            entries: List[Tuple[int, int]] = []
            node = v
            while node != tree.root:
                parent = tree.parent[node]
                if not self._heavy_of_slot[dfs_in[node]]:
                    entries.append((dfs_in[parent], self._port_to(parent, node)))
                node = parent
            label = TreeLabel(dfs_in[v], tuple(reversed(entries)))
            self._labels[v] = label
        return label

    def max_light_edges(self) -> int:
        """Largest number of light-edge entries in any label (should be <= k)."""
        return max(self._light_count_of_slot, default=0)

    def label_bits(self, v: int) -> int:
        """Size in bits of ``v``'s label (no label materialization needed)."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        idbits = bits_for_count(max(self.m - 1, 1))
        return idbits + self._light_count_of_slot[self.tree.dfs_in[v]] * 2 * idbits

    def max_label_bits(self) -> int:
        """Largest label size (cached)."""
        if self._max_label_bits is None:
            idbits = bits_for_count(max(self.m - 1, 1))
            self._max_label_bits = idbits + self.max_light_edges() * 2 * idbits
        return self._max_label_bits

    def _degree(self, v: int) -> int:
        return len(self.tree.children[v]) + (0 if v == self.tree.root else 1)

    def table_budget(self, v: int) -> BitBudget:
        """Bit budget of node ``v``'s routing table."""
        require(self.tree.contains(v), f"node {v} is not in the tree")
        b = BitBudget()
        idbits = bits_for_count(max(self.m - 1, 1))
        portbits = bits_for_id(max(self._degree(v), 1))
        b.add("own_interval", 2 * idbits)
        if v != self.tree.root:
            b.add("parent_port", portbits)
        b.add("heavy_children", 2 * idbits + portbits, count=len(self.heavy_children[v]))
        return b

    def table_bits(self, v: int) -> int:
        """Table size in bits of node ``v``."""
        return self.table_budget(v).total()

    def table_bits_list(self) -> List[int]:
        """``table_bits`` of every node (tree-node order) in one lean pass.

        Same integers as :meth:`table_bits` without a per-node
        :class:`BitBudget`; used by construction-time accounting to charge a
        whole tree at once.
        """
        import numpy as np

        idbits = bits_for_count(max(self.m - 1, 1))
        root = self.tree.root
        dfs_in = self.tree.dfs_in
        heavy_counts = np.bincount(
            self.tree._forwarding_slots.parent_local[
                np.flatnonzero(self._heavy_of_slot)],
            minlength=self.m) if self.m else np.zeros(0, dtype=np.int64)
        out: List[int] = []
        children = self.tree.children
        for v in self.tree.nodes:
            degree = len(children[v]) + (0 if v == root else 1)
            portbits = bits_for_id(max(degree, 1))
            bits = 2 * idbits + int(heavy_counts[dfs_in[v]]) * (2 * idbits + portbits)
            if v != root:
                bits += portbits
            out.append(bits)
        return out

    def max_table_bits(self) -> int:
        """Largest table in the tree (cached)."""
        if self._max_table_bits is None:
            self._max_table_bits = max(
                (self.table_bits(v) for v in self.tree.nodes), default=0)
        return self._max_table_bits

    def header_bits(self) -> int:
        """Header size: the destination label travels in the header."""
        return self.max_label_bits()

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def next_hop(self, current: int, label: TreeLabel) -> Optional[int]:
        """Next tree node toward the destination carrying ``label`` (None = arrived)."""
        require(self.tree.contains(current), f"node {current} is not in the tree")
        t_in = label.dfs_in
        c_in = self.tree.dfs_in[current]
        c_out = self.tree.dfs_out[current]
        if t_in == c_in:
            return None
        if not (c_in <= t_in <= c_out):
            require(current != self.tree.root,
                    "destination label does not belong to this tree")
            return self.tree.parent[current]
        # destination is in our subtree: heavy child or light edge from the label
        for c in self.heavy_children[current]:
            if self.tree.dfs_in[c] <= t_in <= self.tree.dfs_out[c]:
                return c
        for origin, port in label.light_edges:
            if origin == c_in:
                return self._neighbor_on_port(current, port)
        raise RuntimeError(
            f"label of node with dfs_in={t_in} has no light-edge entry for node {current}; "
            "the label does not belong to this tree")

    def walk(self, source: int, target: int) -> Tuple[List[int], float]:
        """Walk from ``source`` to ``target`` (both tree nodes); returns (path, cost)."""
        label = self.label_of(target)
        path = [source]
        cost = 0.0
        current = source
        for _ in range(2 * self.m + 1):
            nxt = self.next_hop(current, label)
            if nxt is None:
                return path, cost
            cost += self._edge_weight(current, nxt)
            path.append(nxt)
            current = nxt
        raise RuntimeError("compact tree routing walk did not terminate")

    def _edge_weight(self, a: int, b: int) -> float:
        if self.tree.parent.get(a) == b:
            return self.tree.edge_weight[a]
        if self.tree.parent.get(b) == a:
            return self.tree.edge_weight[b]
        raise RuntimeError(f"({a}, {b}) is not a tree edge")
