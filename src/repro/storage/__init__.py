"""Out-of-core array placement under a configurable memory budget."""

from repro.storage.memmap import (SPILL_MIN_BYTES, alloc_array, is_memmap,
                                  memory_budget, persist_array,
                                  reset_accounting, spill_array, spill_dir,
                                  storage_report)
from repro.storage.rowstore import (SpilledRowStore, row_spill_budget,
                                    row_spill_enabled)

__all__ = [
    "SPILL_MIN_BYTES",
    "SpilledRowStore",
    "alloc_array",
    "is_memmap",
    "memory_budget",
    "persist_array",
    "reset_accounting",
    "row_spill_budget",
    "row_spill_enabled",
    "spill_array",
    "spill_dir",
    "storage_report",
]
