"""Out-of-core array placement under a configurable memory budget."""

from repro.storage.memmap import (SPILL_MIN_BYTES, alloc_array, is_memmap,
                                  memory_budget, persist_array,
                                  reset_accounting, spill_dir, storage_report)

__all__ = [
    "SPILL_MIN_BYTES",
    "alloc_array",
    "is_memmap",
    "memory_budget",
    "persist_array",
    "reset_accounting",
    "spill_dir",
    "storage_report",
]
