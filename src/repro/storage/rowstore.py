"""Spill store for evicted distance rows: an LRU of memmap-backed slots.

The lazy distance backend keeps a small LRU of exact Dijkstra rows in RAM.
Before this module, falling out of that LRU meant the row was *gone* — the
next touch re-ran a full Dijkstra (33 ms per row at n=100k).  Stretch
verification and multi-pass builds re-touch rows constantly, so at 100k+
the backend spent most of its time recomputing rows it had already paid
for.

:class:`SpilledRowStore` catches evictions instead.  Rows land in
float64 slots of one (or more) anonymous memmap *extents* allocated
through :func:`repro.storage.spill_array` — so they obey the same spill
accounting, live in ``REPRO_SPILL_DIR``, and can never leak a file (the
backing files are unlinked at creation).  A restore is a page-cache read:
microseconds against a warm cache, one sequential disk read cold.

Knobs (environment):

* ``REPRO_ROW_SPILL`` — ``0`` disables the store entirely (evictions are
  discarded, the pre-PR behavior).  Default: enabled.
* ``REPRO_ROW_SPILL_BYTES`` — byte cap for slot extents (same ``K/M/G/T``
  suffixes as ``REPRO_MEMORY_BUDGET``).  Once the cap is reached the store
  recycles its least-recently-touched slot instead of growing.  Default
  2 GiB — 2500+ rows at n=100k.

The store is **not** a correctness structure: every row it returns is a
bit-identical copy of what was stored, and the owner must :meth:`clear`
it on graph mutation (the backend does so from its version watch).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from repro.storage.memmap import _SUFFIXES, spill_array

#: default byte cap for the spill extents (2 GiB)
DEFAULT_SPILL_BYTES = 2 << 30

#: rows per extent allocation — amortizes the mkstemp/mmap syscalls
EXTENT_ROWS = 256


def row_spill_enabled() -> bool:
    """Whether evicted rows should be spilled (``REPRO_ROW_SPILL`` != 0)."""
    return os.environ.get("REPRO_ROW_SPILL", "1").strip() != "0"


def row_spill_budget() -> int:
    """Byte cap for the spill extents (``REPRO_ROW_SPILL_BYTES``)."""
    raw = os.environ.get("REPRO_ROW_SPILL_BYTES", "").strip().lower()
    if not raw:
        return DEFAULT_SPILL_BYTES
    mult = 1
    if raw[-1] in _SUFFIXES:
        mult = _SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"unparseable REPRO_ROW_SPILL_BYTES "
            f"{os.environ['REPRO_ROW_SPILL_BYTES']!r}") from exc
    return max(int(value * mult), 0)


class SpilledRowStore:
    """LRU slot map ``row index -> memmap slot`` over growable extents.

    ``row_length`` fixes the slot width (one float64 distance row).  Slots
    are handed out from extents of :data:`EXTENT_ROWS` rows; when adding a
    new extent would exceed the byte cap, the least-recently-used slot is
    recycled (its old row is forgotten).  ``get`` copies the slot out, so
    callers own plain RAM ndarrays and a later recycle cannot mutate them.
    """

    def __init__(self, row_length: int,
                 max_bytes: Optional[int] = None) -> None:
        self.row_length = int(row_length)
        self.max_bytes = (row_spill_budget() if max_bytes is None
                          else int(max_bytes))
        self._extents: List[np.ndarray] = []
        self._slots: "OrderedDict[int, int]" = OrderedDict()  # u -> slot id
        self._free: List[int] = []
        self._row_bytes = self.row_length * 8
        self.stores = 0
        self.restores = 0
        self.recycles = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, u: int) -> bool:
        return u in self._slots

    @property
    def capacity_rows(self) -> int:
        """Max slots the byte cap allows (at least one extent's worth)."""
        if self._row_bytes == 0:
            return 0
        return max(self.max_bytes // self._row_bytes, EXTENT_ROWS)

    def _slot_view(self, slot: int) -> np.ndarray:
        extent = self._extents[slot // EXTENT_ROWS]
        return extent[slot % EXTENT_ROWS]

    def _acquire_slot(self) -> Optional[int]:
        if self._free:
            return self._free.pop()
        allocated = len(self._extents) * EXTENT_ROWS
        if allocated < self.capacity_rows:
            rows = min(EXTENT_ROWS, self.capacity_rows - allocated)
            if rows > 0:
                self._extents.append(
                    spill_array((rows, self.row_length), np.float64))
                self._free.extend(range(allocated + rows - 1, allocated, -1))
                return allocated
        if self._slots:
            # recycle the least-recently-touched row's slot
            _, slot = self._slots.popitem(last=False)
            self.recycles += 1
            return slot
        return None

    def put(self, u: int, row: np.ndarray) -> None:
        """Store (a copy of) ``row`` for node ``u``; refreshes recency."""
        slot = self._slots.pop(u, None)
        if slot is None:
            slot = self._acquire_slot()
            if slot is None:
                return
        self._slot_view(slot)[:] = row
        self._slots[u] = slot
        self.stores += 1

    def get(self, u: int) -> Optional[np.ndarray]:
        """The stored row for ``u`` as a fresh ndarray, or ``None``."""
        slot = self._slots.get(u)
        if slot is None:
            return None
        self._slots.move_to_end(u)
        self.restores += 1
        return np.array(self._slot_view(slot), dtype=np.float64)

    def discard(self, u: int) -> None:
        """Forget ``u``'s row (the slot returns to the free list)."""
        slot = self._slots.pop(u, None)
        if slot is not None:
            self._free.append(slot)

    def clear(self) -> None:
        """Drop every stored row *and* the extents (graph mutated)."""
        self._slots.clear()
        self._free = []
        self._extents = []

    def report(self) -> Dict[str, int]:
        """Counters for bench emitters and diagnostics."""
        return {
            "rows": len(self._slots),
            "capacity_rows": self.capacity_rows,
            "stores": self.stores,
            "restores": self.restores,
            "recycles": self.recycles,
            "extent_bytes": sum(int(e.nbytes) for e in self._extents),
        }
