"""Budgeted array placement: RAM below a byte budget, ``np.memmap`` above.

The scale ladder past n=20k needs structures that no longer fit in RAM — at
n=100k the shortest-path scheme's ``(n, n)`` int32 next-hop matrix alone is
40 GB.  This module is the single place that decides where a large build
array lives:

* ``REPRO_MEMORY_BUDGET`` (e.g. ``16G``, ``512M``, ``4096K`` or raw bytes)
  caps the total bytes of *budgeted* allocations resident in RAM.  Unset
  (the default) means unlimited: every allocation stays a plain ndarray and
  nothing below changes behavior.
* :func:`alloc_array` / :func:`persist_array` hand out ``np.memmap``-backed
  arrays once the budget is exhausted.  A memmap is an ndarray subclass, so
  every consumer — ``compile_forwarding()``, ``run_lockstep``, the traffic
  engine — indexes it exactly like RAM; parity tests assert the walks and
  official statistics are bit-identical either way.
* Spill files are created under ``REPRO_SPILL_DIR`` (default: the system
  temp dir) and **unlinked immediately** after mapping: the pages live for
  exactly the lifetime of the array, survive ``fork()`` (the mapping is
  shared, so shard workers read the same physical pages — the
  :class:`~repro.traffic.shm.SharedArena` deliberately skips memmaps), and
  can never leak a file past the process.
* RAM accounting is released when a budgeted array is garbage collected
  (a ``weakref`` finalizer), so transient build scratch does not
  permanently consume the budget.

Arrays smaller than :data:`SPILL_MIN_BYTES` never spill — mapping syscalls
would dominate — but still count toward the budget.
"""

from __future__ import annotations

import os
import tempfile
import threading
import weakref
from typing import Dict, Optional, Tuple, Union

import numpy as np

#: arrays below this many bytes are never spilled (but are still budgeted)
SPILL_MIN_BYTES = 1 << 20

_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}

_lock = threading.Lock()
_ram_bytes = 0        # budgeted bytes currently alive in RAM
_spilled_bytes = 0    # cumulative bytes handed out as memmaps
_spill_count = 0      # number of spilled allocations
_spill_live_bytes = 0   # spilled bytes currently alive (mapped)
_spill_high_water = 0   # max of _spill_live_bytes over the process life


def memory_budget() -> Optional[int]:
    """The configured RAM budget in bytes, or ``None`` for unlimited.

    Parsed from ``REPRO_MEMORY_BUDGET``; accepts a raw byte count or a
    ``K``/``M``/``G``/``T`` suffix (binary multiples).  ``0``, ``none`` and
    the empty string all mean unlimited.
    """
    raw = os.environ.get("REPRO_MEMORY_BUDGET", "").strip().lower()
    if not raw or raw in ("0", "none", "unlimited"):
        return None
    mult = 1
    if raw[-1] in _SUFFIXES:
        mult = _SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"unparseable REPRO_MEMORY_BUDGET {os.environ['REPRO_MEMORY_BUDGET']!r}"
            " (expected e.g. '16G', '512M' or a byte count)") from exc
    return max(int(value * mult), 1)


def spill_dir() -> str:
    """Directory for spill files (``REPRO_SPILL_DIR`` or the temp dir)."""
    return os.environ.get("REPRO_SPILL_DIR") or tempfile.gettempdir()


def is_memmap(array: object) -> bool:
    """Whether ``array`` is (a view over) a spilled memmap."""
    return isinstance(array, np.memmap)


def _release(nbytes: int) -> None:
    global _ram_bytes
    with _lock:
        _ram_bytes -= nbytes


def _charge_ram(array: np.ndarray) -> np.ndarray:
    """Count ``array`` against the RAM budget until it is collected."""
    global _ram_bytes
    nbytes = int(array.nbytes)
    with _lock:
        _ram_bytes += nbytes
    weakref.finalize(array, _release, nbytes)
    return array


def _should_spill(nbytes: int) -> bool:
    """Budget decision for an allocation of ``nbytes`` (accounts spills)."""
    global _spilled_bytes, _spill_count
    budget = memory_budget()
    if budget is None or nbytes < SPILL_MIN_BYTES:
        return False
    with _lock:
        over = _ram_bytes + nbytes > budget
        if over:
            _spilled_bytes += nbytes
            _spill_count += 1
    return over


def _release_spill(nbytes: int) -> None:
    global _spill_live_bytes
    with _lock:
        _spill_live_bytes -= nbytes


def _charge_spill(array: np.memmap) -> np.memmap:
    """Track live spill bytes (and the high-water mark) until collection."""
    global _spill_live_bytes, _spill_high_water
    nbytes = int(array.nbytes)
    with _lock:
        _spill_live_bytes += nbytes
        _spill_high_water = max(_spill_high_water, _spill_live_bytes)
    weakref.finalize(array, _release_spill, nbytes)
    return array


def _new_memmap(shape: Tuple[int, ...], dtype: np.dtype) -> np.memmap:
    """A fresh anonymous-lifetime memmap (file unlinked once mapped)."""
    fd, path = tempfile.mkstemp(prefix="repro-spill-", suffix=".mm",
                                dir=spill_dir())
    os.close(fd)
    try:
        out = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
    finally:
        os.unlink(path)
    return out


def alloc_array(shape: Union[int, Tuple[int, ...]], dtype,
                fill=None) -> np.ndarray:
    """Allocate ``shape`` of ``dtype``, memmap-backed once over budget.

    ``fill`` initializes every element (``None`` leaves the contents
    unspecified: uninitialized in RAM, zero pages under spill).  The RAM
    path is charged against the budget and released on collection.
    """
    if np.isscalar(shape):
        shape = (int(shape),)
    else:
        shape = tuple(int(s) for s in shape)
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(np.asarray(shape, dtype=np.int64))) * dtype.itemsize
    if _should_spill(nbytes):
        out: np.ndarray = _charge_spill(_new_memmap(shape, dtype))
        if fill is not None and fill != 0:
            out[...] = fill
        return out
    if fill is None:
        return _charge_ram(np.empty(shape, dtype=dtype))
    if fill == 0:
        return _charge_ram(np.zeros(shape, dtype=dtype))
    return _charge_ram(np.full(shape, fill, dtype=dtype))


def persist_array(array: np.ndarray) -> np.ndarray:
    """Place an already-built array: spill a copy when over budget.

    Returns ``array`` itself (charged against the budget) while the budget
    holds; past it, copies into a memmap and lets the RAM original die.
    Idempotent on memmaps and a no-op on small arrays.
    """
    if isinstance(array, np.memmap) or not isinstance(array, np.ndarray):
        return array
    if not _should_spill(int(array.nbytes)):
        if array.nbytes >= SPILL_MIN_BYTES and array.base is None:
            _charge_ram(array)
        return array
    out = _charge_spill(_new_memmap(array.shape, array.dtype))
    out[...] = array
    return out


def spill_array(shape: Union[int, Tuple[int, ...]], dtype) -> np.ndarray:
    """Allocate a memmap-backed array unconditionally (budget ignored).

    For consumers that *know* their data is cold — the lazy backend's row
    spill store keeps evicted Dijkstra rows here so re-touched rows come
    back as a page-cache read instead of a fresh graph search.  Contents
    start zeroed (fresh file pages); the allocation is counted in the spill
    accounting and the high-water mark like any budget-driven spill.
    """
    global _spilled_bytes, _spill_count
    if np.isscalar(shape):
        shape = (int(shape),)
    else:
        shape = tuple(int(s) for s in shape)
    dtype = np.dtype(dtype)
    nbytes = int(np.prod(np.asarray(shape, dtype=np.int64))) * dtype.itemsize
    with _lock:
        _spilled_bytes += nbytes
        _spill_count += 1
    return _charge_spill(_new_memmap(shape, dtype))


def storage_report() -> Dict[str, object]:
    """Current accounting snapshot (for bench emitters and diagnostics)."""
    with _lock:
        return {
            "memory_budget": memory_budget(),
            "budgeted_ram_bytes": int(_ram_bytes),
            "spilled_bytes": int(_spilled_bytes),
            "spill_count": int(_spill_count),
            "spill_live_bytes": int(_spill_live_bytes),
            "spill_high_water_bytes": int(_spill_high_water),
        }


def reset_accounting() -> None:
    """Testing hook: zero the counters (live finalizers may go negative)."""
    global _ram_bytes, _spilled_bytes, _spill_count
    global _spill_live_bytes, _spill_high_water
    with _lock:
        _ram_bytes = 0
        _spilled_bytes = 0
        _spill_count = 0
        _spill_live_bytes = 0
        _spill_high_water = 0
