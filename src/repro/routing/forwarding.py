"""Compiled forwarding programs and the lockstep batch routing engine.

The scalar evaluation path asks a scheme to ``route()`` one pair at a time and
walks trees hop by hop in Python, so at scale the simulator — not the schemes —
dominates wall time.  This module compiles the *state* each scheme routes over
(trees with DFS interval labels, per-destination next-hop tables) into numpy
structure-of-arrays form once, so a whole batch of packets can advance in
lockstep: every step is a handful of array gathers / ``searchsorted`` calls
over the compiled tables instead of per-packet Python dispatch.

Building blocks:

* :class:`TreeBank` — every tree a scheme can route on, concatenated into flat
  slot arrays (``slot = tree offset + DFS-in number``).  One ``searchsorted``
  resolves the next hop of every tree-walking packet at once; another resolves
  dynamic ``(tree, node) -> slot`` entry.
* :class:`NextHopTable` — per-(node, destination) next hops as one sorted key
  array (``key = node * n + dest``); hop-by-hop table phases (shortest-path
  tables, Cowen cluster routing) cost one ``searchsorted`` per step for the
  whole batch.
* :class:`ForwardingProgram` — a per-scheme *planner* that turns one
  (source, destination) request into a short list of **legs** (tree walks /
  table phases) plus result metadata.  Planning mirrors the scalar control
  flow exactly (which trees are searched, where dictionaries report misses)
  but never walks; the lockstep engine then executes all legs with one array
  step per hop.
* :class:`MemoizedScalarProgram` — the generic fallback for schemes without a
  compiled form: scalar ``route()`` results are memoized per (source,
  destination) and replayed through the same engine as literal walks.

Every walk a compiled plan produces decomposes into unique-tree-path legs and
next-hop-table phases, so the engine's walks are identical — node for node —
to the scalar engine's (asserted by ``tests/test_lockstep_engine.py`` and the
E14 CI smoke run).  Hop caps mirror the scalar loops (``2m + 1`` steps per
tree leg, ``n + 1`` per table phase) and are enforced as array operations, so
a broken table loops no further under the lockstep engine than under the
scalar one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.trees import Tree
from repro.routing.messages import RouteResult
from repro.storage import persist_array
from repro.utils.validation import require

#: leg kinds understood by the lockstep engine
LEG_TREE = 0
LEG_TABLE = 1
LEG_LITERAL = 2

#: per-packet execution modes
_MODE_ENTRY = 0
_MODE_TREE = 1
_MODE_TABLE = 2
_MODE_LITERAL = 3
_MODE_DONE = 4


def tree_leg(tree_id: int, target: int, strategy: Optional[str] = None,
             phases: int = 0, terminal: bool = False) -> tuple:
    """A leg walking the unique tree path to ``target`` inside tree ``tree_id``.

    ``terminal`` marks a success leg: when it completes, the packet finalizes
    with this leg's ``(strategy, phases)`` instead of continuing to later legs.
    """
    return (LEG_TREE, int(tree_id), int(target), strategy, int(phases), bool(terminal))


def table_leg(table_id: int, strategy: Optional[str] = None, phases: int = 0) -> tuple:
    """A hop-by-hop next-hop-table phase.

    The packet follows table entries until it reaches the destination (then it
    finalizes with this leg's metadata) or misses / exhausts the ``n + 1`` hop
    cap (then it advances to the next leg).
    """
    return (LEG_TABLE, int(table_id), -1, strategy, int(phases), False)


def literal_leg(hops: Sequence[int]) -> tuple:
    """A pre-recorded walk replayed one hop per lockstep step (memoized fallback)."""
    return (LEG_LITERAL, [int(h) for h in hops], -1, None, 0, False)


def mark_terminal(legs: List[tuple], strategy: str, phases: int) -> None:
    """Make the last leg of ``legs`` a terminal success leg.

    Owns the leg-tuple layout together with the constructors above, so scheme
    planners never index into the tuples positionally.
    """
    kind, a, b, _, _, _ = legs[-1]
    legs[-1] = (kind, a, b, strategy, int(phases), True)


class PacketPlan:
    """The legs and result metadata of one (source, destination) request.

    ``final_strategy`` / ``final_phases`` apply when the packet exhausts its
    legs without finishing on a terminal leg or a table success.  The
    overrides are used by the memoized fallback to replay the recorded
    ``RouteResult`` fields verbatim; compiled schemes leave them ``None`` and
    the engine derives ``found`` from whether the walk ended at the
    destination — the invariant every scheme in the library satisfies.
    """

    __slots__ = ("legs", "final_strategy", "final_phases", "notes",
                 "found_override", "cost_override", "header_override")

    def __init__(self, legs: List[tuple], final_strategy: Optional[str],
                 final_phases: int, notes: Optional[dict] = None,
                 found_override: Optional[bool] = None,
                 cost_override: Optional[float] = None,
                 header_override: Optional[int] = None) -> None:
        self.legs = legs
        self.final_strategy = final_strategy
        self.final_phases = int(final_phases)
        self.notes = notes
        self.found_override = found_override
        self.cost_override = cost_override
        self.header_override = header_override


class _TreeSlots:
    """Per-tree compiled slot arrays, cached on the :class:`Tree` object.

    A tree's local compilation (one Python pass over its nodes) is the only
    per-node Python work in :meth:`TreeBank.freeze`; caching it on the tree
    means a bank recompiled after churn repair re-slots **only the dirtied
    trees** — unchanged ``Tree`` objects contribute cached arrays and the
    global assembly is pure vectorized offset arithmetic.
    """

    __slots__ = ("size", "node_of_slot", "dfs_out", "parent_local")

    def __init__(self, tree: Tree) -> None:
        size = tree.size
        self.size = size
        self.node_of_slot = np.empty(size, dtype=np.int64)
        self.dfs_out = np.empty(size, dtype=np.int64)
        self.parent_local = np.full(size, -1, dtype=np.int64)
        dfs_in = tree.dfs_in
        for v in tree.nodes:
            slot = dfs_in[v]
            self.node_of_slot[slot] = v
            self.dfs_out[slot] = tree.dfs_out[v]
            parent = tree.parent.get(v)
            if parent is not None:
                self.parent_local[slot] = dfs_in[parent]

    @classmethod
    def of(cls, tree: Tree) -> "_TreeSlots":
        """Cached local compilation of ``tree`` (computed once per tree object)."""
        cached = getattr(tree, "_forwarding_slots", None)
        if cached is None or cached.size != tree.size:
            cached = cls(tree)
            tree._forwarding_slots = cached
        return cached


class TreeBank:
    """All trees of one scheme as flat structure-of-arrays slot tables.

    Slots are assigned as ``offset(tree) + dfs_in(node)``, so a tree node's
    slot doubles as its interval-routing label.  The two queries the engine
    needs — "which slot does graph node ``v`` occupy in tree ``t``" and "what
    is the next slot on the unique tree path toward slot ``g``" — are one
    ``searchsorted`` each over the whole packet batch.
    """

    #: memory budget for the dense ``(tree, node) -> slot`` membership
    #: matrix (bytes); banks with too many trees keep the sorted-key lookup
    SLOT_MATRIX_BYTES = 256 << 20

    def __init__(self, n: int) -> None:
        self.n = int(n)
        self._trees: List[Tree] = []
        self._ids: Dict[int, int] = {}
        self._frozen = False
        self._slot_matrix: Optional[np.ndarray] = None

    # -- registration ---------------------------------------------------- #
    def add(self, tree: Tree) -> int:
        """Register ``tree`` (idempotent per tree object) and return its id."""
        require(not self._frozen, "cannot add trees to a frozen TreeBank")
        tree_id = self._ids.get(id(tree))
        if tree_id is None:
            tree_id = len(self._trees)
            self._trees.append(tree)
            self._ids[id(tree)] = tree_id
        return tree_id

    @property
    def num_trees(self) -> int:
        return len(self._trees)

    @property
    def num_slots(self) -> int:
        return int(self.offsets[-1] + self.sizes[-1]) if self._trees else 0

    # -- compilation ----------------------------------------------------- #
    def freeze(self) -> "TreeBank":
        """Compile the registered trees into flat arrays (idempotent).

        Per-tree slot arrays come from the :class:`_TreeSlots` cache, so only
        trees never compiled before (or rebuilt by churn repair) pay the
        Python pass over their nodes; the global assembly below is vectorized
        offset arithmetic plus two sorts.
        """
        if self._frozen:
            return self
        self._frozen = True
        sizes = np.asarray([t.size for t in self._trees], dtype=np.int64)
        self.sizes = sizes
        self.offsets = np.concatenate(([0], np.cumsum(sizes)[:-1])) if self._trees \
            else np.zeros(0, dtype=np.int64)
        total = int(sizes.sum()) if self._trees else 0
        self._stride = int(sizes.max()) + 1 if self._trees else 1

        node_parts: List[np.ndarray] = []
        dfs_out_parts: List[np.ndarray] = []
        parent_parts: List[np.ndarray] = []
        child_key_parts: List[np.ndarray] = []
        child_slot_parts: List[np.ndarray] = []
        member_key_parts: List[np.ndarray] = []
        member_slot_parts: List[np.ndarray] = []
        for tree_id, tree in enumerate(self._trees):
            off = int(self.offsets[tree_id])
            slots = _TreeSlots.of(tree)
            node_parts.append(slots.node_of_slot)
            dfs_out_parts.append(slots.dfs_out)
            parent_parts.append(np.where(slots.parent_local >= 0,
                                         slots.parent_local + off, -1))
            children = np.flatnonzero(slots.parent_local >= 0)
            child_key_parts.append(
                (slots.parent_local[children] + off) * self._stride + children)
            child_slot_parts.append(children + off)
            member_key_parts.append(tree_id * self.n + slots.node_of_slot)
            member_slot_parts.append(np.arange(off, off + slots.size, dtype=np.int64))

        def cat(parts: List[np.ndarray]) -> np.ndarray:
            return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

        # the compiled slot tables are placed through the storage layer:
        # in RAM below REPRO_MEMORY_BUDGET, np.memmap spill files above —
        # the engines index them identically either way
        self.node_of_slot = persist_array(cat(node_parts))
        self.dfs_out = persist_array(cat(dfs_out_parts))       # tree-local
        self.parent_slot = persist_array(cat(parent_parts))
        require(self.node_of_slot.size == total, "tree slot assembly mismatch")

        keys = cat(child_key_parts)
        order = np.argsort(keys, kind="stable")
        self._child_keys = persist_array(keys[order])
        self._child_slots = persist_array(cat(child_slot_parts)[order])

        mkeys = cat(member_key_parts)
        morder = np.argsort(mkeys, kind="stable")
        self._member_keys = persist_array(mkeys[morder])
        self._member_slots = persist_array(cat(member_slot_parts)[morder])
        return self

    def densify_membership(self) -> bool:
        """Materialize the dense ``(tree, node) -> slot`` matrix if it fits.

        Entry resolution asks "which slot does node ``v`` occupy in tree
        ``t``" for every packet of every batch; the dense int32 matrix (-1
        for non-members, exactly the sorted-key miss value) answers with
        one gather instead of a ``searchsorted`` over every membership key.
        Skipped — returning ``False`` — when the matrix would exceed
        ``SLOT_MATRIX_BYTES`` or slot ids overflow int32.
        """
        if self._slot_matrix is not None:
            return True
        if not self._frozen or not self._trees:
            return False
        if (self.num_trees * self.n * 4 > self.SLOT_MATRIX_BYTES
                or self.num_slots > np.iinfo(np.int32).max):
            return False
        matrix = np.full((self.num_trees, self.n), -1, dtype=np.int32)
        trees = self._member_keys // self.n
        matrix[trees, self._member_keys - trees * self.n] = self._member_slots
        self._slot_matrix = matrix
        return True

    def invalidate_caches(self) -> None:
        """Drop every lookup structure derived from the compiled slot arrays.

        Churn repair re-slots trees (``_TreeSlots`` cached per tree object)
        and recompiles the bank; a bank object that outlives a repair — e.g.
        a live program patched mid-timeline — must drop both the dense
        ``(tree, node) -> slot`` membership matrix and the fused kernels'
        per-target root-path memo (``_path_cache``), or post-repair walks
        would resolve entries and replay descents against pre-repair state.
        Both rebuild lazily on the next batch.
        """
        self._slot_matrix = None
        path_cache = getattr(self, "_path_cache", None)
        if path_cache is not None:
            path_cache.clear()

    # -- queries ---------------------------------------------------------- #
    def slots_of(self, tree_ids: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Slot of each ``(tree, graph node)`` pair; ``-1`` for non-members."""
        tree_ids = np.asarray(tree_ids, dtype=np.int64)
        nodes = np.asarray(nodes, dtype=np.int64)
        if self._member_keys.size == 0:
            return np.full(tree_ids.shape, -1, dtype=np.int64)
        keys = tree_ids * self.n + nodes
        if self._slot_matrix is not None or \
                (keys.size > 128 and self.densify_membership()):
            return self._slot_matrix[tree_ids, nodes].astype(np.int64)
        if keys.size > 128:
            # skewed batches repeat the same (tree, node) membership query
            # thousands of times; resolving each distinct key once replaces
            # the wide cache-missing searchsorted with one over the uniques
            uniq, inverse = np.unique(keys, return_inverse=True)
            if 2 * uniq.size <= keys.size:
                pos = np.searchsorted(self._member_keys, uniq)
                pos_c = np.minimum(pos, self._member_keys.size - 1)
                hit = self._member_keys[pos_c] == uniq
                return np.where(hit, self._member_slots[pos_c], -1)[inverse]
        pos = np.searchsorted(self._member_keys, keys)
        pos_c = np.minimum(pos, self._member_keys.size - 1)
        hit = self._member_keys[pos_c] == keys
        return np.where(hit, self._member_slots[pos_c], -1)

    def slot_of(self, tree_id: int, node: int) -> int:
        """Scalar convenience wrapper of :meth:`slots_of`."""
        return int(self.slots_of(np.asarray([tree_id]), np.asarray([node]))[0])

    def step_toward(self, cur_slot: np.ndarray, tgt_slot: np.ndarray,
                    off: np.ndarray) -> np.ndarray:
        """Next slot on the unique tree path from ``cur_slot`` toward ``tgt_slot``.

        ``off`` is the tree offset of each packet's current tree; all three
        arrays are parallel.  Moving up is a parent gather; moving down finds
        the child whose DFS interval contains the target with one
        ``searchsorted`` over the concatenated child-key array.
        """
        cur_local = cur_slot - off
        tgt_local = tgt_slot - off
        down = (cur_local <= tgt_local) & (tgt_local <= self.dfs_out[cur_slot])
        nxt = np.empty_like(cur_slot)
        up = ~down
        if up.any():
            parents = self.parent_slot[cur_slot[up]]
            if (parents < 0).any():
                raise RuntimeError(
                    "lockstep tree walk stepped above a root: target label is "
                    "outside the packet's current tree")
            nxt[up] = parents
        if down.any():
            cur_down = cur_slot[down]
            keys = cur_down * self._stride + tgt_local[down]
            pos = np.searchsorted(self._child_keys, keys, side="right") - 1
            pos_c = np.maximum(pos, 0)
            child = self._child_slots[pos_c]
            ok = ((pos >= 0)
                  & (self._child_keys[pos_c] // self._stride == cur_down)
                  & (tgt_local[down] <= self.dfs_out[child]))
            if not ok.all():
                raise RuntimeError(
                    "inconsistent DFS intervals in the compiled tree bank: "
                    "target inside a node's interval but no child matches")
            nxt[down] = child
        return nxt


class NextHopTable:
    """Per-(node, destination) next hops as a sorted key array.

    Keys are ``node * n + destination``; a batch lookup is one
    ``searchsorted`` and returns ``-1`` for missing entries (the table-phase
    "miss" that moves a packet to its next leg).
    """

    #: memory budget for cached per-destination next-hop columns (bytes)
    COLUMN_CACHE_BYTES = 64 << 20

    def __init__(self, n: int, keys: np.ndarray, next_hops: np.ndarray) -> None:
        self.n = int(n)
        order = np.argsort(keys, kind="stable")
        self._keys = persist_array(np.asarray(keys, dtype=np.int64)[order])
        self._next = persist_array(np.asarray(next_hops, dtype=np.int64)[order])
        #: destination -> row index into ``_cols`` (-1 = not cached)
        self._col_rank: Optional[np.ndarray] = None
        #: dense cached next-hop columns, one row per hot destination
        self._cols: Optional[np.ndarray] = None

    @classmethod
    def from_name_dicts(cls, graph: WeightedGraph,
                        per_node: Sequence[Dict[object, int]]) -> "NextHopTable":
        """Compile per-node ``{destination name: next hop}`` dicts."""
        n = graph.n
        keys: List[int] = []
        hops: List[int] = []
        for u, table in enumerate(per_node):
            for name, nxt in table.items():
                keys.append(u * n + graph.index_of(name))
                hops.append(int(nxt))
        return cls(n, np.asarray(keys, dtype=np.int64),
                   np.asarray(hops, dtype=np.int64))

    @classmethod
    def from_arrays(cls, n: int, nodes: np.ndarray, destinations: np.ndarray,
                    next_hops: np.ndarray) -> "NextHopTable":
        """Compile parallel ``(node, destination, next_hop)`` index arrays.

        The array-native sibling of :meth:`from_name_dicts` used by the
        vectorized constructors: whole table columns arrive as index arrays
        straight from batched Dijkstra output, so no per-entry Python runs.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        destinations = np.asarray(destinations, dtype=np.int64)
        require(nodes.shape == destinations.shape,
                "nodes and destinations must have equal length")
        return cls(n, nodes * int(n) + destinations,
                   np.asarray(next_hops, dtype=np.int64))

    @property
    def num_entries(self) -> int:
        return int(self._keys.size)

    @property
    def keys(self) -> np.ndarray:
        """Sorted ``node * n + destination`` keys (read-only; do not mutate)."""
        return self._keys

    @property
    def next_hops(self) -> np.ndarray:
        """Next hops parallel to :attr:`keys` (read-only; do not mutate)."""
        return self._next

    def entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, next_hops)`` in one call (repair-pass convenience)."""
        return self._keys, self._next

    def replace_destinations(self, destinations: Sequence[int],
                             keys: np.ndarray, next_hops: np.ndarray) -> int:
        """Swap out every row whose destination is in ``destinations``.

        All existing entries pointing at those destinations are dropped and
        the replacement ``(key, next_hop)`` rows are merged in, preserving the
        sorted-key invariant.  This is the churn-repair primitive: a scheme
        whose incremental ``maintain()`` recomputed a few destination columns
        patches them here instead of recompiling the whole table, so the
        compiled forwarding program survives the event batch.  Returns the
        number of rows inserted.
        """
        keys = np.asarray(keys, dtype=np.int64)
        next_hops = np.asarray(next_hops, dtype=np.int64)
        require(keys.shape == next_hops.shape,
                "replacement keys and next hops must have equal length")
        dirty = np.zeros(self.n, dtype=bool)
        dirty[np.asarray(list(destinations), dtype=np.int64)] = True
        if keys.size:
            require(bool(dirty[keys % self.n].all()),
                    "replacement rows must target the replaced destinations")
        keep = ~dirty[self._keys % self.n] if self._keys.size \
            else np.zeros(0, dtype=bool)
        merged_keys = np.concatenate([self._keys[keep], keys])
        merged_next = np.concatenate([self._next[keep], next_hops])
        order = np.argsort(merged_keys, kind="stable")
        self._keys = merged_keys[order]
        self._next = merged_next[order]
        # the cached destination columns snapshot the old entries — drop
        # them wholesale so the next batch_view rebuilds from live rows
        self.invalidate_columns()
        return int(keys.size)

    def invalidate_columns(self) -> None:
        """Drop the per-destination column cache (stale after a repair).

        Any :class:`_SortedTableView` built before this call keeps its own
        references to the old arrays — views are per-batch objects and must
        be rebuilt via :meth:`batch_view` after a repair; the engines do this
        every batch, so dropping the table-side cache here is what guarantees
        post-repair batches see the patched rows.
        """
        self._col_rank = None
        self._cols = None

    def lookup(self, nodes: np.ndarray, destinations: np.ndarray) -> np.ndarray:
        """Next hop of each ``(node, destination)`` pair; ``-1`` when absent."""
        if self._keys.size == 0:
            return np.full(np.asarray(nodes).shape, -1, dtype=np.int64)
        keys = np.asarray(nodes, dtype=np.int64) * self.n \
            + np.asarray(destinations, dtype=np.int64)
        pos = np.searchsorted(self._keys, keys)
        pos_c = np.minimum(pos, self._keys.size - 1)
        return np.where(self._keys[pos_c] == keys, self._next[pos_c], -1)

    def lookup_one(self, node: int, destination: int) -> int:
        """Scalar lookup (``-1`` when absent) for scheme-side hop-by-hop walks."""
        if self._keys.size == 0:
            return -1
        key = int(node) * self.n + int(destination)
        pos = int(np.searchsorted(self._keys, key))
        if pos < self._keys.size and int(self._keys[pos]) == key:
            return int(self._next[pos])
        return -1

    def _ensure_columns(self, destinations: np.ndarray) -> None:
        """Cache dense next-hop columns for ``destinations`` (incremental).

        Each cached column ``c`` satisfies ``c[node] == lookup(node, dest)``
        for every node, so gathering through it is exactly the sorted-key
        lookup, minus the per-hop ``searchsorted``.  Columns are filled by
        one O(entries) scan of the sorted rows per extension — not a
        per-destination binary search — and capped by a memory budget;
        destinations past the cap simply stay on the searchsorted path.
        Repeated batches over a concentrated destination set (the traffic
        engine's regime) amortize the scan to nothing.
        """
        if self._keys.size == 0:
            return
        cap = int(self.COLUMN_CACHE_BYTES // max(4 * self.n, 1))
        if cap <= 0:
            return
        if self._col_rank is None:
            self._col_rank = np.full(self.n, -1, dtype=np.int64)
            self._cols = np.full((0, self.n), -1, dtype=np.int32)
        uniq = np.unique(np.asarray(destinations, dtype=np.int64))
        fresh = uniq[self._col_rank[uniq] < 0]
        room = cap - self._cols.shape[0]
        if fresh.size == 0 or room <= 0:
            return
        fresh = fresh[:room]
        base = self._cols.shape[0]
        self._col_rank[fresh] = base + np.arange(fresh.size, dtype=np.int64)
        new_cols = np.full((fresh.size, self.n), -1, dtype=np.int32)
        entry_nodes = self._keys // self.n
        entry_dests = self._keys - entry_nodes * self.n
        row = self._col_rank[entry_dests] - base
        sel = row >= 0          # rows of freshly added destinations only
        new_cols[row[sel], entry_nodes[sel]] = self._next[sel]
        self._cols = np.concatenate([self._cols, new_cols]) if base \
            else new_cols

    def batch_view(self, destinations: np.ndarray) -> "_SortedTableView":
        """A per-batch lookup view with the composite keys staged once.

        The lockstep engine performs one lookup per hop per packet; building
        the view hoists the dtype conversions and attribute resolution out of
        the per-step path, and extends the per-destination column cache to
        cover this batch's destinations, so repeated lookups become dense
        gathers.  Lookups through the view are identical to :meth:`lookup`
        (asserted by the regression suite).
        """
        self._ensure_columns(destinations)
        return _SortedTableView(self._keys, self._next, self.n,
                                self._col_rank, self._cols)

    def entries_per_node(self) -> np.ndarray:
        """Number of stored entries per node (space-accounting helper)."""
        if self._keys.size == 0:
            return np.zeros(self.n, dtype=np.int64)
        return np.bincount(self._keys // self.n, minlength=self.n)


class DenseNextHopTable:
    """Full per-(node, destination) next hops as one ``(n, n)`` int32 matrix.

    The stretch-1 shortest-path scheme stores a next hop for *every* ordered
    pair; the sorted-key representation would spend 16 bytes per entry on
    keys alone.  This variant keeps the matrix directly (``-1`` marks absent
    entries), which is the minimal full-table representation — 4 bytes per
    pair — and shares the same batch interface as :class:`NextHopTable`, so
    the lockstep engine and the churn-repair path are agnostic to which one a
    scheme compiled.  ``keys`` / ``next_hops`` materialize the sorted-key
    view on demand (row-major order of a matrix *is* key order); they are
    meant for repair passes at churn scale, not for ``n = 20000`` hot loops.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        require(matrix.ndim == 2 and matrix.shape[0] == matrix.shape[1],
                "dense next-hop matrix must be square")
        self.n = int(matrix.shape[0])
        self._matrix = matrix

    @property
    def matrix(self) -> np.ndarray:
        """The underlying ``(n, n)`` next-hop matrix (shared, mutable)."""
        return self._matrix

    @property
    def num_entries(self) -> int:
        return int(np.count_nonzero(self._matrix >= 0))

    @property
    def keys(self) -> np.ndarray:
        """Sorted ``node * n + destination`` keys (materialized on demand)."""
        return np.flatnonzero(self._matrix.ravel() >= 0).astype(np.int64)

    @property
    def next_hops(self) -> np.ndarray:
        """Next hops parallel to :attr:`keys` (materialized on demand)."""
        flat = self._matrix.ravel()
        return flat[flat >= 0].astype(np.int64)

    def entries(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(keys, next_hops)`` with one matrix scan instead of two."""
        flat = self._matrix.ravel()
        mask = flat >= 0
        return (np.flatnonzero(mask).astype(np.int64),
                flat[mask].astype(np.int64))

    def replace_destinations(self, destinations: Sequence[int],
                             keys: np.ndarray, next_hops: np.ndarray) -> int:
        """Swap out every column in ``destinations`` (see :class:`NextHopTable`)."""
        keys = np.asarray(keys, dtype=np.int64)
        next_hops = np.asarray(next_hops, dtype=np.int64)
        require(keys.shape == next_hops.shape,
                "replacement keys and next hops must have equal length")
        dirty = np.asarray(list(destinations), dtype=np.int64)
        if keys.size:
            dirty_mask = np.zeros(self.n, dtype=bool)
            dirty_mask[dirty] = True
            require(bool(dirty_mask[keys % self.n].all()),
                    "replacement rows must target the replaced destinations")
        self._matrix[:, dirty] = -1
        if keys.size:
            self._matrix[keys // self.n, keys % self.n] = next_hops
        self.invalidate_columns()
        return int(keys.size)

    def invalidate_columns(self) -> None:
        """Interface parity with :meth:`NextHopTable.invalidate_columns`.

        The dense table has no derived cache: views gather through a ravel
        *view* of the live matrix, so in-place column patches are coherent
        by construction.  Kept as an explicit no-op so program-level
        invalidation can treat every table uniformly.
        """

    def lookup(self, nodes: np.ndarray, destinations: np.ndarray) -> np.ndarray:
        """Next hop of each ``(node, destination)`` pair; ``-1`` when absent."""
        return self._matrix[np.asarray(nodes, dtype=np.int64),
                            np.asarray(destinations, dtype=np.int64)].astype(np.int64)

    def lookup_one(self, node: int, destination: int) -> int:
        """Scalar lookup (``-1`` when absent)."""
        return int(self._matrix[int(node), int(destination)])

    def batch_view(self, destinations: np.ndarray) -> "_DenseTableView":
        """A per-batch lookup view over the raveled next-hop matrix.

        The flat row view is materialized once per batch, so each lockstep
        step is a single fused-index gather (``flat[node * n + dest]``)
        instead of the generic 2-D fancy-indexing path.  Lookups through the
        view are identical to :meth:`lookup`.
        """
        return _DenseTableView(self._matrix, self.n)

    def entries_per_node(self) -> np.ndarray:
        """Number of stored entries per node (space-accounting helper)."""
        return (self._matrix >= 0).sum(axis=1, dtype=np.int64)


class _SortedTableView:
    """Per-batch cached lookup view of a :class:`NextHopTable`."""

    __slots__ = ("_keys", "_next", "n", "_col_rank", "_cols", "jit_flat")

    def __init__(self, keys: np.ndarray, next_hops: np.ndarray, n: int,
                 col_rank: Optional[np.ndarray] = None,
                 cols: Optional[np.ndarray] = None) -> None:
        self._keys = keys
        self._next = next_hops
        self.n = n
        self._col_rank = col_rank if cols is not None and cols.size else None
        self._cols = cols if cols is not None and cols.size else None
        self.jit_flat = None   # sorted tables use the numpy cohort kernel

    def _sorted_lookup(self, nodes: np.ndarray,
                       destinations: np.ndarray) -> np.ndarray:
        keys = self._keys
        if keys.size == 0:
            return np.full(nodes.shape, -1, dtype=np.int64)
        wanted = nodes * self.n + destinations
        pos = np.searchsorted(keys, wanted)
        pos_c = np.minimum(pos, keys.size - 1)
        return np.where(keys[pos_c] == wanted, self._next[pos_c], -1)

    def lookup(self, nodes: np.ndarray, destinations: np.ndarray) -> np.ndarray:
        """Batch lookup identical to :meth:`NextHopTable.lookup`.

        ``nodes`` / ``destinations`` must already be int64 index arrays (the
        engine's working arrays are), so no conversion runs per step.
        Destinations covered by the table's column cache resolve with a
        dense gather; the rest fall back to the ``searchsorted`` path —
        the cached columns store exactly the sorted rows (misses included,
        as ``-1``), so the split is invisible in the results.
        """
        if self._cols is None:
            return self._sorted_lookup(nodes, destinations)
        rank = self._col_rank[destinations]
        hit = rank >= 0
        if hit.all():
            return self._cols[rank, nodes].astype(np.int64)
        out = np.empty(nodes.shape, dtype=np.int64)
        out[hit] = self._cols[rank[hit], nodes[hit]]
        miss = ~hit
        out[miss] = self._sorted_lookup(nodes[miss], destinations[miss])
        return out


class _DenseTableView:
    """Per-batch cached lookup view of a :class:`DenseNextHopTable`."""

    __slots__ = ("_flat", "n", "jit_flat")

    def __init__(self, matrix: np.ndarray, n: int) -> None:
        flat = matrix.ravel()          # C-contiguous: a view, not a copy
        self._flat = flat
        self.n = n
        #: raveled matrix handed to the optional numba kernel
        self.jit_flat = flat

    def lookup(self, nodes: np.ndarray, destinations: np.ndarray) -> np.ndarray:
        """Batch lookup identical to :meth:`DenseNextHopTable.lookup`."""
        return self._flat[nodes * self.n + destinations].astype(np.int64)


class ForwardingProgram:
    """A scheme's routing state compiled for the lockstep engine.

    ``planner(source, destination)`` must return a :class:`PacketPlan` whose
    legs reference only trees registered in ``bank`` and tables in
    ``tables``.  The plan mirrors the scalar control flow; the engine supplies
    the hops.
    """

    #: True for the memoized scalar fallback (``engine="auto"`` then prefers scalar)
    is_fallback = False

    def __init__(self, graph: WeightedGraph,
                 planner: Callable[[int, int], PacketPlan],
                 bank: Optional[TreeBank] = None,
                 tables: Sequence[NextHopTable] = (),
                 header_bits: int = 0,
                 label: str = "",
                 batch_planner: Optional[Callable] = None) -> None:
        self.graph = graph
        self._planner = planner
        self.bank = (bank if bank is not None else TreeBank(graph.n)).freeze()
        self.tables = list(tables)
        self.header_bits = int(header_bits)
        self.label = label
        #: optional vectorized planner ``(src, dst) -> kernels.BatchPlans``;
        #: when set, the fused engine plans whole batches without ever
        #: instantiating per-packet :class:`PacketPlan` objects.  It must
        #: produce exactly the legs ``plan()`` would (the parity suite
        #: asserts walk-identical outcomes).
        self.batch_planner = batch_planner

    def plan(self, source: int, destination: int) -> PacketPlan:
        """Plan the legs of one request (both endpoints are node indices)."""
        return self._planner(source, destination)

    def invalidate_caches(self) -> None:
        """Drop every derived lookup cache after an in-place repair.

        ``maintain()`` implementations that patch a *live* program —
        replacing table destination columns or re-slotting trees without
        recompiling — must call this so the fused-kernel per-destination
        column caches, the dense membership matrix, and the root-path memo
        are rebuilt from the repaired state on the next batch.  Idempotent
        and cheap; caches repopulate lazily.
        """
        self.bank.invalidate_caches()
        for table in self.tables:
            table.invalidate_columns()

    def describe(self) -> Dict[str, object]:
        """Compiled-state summary (diagnostics / benches)."""
        return {
            "label": self.label,
            "trees": self.bank.num_trees,
            "tree_slots": self.bank.num_slots,
            "tables": len(self.tables),
            "table_entries": sum(t.num_entries for t in self.tables),
        }


class MemoizedScalarProgram(ForwardingProgram):
    """Generic fallback: memoize scalar routes per (source, destination).

    Schemes without a compiled form still run under ``engine="lockstep"``:
    the first request for a pair calls the scalar ``route()`` once, every
    replay (including repeats within a batch) is an array-driven literal walk.
    """

    is_fallback = True

    def __init__(self, scheme) -> None:
        self._scheme = scheme
        self._cache: Dict[Tuple[int, int], RouteResult] = {}
        super().__init__(scheme.graph, self._plan, header_bits=0,
                         label=f"memoized:{scheme.scheme_name}")

    def _plan(self, source: int, destination: int) -> PacketPlan:
        key = (source, destination)
        result = self._cache.get(key)
        if result is None:
            result = self._scheme.route(source, self.graph.name_at(destination))
            self._cache[key] = result
        require(result.path and result.path[0] == source,
                f"scalar route for pair {key} does not start at its source; "
                "cannot replay it through the lockstep engine")
        hops = result.path[1:]
        legs = [literal_leg(hops)] if hops else []
        return PacketPlan(
            legs, result.strategy, result.phases_used,
            notes=dict(result.notes) if result.notes else None,
            found_override=result.found,
            cost_override=result.cost,
            header_override=result.max_header_bits,
        )


@dataclass
class LockstepOutcome:
    """Everything the simulator needs from one lockstep run.

    The hop arrays are packet-major and chronological within each packet —
    exactly the order the scalar verifier would enumerate them in — so
    verification and cost accumulation over them are bit-identical to the
    scalar engine's.  ``results`` is only populated when the run materializes
    per-packet :class:`RouteResult` objects; aggregate evaluation reads the
    array fields instead and skips that per-packet Python entirely.
    """

    results: Optional[List[RouteResult]]
    hop_index: np.ndarray      # packet id per hop
    hop_heads: np.ndarray
    hop_tails: np.ndarray
    cost_override: np.ndarray  # NaN where the verified cost applies
    found: np.ndarray
    final_nodes: np.ndarray
    phases: np.ndarray
    strategy_codes: np.ndarray
    strategy_names: List[str]
    header_bits: np.ndarray
    notes: List[Optional[dict]]


def run_lockstep(program: ForwardingProgram, sources: Sequence[int],
                 destinations: Sequence[int],
                 materialize: bool = True,
                 kernels: Optional[bool] = None,
                 timings: Optional[Dict[str, float]] = None) -> LockstepOutcome:
    """Advance a whole batch of packets over the compiled tables.

    By default the batch runs through the **fused cohort kernels**
    (:mod:`repro.routing.kernels`): packets are bucketed by leg kind and each
    cohort advances to leg completion per kernel call, with vectorized batch
    planning for schemes that provide one.  ``kernels=False`` (or the env
    kill-switch ``REPRO_KERNELS=0``) selects the legacy one-hop-per-step
    engine below; both produce bit-identical walks, hop records and outcome
    metadata (asserted by ``tests/test_lockstep_engine.py``).

    Hop caps mirror the scalar loops (``2m + 1`` per tree leg, ``n + 1`` per
    table phase) under either engine.  With ``materialize=False`` the
    per-packet ``RouteResult`` objects (Python path lists) are skipped and
    only the outcome arrays are returned — the batch-evaluation fast path.
    ``timings``, when given, accumulates wall seconds under ``"plan"`` and
    ``"step"``.
    """
    graph = program.graph
    bank = program.bank
    n = graph.n
    # array-native inputs pass through without a Python-list round trip —
    # traffic batches arrive as ndarrays tens of thousands of packets long;
    # other sequences (lists, tuples, generators) are materialized as before
    if not isinstance(sources, np.ndarray):
        sources = list(sources)
    if not isinstance(destinations, np.ndarray):
        destinations = list(destinations)
    src = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    dst = np.atleast_1d(np.asarray(destinations, dtype=np.int64))
    require(src.shape == dst.shape, "sources and destinations must have equal length")
    if kernels is None:
        kernels = os.environ.get("REPRO_KERNELS", "1") != "0"
    if kernels:
        from repro.routing.kernels import run_fused

        return run_fused(program, src, dst, materialize=materialize,
                         timings=timings)
    t_plan = time.perf_counter() if timings is not None else 0.0
    num = int(src.size)
    plans = [program.plan(u, v) for u, v in zip(src.tolist(), dst.tolist())]

    # ---------------------------------------------------------------- #
    # flatten the per-packet plans into leg arrays
    # ---------------------------------------------------------------- #
    strategy_code: Dict[str, int] = {}
    strategy_names: List[str] = []

    def code_of(strategy: Optional[str]) -> int:
        if strategy is None:
            return -1
        found = strategy_code.get(strategy)
        if found is None:
            found = len(strategy_names)
            strategy_code[strategy] = found
            strategy_names.append(strategy)
        return found

    leg_kind_l: List[int] = []
    leg_a_l: List[int] = []       # tree id / table id / literal lo
    leg_b_l: List[int] = []       # target slot / -1 / literal hi
    leg_strategy_l: List[int] = []
    leg_phases_l: List[int] = []
    leg_terminal_l: List[bool] = []
    literal_nodes_l: List[int] = []
    tree_positions: List[int] = []
    tree_ids_l: List[int] = []
    tree_targets_l: List[int] = []

    leg_lo = np.zeros(num, dtype=np.int64)
    leg_hi = np.zeros(num, dtype=np.int64)
    out_strategy = np.full(num, -1, dtype=np.int64)
    out_phases = np.zeros(num, dtype=np.int64)
    found_override = np.full(num, -1, dtype=np.int8)
    cost_override = np.full(num, np.nan)
    header_bits = np.full(num, program.header_bits, dtype=np.int64)
    notes_of: List[Optional[dict]] = [None] * num

    for p, plan in enumerate(plans):
        leg_lo[p] = len(leg_kind_l)
        for kind, a, b, strategy, phases, terminal in plan.legs:
            position = len(leg_kind_l)
            leg_kind_l.append(kind)
            if kind == LEG_TREE:
                leg_a_l.append(a)
                leg_b_l.append(-1)   # patched to the target slot below
                tree_positions.append(position)
                tree_ids_l.append(a)
                tree_targets_l.append(b)
            elif kind == LEG_TABLE:
                leg_a_l.append(a)
                leg_b_l.append(-1)
            else:  # LEG_LITERAL: ``a`` is the hop list
                leg_a_l.append(len(literal_nodes_l))
                literal_nodes_l.extend(a)
                leg_b_l.append(len(literal_nodes_l))
            leg_strategy_l.append(code_of(strategy))
            leg_phases_l.append(phases)
            leg_terminal_l.append(terminal)
        leg_hi[p] = len(leg_kind_l)
        out_strategy[p] = code_of(plan.final_strategy)
        out_phases[p] = plan.final_phases
        if plan.found_override is not None:
            found_override[p] = int(bool(plan.found_override))
        if plan.cost_override is not None:
            cost_override[p] = float(plan.cost_override)
        if plan.header_override is not None:
            header_bits[p] = int(plan.header_override)
        notes_of[p] = plan.notes

    leg_kind = np.asarray(leg_kind_l, dtype=np.int8)
    leg_a = np.asarray(leg_a_l, dtype=np.int64)
    leg_b = np.asarray(leg_b_l, dtype=np.int64)
    leg_strategy = np.asarray(leg_strategy_l, dtype=np.int64)
    leg_phases = np.asarray(leg_phases_l, dtype=np.int64)
    leg_terminal = np.asarray(leg_terminal_l, dtype=bool)
    literal_nodes = np.asarray(literal_nodes_l, dtype=np.int64)

    if tree_positions:
        slots = bank.slots_of(np.asarray(tree_ids_l, dtype=np.int64),
                              np.asarray(tree_targets_l, dtype=np.int64))
        if (slots < 0).any():
            raise RuntimeError(
                "compiled plan targets a node outside its tree (planner bug)")
        leg_b[np.asarray(tree_positions, dtype=np.int64)] = slots

    # ---------------------------------------------------------------- #
    # lockstep execution
    # ---------------------------------------------------------------- #
    if timings is not None:
        t_step = time.perf_counter()
        timings["plan"] = timings.get("plan", 0.0) + (t_step - t_plan)
    # per-batch table views: composite keys / row views staged once, not per step
    table_views = [table.batch_view(dst) for table in program.tables]
    mode = np.zeros(num, dtype=np.int8)            # everyone starts at ENTRY
    leg_ptr = leg_lo.copy()
    node = src.copy()
    cur_slot = np.zeros(num, dtype=np.int64)
    tgt_slot = np.zeros(num, dtype=np.int64)
    tree_off = np.zeros(num, dtype=np.int64)
    budget = np.zeros(num, dtype=np.int64)
    table_of = np.zeros(num, dtype=np.int64)
    lit_pos = np.zeros(num, dtype=np.int64)
    lit_end = np.zeros(num, dtype=np.int64)

    hop_idx_parts: List[np.ndarray] = []
    hop_head_parts: List[np.ndarray] = []
    hop_tail_parts: List[np.ndarray] = []

    def record(idx: np.ndarray, heads: np.ndarray, tails: np.ndarray) -> None:
        hop_idx_parts.append(idx)
        hop_head_parts.append(heads)
        hop_tail_parts.append(tails)

    def finalize_with_leg(idx: np.ndarray, legs: np.ndarray) -> None:
        out_strategy[idx] = leg_strategy[legs]
        out_phases[idx] = leg_phases[legs]
        mode[idx] = _MODE_DONE

    def complete_leg(idx: np.ndarray) -> None:
        """A leg just reached its target: finalize if terminal, else advance."""
        if idx.size == 0:
            return
        legs = leg_ptr[idx]
        terminal = leg_terminal[legs]
        finalize_with_leg(idx[terminal], legs[terminal])
        advancing = idx[~terminal]
        leg_ptr[advancing] += 1
        mode[advancing] = _MODE_ENTRY

    def resolve_entries() -> None:
        """Move ENTRY packets into their next leg (or finalize on exhaustion)."""
        while True:
            idx = np.flatnonzero(mode == _MODE_ENTRY)
            if idx.size == 0:
                return
            exhausted = leg_ptr[idx] >= leg_hi[idx]
            mode[idx[exhausted]] = _MODE_DONE  # final metadata already staged
            idx = idx[~exhausted]
            if idx.size == 0:
                continue
            legs = leg_ptr[idx]
            kinds = leg_kind[legs]

            tree_sel = kinds == LEG_TREE
            if tree_sel.any():
                t_idx = idx[tree_sel]
                t_leg = legs[tree_sel]
                slots = bank.slots_of(leg_a[t_leg], node[t_idx])
                miss = slots < 0
                leg_ptr[t_idx[miss]] += 1         # current node outside tree: skip
                t_idx, t_leg, slots = t_idx[~miss], t_leg[~miss], slots[~miss]
                targets = leg_b[t_leg]
                arrived = slots == targets
                complete_leg(t_idx[arrived])
                going = ~arrived
                g_idx, g_leg = t_idx[going], t_leg[going]
                mode[g_idx] = _MODE_TREE
                cur_slot[g_idx] = slots[going]
                tgt_slot[g_idx] = targets[going]
                trees = leg_a[g_leg]
                tree_off[g_idx] = bank.offsets[trees]
                budget[g_idx] = 2 * bank.sizes[trees] + 1

            table_sel = kinds == LEG_TABLE
            if table_sel.any():
                b_idx = idx[table_sel]
                mode[b_idx] = _MODE_TABLE
                table_of[b_idx] = leg_a[legs[table_sel]]
                budget[b_idx] = n + 1

            literal_sel = kinds == LEG_LITERAL
            if literal_sel.any():
                l_idx = idx[literal_sel]
                l_leg = legs[literal_sel]
                empty = leg_a[l_leg] == leg_b[l_leg]
                complete_leg(l_idx[empty])
                l_idx, l_leg = l_idx[~empty], l_leg[~empty]
                mode[l_idx] = _MODE_LITERAL
                lit_pos[l_idx] = leg_a[l_leg]
                lit_end[l_idx] = leg_b[l_leg]

    while True:
        resolve_entries()
        if not (mode != _MODE_DONE).any():
            break

        walking = np.flatnonzero(mode == _MODE_TREE)
        if walking.size:
            nxt = bank.step_toward(cur_slot[walking], tgt_slot[walking],
                                   tree_off[walking])
            tails = bank.node_of_slot[nxt]
            record(walking, node[walking].copy(), tails)
            node[walking] = tails
            cur_slot[walking] = nxt
            budget[walking] -= 1
            if (budget[walking] < 0).any():
                raise RuntimeError("lockstep tree walk did not terminate")
            complete_leg(walking[nxt == tgt_slot[walking]])

        tabling = np.flatnonzero(mode == _MODE_TABLE)
        if tabling.size:
            capped = budget[tabling] <= 0
            over = tabling[capped]
            leg_ptr[over] += 1                    # hop cap: same as the scalar loop end
            mode[over] = _MODE_ENTRY
            tabling = tabling[~capped]
            for table_id in np.unique(table_of[tabling]) if tabling.size else ():
                sel = tabling[table_of[tabling] == table_id]
                nxt = table_views[int(table_id)].lookup(node[sel], dst[sel])
                miss = nxt < 0
                missed = sel[miss]
                leg_ptr[missed] += 1
                mode[missed] = _MODE_ENTRY
                moving, hops = sel[~miss], nxt[~miss]
                if moving.size:
                    record(moving, node[moving].copy(), hops)
                    node[moving] = hops
                    budget[moving] -= 1
                    reached = moving[node[moving] == dst[moving]]
                    finalize_with_leg(reached, leg_ptr[reached])

        replaying = np.flatnonzero(mode == _MODE_LITERAL)
        if replaying.size:
            tails = literal_nodes[lit_pos[replaying]]
            record(replaying, node[replaying].copy(), tails)
            node[replaying] = tails
            lit_pos[replaying] += 1
            complete_leg(replaying[lit_pos[replaying] >= lit_end[replaying]])

    # ---------------------------------------------------------------- #
    # assemble results (packet-major, chronological hop order)
    # ---------------------------------------------------------------- #
    if hop_idx_parts:
        all_idx = np.concatenate(hop_idx_parts)
        all_heads = np.concatenate(hop_head_parts)
        all_tails = np.concatenate(hop_tail_parts)
        order = np.argsort(all_idx, kind="stable")
        hop_index = all_idx[order]
        hop_heads = all_heads[order]
        hop_tails = all_tails[order]
    else:
        hop_index = np.zeros(0, dtype=np.int64)
        hop_heads = np.zeros(0, dtype=np.int64)
        hop_tails = np.zeros(0, dtype=np.int64)

    found = np.where(found_override >= 0, found_override.astype(bool), node == dst)

    results: Optional[List[RouteResult]] = None
    if materialize:
        counts = np.bincount(hop_index, minlength=num) if num \
            else np.zeros(0, dtype=np.int64)
        groups = np.split(hop_tails, np.cumsum(counts)[:-1]) if num else []
        results = []
        for p in range(num):
            path = [int(src[p])] + groups[p].tolist()
            result = RouteResult(
                found=bool(found[p]),
                path=path,
                cost=0.0,
                phases_used=int(out_phases[p]),
                strategy=strategy_names[out_strategy[p]] if out_strategy[p] >= 0 else "",
                max_header_bits=int(header_bits[p]),
            )
            if notes_of[p]:
                result.notes = dict(notes_of[p])
            results.append(result)
    if timings is not None:
        timings["step"] = timings.get("step", 0.0) + (time.perf_counter() - t_step)
    return LockstepOutcome(
        results=results, hop_index=hop_index, hop_heads=hop_heads,
        hop_tails=hop_tails, cost_override=cost_override, found=found,
        final_nodes=node, phases=out_phases, strategy_codes=out_strategy,
        strategy_names=strategy_names, header_bits=header_bits, notes=notes_of)
