"""Route results and message headers.

A routing scheme answers a request ``route(source, destination_name)`` by
*walking* the graph: the returned :class:`RouteResult` records the exact node
sequence visited (including detours and backtracking — those are what stretch
measures), plus bookkeeping about which phase/strategy found the destination
and how large the message header had to be.

:class:`Header` models the mutable state a message carries.  The paper's
claim is that headers stay polylogarithmic (``~O(1)`` in their notation); the
simulator reports the maximum header size observed over a walk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.utils.bitsize import BitBudget


@dataclass
class Header:
    """Message header carried while routing.

    Fields mirror what the paper's scheme needs: the destination's (arbitrary)
    name, the current phase index, which strategy is active, and an opaque
    per-strategy payload (e.g. the Lemma-5 destination label once it has been
    learned, or the error-return address).  ``payload_bits`` charges the
    payload explicitly so header sizes can be reported honestly.
    """

    destination_name: Hashable
    phase: int = 0
    strategy: str = ""
    payload_bits: int = 0

    def size_bits(self, name_bits: int, phase_bits: int) -> int:
        """Total header size in bits given the name/phase field widths."""
        strategy_bits = 8  # small enum
        return name_bits + phase_bits + strategy_bits + self.payload_bits


@dataclass
class RouteResult:
    """Outcome of routing one message.

    Attributes
    ----------
    found:
        Whether the destination was reached.
    path:
        The full node-index sequence walked, starting at the source and —
        when ``found`` — ending at the destination.  Consecutive entries are
        graph-adjacent; the simulator re-derives the cost from this sequence,
        so schemes cannot under-report.
    cost:
        Weighted length of ``path`` as computed by the scheme (the simulator
        cross-checks it).
    phases_used:
        Number of top-level phases (levels ``i``) the scheme went through.
    strategy:
        Which strategy found the destination ("sparse", "dense", "fallback",
        or scheme-specific).
    max_header_bits:
        Largest header observed while routing.
    notes:
        Free-form diagnostics (negative responses, fallbacks fired, ...).
    """

    found: bool
    path: List[int] = field(default_factory=list)
    cost: float = 0.0
    phases_used: int = 0
    strategy: str = ""
    max_header_bits: int = 0
    notes: Dict[str, float] = field(default_factory=dict)

    @property
    def hops(self) -> int:
        """Number of edges traversed."""
        return max(len(self.path) - 1, 0)

    @property
    def source(self) -> Optional[int]:
        """First node of the walk (None for an empty path)."""
        return self.path[0] if self.path else None

    @property
    def last_node(self) -> Optional[int]:
        """Last node of the walk (None for an empty path)."""
        return self.path[-1] if self.path else None

    def extend(self, segment: List[int]) -> None:
        """Append a walk segment, gluing the shared endpoint if present."""
        if not segment:
            return
        if self.path and segment[0] == self.path[-1]:
            self.path.extend(segment[1:])
        else:
            self.path.extend(segment)
