"""Abstract interface implemented by every routing scheme in the library.

A *scheme instance* is the result of preprocessing one graph: a set of
per-node routing tables plus the logic to route by destination *name*.  The
interface deliberately mirrors the quantities the paper trades off:

* :meth:`route` — produce a walk to the destination (stretch is measured by
  the simulator from the walk);
* :meth:`table_bits` / :meth:`max_table_bits` — per-node space;
* :meth:`header_bits` — worst-case message header size;
* :meth:`label_bits` — for *labeled* schemes, the size of the topology-aware
  address a sender must know (0 for name-independent schemes — that is the
  whole point of the model).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Hashable, List, Optional

from repro.graphs.graph import WeightedGraph
from repro.routing.messages import RouteResult
from repro.routing.table import TableCollection

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.dynamics.events import GraphDelta
    from repro.dynamics.repair import RepairReport
    from repro.routing.forwarding import ForwardingProgram


class RoutingSchemeInstance(abc.ABC):
    """Preprocessed routing state for one graph."""

    #: short machine-readable scheme name ("agm", "cowen", ...)
    scheme_name: str = "abstract"
    #: whether node addresses are topology-dependent labels (labeled model)
    labeled: bool = False

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.tables = TableCollection(graph.n)

    # -- routing ----------------------------------------------------------- #
    @abc.abstractmethod
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Route from node index ``source`` to the node named ``destination_name``."""

    def route_by_index(self, source: int, destination: int) -> RouteResult:
        """Convenience wrapper: route to a destination given by node index."""
        return self.route(source, self.graph.name_of(destination))

    # -- compiled forwarding ------------------------------------------------- #
    def compile_forwarding(self) -> Optional["ForwardingProgram"]:
        """Compile this scheme's routing state into a forwarding program.

        Schemes that can express their per-hop decisions over flat arrays
        (tree banks, next-hop tables) override this and return a
        :class:`repro.routing.forwarding.ForwardingProgram`; the lockstep
        batch engine then advances whole packet batches with array gathers
        while producing walks identical to :meth:`route`.  The default
        returns ``None``, which makes the simulator fall back to the
        memoizing scalar replay program.
        """
        return None

    def compiled_forwarding(self) -> "ForwardingProgram":
        """The compiled forwarding program, built once and cached.

        Falls back to :class:`repro.routing.forwarding.MemoizedScalarProgram`
        (scalar routes memoized per pair and replayed in lockstep) when
        :meth:`compile_forwarding` returns ``None``.
        """
        program = getattr(self, "_compiled_program", None)
        if program is None:
            program = self.compile_forwarding()
            if program is None:
                from repro.routing.forwarding import MemoizedScalarProgram

                program = MemoizedScalarProgram(self)
            self._compiled_program = program
        return program

    # -- dynamic maintenance ------------------------------------------------- #
    def maintain(self, delta: Optional["GraphDelta"] = None) -> "RepairReport":
        """Repair this instance after the underlying graph mutated.

        Called once per event batch (after
        :func:`repro.dynamics.events.apply_events` edited ``self.graph`` in
        place).  The default is the generic safe path — a full rebuild of the
        scheme on the mutated graph through
        :func:`repro.dynamics.repair.full_rebuild`, which re-runs this
        instance's construction (same parameters and seed, via
        :meth:`rebuild_spec`) and adopts the fresh state in place.  Schemes
        whose structure admits cheaper repair (patching ``NextHopTable``
        columns, re-slotting only dirtied trees) override this and fall back
        to the default only when ``delta`` is ``None``.  Always returns a
        :class:`repro.dynamics.repair.RepairReport` with the wall-time and
        strategy so churn runners can report repair cost per event batch.
        """
        from repro.dynamics.repair import full_rebuild

        return full_rebuild(self, delta)

    def rebuild_spec(self) -> Dict[str, object]:
        """Constructor kwargs that recreate this instance on its (mutated) graph.

        Collected from the attributes every scheme in the library stores at
        construction time; :func:`repro.dynamics.repair.full_rebuild` filters
        them against the concrete constructor's signature, so schemes only
        need to keep their parameters on ``self`` (plus ``_build_seed`` for
        reproducible resampling) for the generic rebuild to be faithful.
        """
        spec: Dict[str, object] = {}
        for attr in ("k", "params", "name_bits", "sample_probability",
                     "responsibility_factor", "oracle"):
            if hasattr(self, attr):
                spec[attr] = getattr(self, attr)
        if hasattr(self, "_build_seed"):
            spec["seed"] = self._build_seed
        return spec

    # -- space accounting ---------------------------------------------------- #
    def table_bits(self, node: int) -> int:
        """Size in bits of ``node``'s routing table."""
        return self.tables.table_bits(node)

    def max_table_bits(self) -> int:
        """Largest routing table over all nodes (the paper's space measure)."""
        return self.tables.max_bits()

    def avg_table_bits(self) -> float:
        """Average routing table size."""
        return self.tables.avg_bits()

    def total_bits(self) -> int:
        """Total routing information in the network."""
        return self.tables.total_bits()

    def table_breakdown(self) -> Dict[str, int]:
        """Total bits per table category (diagnostic)."""
        return self.tables.breakdown()

    def label_bits(self, node: int) -> int:
        """Size of the routing *label* of ``node`` (0 for name-independent schemes)."""
        return 0

    def max_label_bits(self) -> int:
        """Largest label over all nodes."""
        return max(self.label_bits(v) for v in range(self.graph.n))

    @abc.abstractmethod
    def header_bits(self) -> int:
        """Worst-case message header size in bits."""

    # -- misc ---------------------------------------------------------------- #
    def describe(self) -> Dict[str, object]:
        """Headline facts about this instance (used in reports)."""
        return {
            "scheme": self.scheme_name,
            "labeled": self.labeled,
            "n": self.graph.n,
            "max_table_bits": self.max_table_bits(),
            "avg_table_bits": self.avg_table_bits(),
            "max_label_bits": self.max_label_bits(),
            "header_bits": self.header_bits(),
        }
