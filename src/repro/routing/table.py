"""Routing-table containers with explicit bit accounting.

Schemes store whatever Python structures they like, but every piece of
information a node would have to hold in a real deployment must be charged to
that node's :class:`RoutingTable` so the space side of the trade-off can be
reported in bits.  A :class:`RoutingTable` is a thin wrapper around
:class:`~repro.utils.bitsize.BitBudget` with a key/value store for the data
itself.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterator, Mapping, Optional

from repro.utils.bitsize import BitBudget


class RoutingTable:
    """Per-node routing information plus its declared size in bits."""

    def __init__(self, node: int) -> None:
        self.node = node
        self._entries: Dict[Hashable, Any] = {}
        self.budget = BitBudget()

    # -- data -------------------------------------------------------------- #
    def put(self, key: Hashable, value: Any, bits: int, category: str = "entries") -> None:
        """Store ``value`` under ``key`` and charge ``bits`` to ``category``."""
        self._entries[key] = value
        self.budget.add(category, bits)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up an entry."""
        return self._entries.get(key, default)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    # -- accounting --------------------------------------------------------- #
    def charge(self, category: str, bits: int, count: int = 1) -> None:
        """Charge bits without storing data (e.g. for a shared hash function)."""
        self.budget.add(category, bits, count)

    def recharge(self, category: str, bits: int, count: int = 1) -> None:
        """Replace the whole ``category`` charge (incremental-repair re-accounting)."""
        self.budget.reset(category)
        self.budget.add(category, bits, count)

    def size_bits(self) -> int:
        """Total declared size of this table."""
        return self.budget.total()

    def breakdown(self) -> Mapping[str, int]:
        """Bits per category."""
        return self.budget.breakdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutingTable(node={self.node}, bits={self.size_bits()}, entries={len(self)})"


class TableCollection:
    """The tables of all nodes of one scheme instance, with summary statistics."""

    def __init__(self, n: int) -> None:
        self.tables = [RoutingTable(v) for v in range(n)]

    def __getitem__(self, node: int) -> RoutingTable:
        return self.tables[node]

    def __len__(self) -> int:
        return len(self.tables)

    def table_bits(self, node: int) -> int:
        """Size of one node's table."""
        return self.tables[node].size_bits()

    def charge_accumulated(self, category: str, bits_per_node) -> None:
        """Charge ``bits_per_node[v]`` to every node with a nonzero entry.

        The bulk sibling of per-node ``charge`` used by construction-time
        accounting: schemes accumulate a whole category (e.g. all cluster
        trees) into one integer array and issue ``O(n)`` charges instead of
        one per (structure, node) pair.  Totals and breakdowns are identical
        to the per-entry path.
        """
        for v, bits in enumerate(bits_per_node):
            if bits:
                self.tables[v].charge(category, int(bits))

    def charge_structures(self, category: str, structures) -> None:
        """Accumulate ``(nodes, bits)`` pairs into one charge per node.

        ``structures`` yields, per routing structure (tree), its node list
        and the parallel per-node bit list (e.g. ``table_bits_list()``); the
        whole category lands through :meth:`charge_accumulated` in one pass.
        """
        import numpy as np

        accum = np.zeros(len(self.tables), dtype=np.int64)
        for nodes, bits in structures:
            np.add.at(accum, np.asarray(nodes, dtype=np.int64),
                      np.asarray(bits, dtype=np.int64))
        self.charge_accumulated(category, accum)

    def max_bits(self) -> int:
        """Largest table (the quantity the paper's bound is about)."""
        return max(t.size_bits() for t in self.tables)

    def avg_bits(self) -> float:
        """Average table size."""
        return sum(t.size_bits() for t in self.tables) / max(len(self.tables), 1)

    def total_bits(self) -> int:
        """Sum of all table sizes."""
        return sum(t.size_bits() for t in self.tables)

    def breakdown(self) -> Dict[str, int]:
        """Total bits per category across all nodes."""
        out: Dict[str, int] = {}
        for t in self.tables:
            for k, v in t.breakdown().items():
                out[k] = out.get(k, 0) + v
        return out
