"""Fused per-program hop kernels for the lockstep forwarding engine.

The original ``run_lockstep`` loop advances *all* packets one generic "leg
step" per Python iteration: every iteration re-classifies every live packet
by mode, re-selects per-table subsets and pays the full dispatch overhead
even when a packet has dozens of identical table hops ahead of it.  This
module restructures that hot path around **cohorts**: packets are grouped by
the *kind* of leg they are about to execute (tree walk / table phase /
literal replay) and each cohort is driven to **leg completion** in one fused
kernel call —

* tree cohorts walk DFS-interval slots with batched ``searchsorted`` until
  every member reaches its leg target (members leave the cohort as they
  arrive, so later iterations shrink);
* table cohorts resolve whole multi-hop runs against a per-batch
  :class:`~repro.routing.forwarding.NextHopTable` /
  :class:`~repro.routing.forwarding.DenseNextHopTable` **batch view** (the
  composite search keys / row views are materialized once per batch, not
  once per step);
* literal cohorts replay their recorded walks with a single ``repeat`` /
  gather — no per-hop loop at all.

Leg transitions happen by re-bucketing the advancing packets into the next
round's cohorts instead of per-packet mode branching.  The walks produced
are **bit-identical** to the legacy engine's: hop caps (``2m + 1`` per tree
leg, ``n + 1`` per table phase), miss/skip semantics and the final
packet-major chronological hop order are all preserved (each packet's legs
execute in strictly increasing rounds, so the closing stable argsort yields
exactly the legacy order).

``REPRO_JIT=1`` additionally routes the two innermost kernels (tree-slot
walks and dense-table runs) through numba when it is importable; the numpy
cohort path is the always-available fallback and the import is guarded, so
environments without numba (CI containers) silently keep the numpy kernels.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.routing.messages import RouteResult

_EMPTY_I64 = np.zeros(0, dtype=np.int64)

#: max distinct target root-paths memoized per frozen TreeBank.  Skewed
#: traffic descends toward a few hundred hot destinations every batch, so
#: the cache is tiny in steady state; the cap only bounds adversarial
#: all-unique workloads (~10 MB at typical path depths).
PATH_CACHE_CAP = 1 << 16


# --------------------------------------------------------------------- #
# optional numba JIT (REPRO_JIT=1; import-guarded, silent fallback)
# --------------------------------------------------------------------- #
def jit_requested() -> bool:
    """Whether the environment asked for the numba kernels."""
    return os.environ.get("REPRO_JIT", "") == "1"


_JIT_STATE: Dict[str, object] = {"loaded": False, "tree": None, "table": None}


def _jit_kernels():
    """(tree_kernel, table_kernel) or (None, None) when numba is unusable.

    Compiled lazily on first use so merely importing this module never pays
    numba's import cost; any failure (missing package, compile error) simply
    disables the JIT path for the process.
    """
    if not _JIT_STATE["loaded"]:
        _JIT_STATE["loaded"] = True
        try:  # pragma: no cover - numba is absent in CI containers
            import numba

            _JIT_STATE["tree"] = numba.njit(cache=False, nogil=True)(_tree_runs_py)
            _JIT_STATE["table"] = numba.njit(cache=False, nogil=True)(_table_runs_py)
        except Exception:
            _JIT_STATE["tree"] = None
            _JIT_STATE["table"] = None
    return _JIT_STATE["tree"], _JIT_STATE["table"]


def _tree_runs_py(cur, tgt, off, budget, node_of_slot, dfs_out, parent_slot,
                  child_keys, child_slots, stride):  # pragma: no cover - JIT only
    """Per-packet tree walks to leg completion (numba source).

    Two passes: count the steps of every walk, then fill the flat hop
    arrays.  Returns ``(counts, heads, tails)``; a budget overrun is
    reported as ``counts[p] = -1`` (the caller raises, matching the numpy
    kernel's RuntimeError).
    """
    m = cur.shape[0]
    counts = np.zeros(m, dtype=np.int64)
    for p in range(m):
        c = cur[p]
        t = tgt[p]
        o = off[p]
        b = budget[p]
        steps = np.int64(0)
        while c != t:
            t_local = t - o
            if (c - o) <= t_local and t_local <= dfs_out[c]:
                key = c * stride + t_local
                lo = np.int64(0)
                hi = np.int64(child_keys.shape[0])
                while lo < hi:  # rightmost child key <= key
                    mid = (lo + hi) // 2
                    if child_keys[mid] <= key:
                        lo = mid + 1
                    else:
                        hi = mid
                c = child_slots[lo - 1]
            else:
                c = parent_slot[c]
            steps += 1
            if steps > b:
                steps = np.int64(-1)
                break
        counts[p] = steps
        if steps < 0:
            break
    total = np.int64(0)
    for p in range(m):
        if counts[p] < 0:
            return counts, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        total += counts[p]
    heads = np.empty(total, dtype=np.int64)
    tails = np.empty(total, dtype=np.int64)
    pos = np.int64(0)
    for p in range(m):
        c = cur[p]
        t = tgt[p]
        o = off[p]
        for _ in range(counts[p]):
            t_local = t - o
            if (c - o) <= t_local and t_local <= dfs_out[c]:
                key = c * stride + t_local
                lo = np.int64(0)
                hi = np.int64(child_keys.shape[0])
                while lo < hi:
                    mid = (lo + hi) // 2
                    if child_keys[mid] <= key:
                        lo = mid + 1
                    else:
                        hi = mid
                nxt = child_slots[lo - 1]
            else:
                nxt = parent_slot[c]
            heads[pos] = node_of_slot[c]
            tails[pos] = node_of_slot[nxt]
            pos += 1
            c = nxt
    return counts, heads, tails


def _table_runs_py(flat, n, start_nodes, dests, budget0):  # pragma: no cover - JIT only
    """Per-packet dense-table runs to leg completion (numba source).

    ``flat`` is the raveled ``(n, n)`` next-hop matrix.  Returns
    ``(counts, status, finals, heads, tails)`` with ``status = 1`` when the
    packet reached its destination (finalize with the leg's metadata) and
    ``0`` when it missed or exhausted the ``n + 1`` hop cap (advance to the
    next leg).
    """
    m = start_nodes.shape[0]
    counts = np.zeros(m, dtype=np.int64)
    status = np.zeros(m, dtype=np.int8)
    finals = np.empty(m, dtype=np.int64)
    for p in range(m):
        node = start_nodes[p]
        d = dests[p]
        b = budget0
        steps = np.int64(0)
        st = np.int8(0)
        while True:
            if b <= 0:
                break
            nxt = flat[node * n + d]
            if nxt < 0:
                break
            node = np.int64(nxt)
            steps += 1
            b -= 1
            if node == d:
                st = np.int8(1)
                break
        counts[p] = steps
        status[p] = st
        finals[p] = node
    total = np.int64(0)
    for p in range(m):
        total += counts[p]
    heads = np.empty(total, dtype=np.int64)
    tails = np.empty(total, dtype=np.int64)
    pos = np.int64(0)
    for p in range(m):
        node = start_nodes[p]
        d = dests[p]
        for _ in range(counts[p]):
            nxt = np.int64(flat[node * n + d])
            heads[pos] = node
            tails[pos] = nxt
            pos += 1
            node = nxt
    return counts, status, finals, heads, tails


# --------------------------------------------------------------------- #
# batch plans (SoA)
# --------------------------------------------------------------------- #
class BatchPlans:
    """The flattened plans of one packet batch in structure-of-arrays form.

    Exactly the arrays the legacy engine built inline from a list of
    :class:`~repro.routing.forwarding.PacketPlan` objects, factored out so a
    scheme can supply them **vectorized** (a ``batch_planner``) without ever
    instantiating per-packet plan objects.  The executor takes ownership of
    the arrays (it mutates ``out_strategy`` / ``out_phases`` in place), so
    planners must build fresh arrays per batch.
    """

    __slots__ = ("num", "leg_kind", "leg_a", "leg_b", "leg_strategy",
                 "leg_phases", "leg_terminal", "leg_lo", "leg_hi",
                 "literal_nodes", "out_strategy", "out_phases",
                 "found_override", "cost_override", "header_bits",
                 "notes_of", "strategy_names")

    def __init__(self, num: int, leg_kind: np.ndarray, leg_a: np.ndarray,
                 leg_b: np.ndarray, leg_strategy: np.ndarray,
                 leg_phases: np.ndarray, leg_terminal: np.ndarray,
                 leg_lo: np.ndarray, leg_hi: np.ndarray,
                 out_strategy: np.ndarray, out_phases: np.ndarray,
                 strategy_names: List[str],
                 literal_nodes: Optional[np.ndarray] = None,
                 found_override: Optional[np.ndarray] = None,
                 cost_override: Optional[np.ndarray] = None,
                 header_bits: Optional[np.ndarray] = None,
                 notes_of: Optional[List[Optional[dict]]] = None) -> None:
        self.num = int(num)
        self.leg_kind = leg_kind
        self.leg_a = leg_a
        self.leg_b = leg_b
        self.leg_strategy = leg_strategy
        self.leg_phases = leg_phases
        self.leg_terminal = leg_terminal
        self.leg_lo = leg_lo
        self.leg_hi = leg_hi
        self.literal_nodes = literal_nodes if literal_nodes is not None else _EMPTY_I64
        self.out_strategy = out_strategy
        self.out_phases = out_phases
        self.found_override = found_override if found_override is not None \
            else np.full(self.num, -1, dtype=np.int8)
        self.cost_override = cost_override if cost_override is not None \
            else np.full(self.num, np.nan)
        self.header_bits = header_bits if header_bits is not None \
            else np.zeros(self.num, dtype=np.int64)
        self.notes_of = notes_of if notes_of is not None else [None] * self.num
        self.strategy_names = strategy_names


def flatten_plans(program, src: np.ndarray, dst: np.ndarray) -> BatchPlans:
    """Flatten per-packet ``program.plan()`` calls into a :class:`BatchPlans`.

    The generic path for schemes without a vectorized batch planner — the
    exact flattening loop the legacy engine ran inline, including the
    tree-target slot patching via ``bank.slots_of``.
    """
    from repro.routing.forwarding import LEG_LITERAL, LEG_TABLE, LEG_TREE

    bank = program.bank
    num = int(src.size)
    plans = [program.plan(u, v) for u, v in zip(src.tolist(), dst.tolist())]

    strategy_code: Dict[str, int] = {}
    strategy_names: List[str] = []

    def code_of(strategy: Optional[str]) -> int:
        if strategy is None:
            return -1
        found = strategy_code.get(strategy)
        if found is None:
            found = len(strategy_names)
            strategy_code[strategy] = found
            strategy_names.append(strategy)
        return found

    leg_kind_l: List[int] = []
    leg_a_l: List[int] = []       # tree id / table id / literal lo
    leg_b_l: List[int] = []       # target slot / -1 / literal hi
    leg_strategy_l: List[int] = []
    leg_phases_l: List[int] = []
    leg_terminal_l: List[bool] = []
    literal_nodes_l: List[int] = []
    tree_positions: List[int] = []
    tree_ids_l: List[int] = []
    tree_targets_l: List[int] = []

    leg_lo = np.zeros(num, dtype=np.int64)
    leg_hi = np.zeros(num, dtype=np.int64)
    out_strategy = np.full(num, -1, dtype=np.int64)
    out_phases = np.zeros(num, dtype=np.int64)
    found_override = np.full(num, -1, dtype=np.int8)
    cost_override = np.full(num, np.nan)
    header_bits = np.full(num, program.header_bits, dtype=np.int64)
    notes_of: List[Optional[dict]] = [None] * num

    for p, plan in enumerate(plans):
        leg_lo[p] = len(leg_kind_l)
        for kind, a, b, strategy, phases, terminal in plan.legs:
            position = len(leg_kind_l)
            leg_kind_l.append(kind)
            if kind == LEG_TREE:
                leg_a_l.append(a)
                leg_b_l.append(-1)   # patched to the target slot below
                tree_positions.append(position)
                tree_ids_l.append(a)
                tree_targets_l.append(b)
            elif kind == LEG_TABLE:
                leg_a_l.append(a)
                leg_b_l.append(-1)
            else:  # LEG_LITERAL: ``a`` is the hop list
                leg_a_l.append(len(literal_nodes_l))
                literal_nodes_l.extend(a)
                leg_b_l.append(len(literal_nodes_l))
            leg_strategy_l.append(code_of(strategy))
            leg_phases_l.append(phases)
            leg_terminal_l.append(terminal)
        leg_hi[p] = len(leg_kind_l)
        out_strategy[p] = code_of(plan.final_strategy)
        out_phases[p] = plan.final_phases
        if plan.found_override is not None:
            found_override[p] = int(bool(plan.found_override))
        if plan.cost_override is not None:
            cost_override[p] = float(plan.cost_override)
        if plan.header_override is not None:
            header_bits[p] = int(plan.header_override)
        notes_of[p] = plan.notes

    leg_b = np.asarray(leg_b_l, dtype=np.int64)
    if tree_positions:
        slots = bank.slots_of(np.asarray(tree_ids_l, dtype=np.int64),
                              np.asarray(tree_targets_l, dtype=np.int64))
        if (slots < 0).any():
            raise RuntimeError(
                "compiled plan targets a node outside its tree (planner bug)")
        leg_b[np.asarray(tree_positions, dtype=np.int64)] = slots

    return BatchPlans(
        num=num,
        leg_kind=np.asarray(leg_kind_l, dtype=np.int8),
        leg_a=np.asarray(leg_a_l, dtype=np.int64),
        leg_b=leg_b,
        leg_strategy=np.asarray(leg_strategy_l, dtype=np.int64),
        leg_phases=np.asarray(leg_phases_l, dtype=np.int64),
        leg_terminal=np.asarray(leg_terminal_l, dtype=bool),
        leg_lo=leg_lo, leg_hi=leg_hi,
        out_strategy=out_strategy, out_phases=out_phases,
        strategy_names=strategy_names,
        literal_nodes=np.asarray(literal_nodes_l, dtype=np.int64),
        found_override=found_override, cost_override=cost_override,
        header_bits=header_bits, notes_of=notes_of)


# --------------------------------------------------------------------- #
# cohort kernels
# --------------------------------------------------------------------- #
def _run_tree_cohort(bank, idx, cur, tgt, off, budget, node, record) -> np.ndarray:
    """Walk a tree cohort to leg completion; returns the completed packets.

    Every member is strictly *between* its entry slot and its target (entry
    hits and misses were peeled off during entry resolution).  The unique
    tree path climbs from the entry slot to the LCA with the target and
    then descends the target's root path, and the two phases have very
    different costs: ascending is a parent-pointer gather, while the legacy
    engine resolved every descent hop with a ``searchsorted`` over the
    bank-wide child-key array.  The kernel therefore splits them.  Ascents
    run as vectorized parent gathers until each packet's slot interval
    first contains its target.  Descents are served from per-target
    **root-path caches** (the slot path root→target, memoized on the frozen
    bank — hot destinations replay theirs every batch): slots strictly
    increase along a root path, so one ``searchsorted`` over the
    cache-resident concatenated paths locates every packet's ancestor
    position at once, and the remaining hops are a flat suffix gather.
    The bank's arrays are only ever written by ``freeze()`` and repairs
    recompile the whole program, so a cached path can never go stale.  Hop
    caps mirror the legacy engine: a walk longer than its ``2m + 1`` budget
    raises.
    """
    if idx.size == 0:
        return idx
    if jit_requested():
        tree_kernel, _ = _jit_kernels()
        if tree_kernel is not None:
            counts, heads, tails = tree_kernel(
                cur, tgt, off, budget, bank.node_of_slot, bank.dfs_out,
                bank.parent_slot, bank._child_keys, bank._child_slots,
                np.int64(bank._stride))
            if (counts < 0).any():
                raise RuntimeError("lockstep tree walk did not terminate")
            record(np.repeat(idx, counts), heads, tails)
            node[idx] = bank.node_of_slot[tgt]
            return idx
    node_of_slot = bank.node_of_slot
    done_parts: List[np.ndarray] = [idx[:0]]
    down_parts: List[tuple] = []
    a_idx, a_cur, a_tgt, a_off, a_budget = idx, cur, tgt, off, budget
    # ascent phase: parent gathers until each packet's interval contains
    # its target (it then sits on the target's root path and descends)
    while a_idx.size:
        descending = (a_cur <= a_tgt) \
            & (a_tgt - a_off <= bank.dfs_out[a_cur])
        if descending.any():
            down_parts.append((a_idx[descending], a_cur[descending],
                               a_tgt[descending], a_budget[descending]))
            keep = ~descending
            a_idx, a_cur, a_tgt = a_idx[keep], a_cur[keep], a_tgt[keep]
            a_off, a_budget = a_off[keep], a_budget[keep]
            if a_idx.size == 0:
                break
        parents = bank.parent_slot[a_cur]
        if (parents < 0).any():
            raise RuntimeError(
                "lockstep tree walk stepped above a root: target label is "
                "outside the packet's current tree")
        record(a_idx, node_of_slot[a_cur], node_of_slot[parents])
        a_budget -= 1
        if (a_budget < 0).any():
            raise RuntimeError("lockstep tree walk did not terminate")
        arrived = parents == a_tgt
        if arrived.any():
            node[a_idx[arrived]] = node_of_slot[a_tgt[arrived]]
            done_parts.append(a_idx[arrived])
            keep = ~arrived
            a_idx, a_tgt, a_off = a_idx[keep], a_tgt[keep], a_off[keep]
            a_budget, parents = a_budget[keep], parents[keep]
        a_cur = parents
    # descent phase: replay the suffix of each target's cached root path
    if down_parts:
        d_idx, d_cur, d_tgt, d_budget = \
            (np.concatenate(p) for p in zip(*down_parts))
        # memoized per-target root paths; lives on the bank so churn repair
        # can drop it through TreeBank.invalidate_caches() — replaying a
        # pre-repair path after a re-slot would silently corrupt descents
        cache = getattr(bank, "_path_cache", None)
        if cache is None:
            cache = bank._path_cache = {}
        uniq_t, t_inv = np.unique(d_tgt, return_inverse=True)
        parent = bank.parent_slot
        paths = []
        for t in uniq_t.tolist():
            path = cache.get(t)
            if path is None:
                chain = [t]
                s = int(parent[t])
                while s >= 0:
                    chain.append(s)
                    s = int(parent[s])
                path = np.asarray(chain[::-1], dtype=np.int64)
                if len(cache) < PATH_CACHE_CAP:
                    cache[t] = path
            paths.append(path)
        lens = np.fromiter((p.size for p in paths), dtype=np.int64,
                           count=len(paths))
        seg_hi = np.cumsum(lens)
        flat = np.concatenate(paths)
        # per-path slots strictly increase, so segment-offset keys are
        # globally sorted and one searchsorted finds every packet's
        # position on its own target's root path
        span = np.int64(node_of_slot.size)
        seg_of = np.repeat(np.arange(lens.size, dtype=np.int64), lens)
        pos = np.searchsorted(seg_of * span + flat,
                              t_inv * span + d_cur, side="right")
        counts = seg_hi[t_inv] - pos
        if (counts > d_budget).any():
            raise RuntimeError("lockstep tree walk did not terminate")
        flat_nodes = node_of_slot[flat]
        total = int(counts.sum())
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        within = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        tails = flat_nodes[np.repeat(pos, counts) + within]
        heads = np.empty(total, dtype=np.int64)
        heads[1:] = tails[:-1]
        heads[starts] = node_of_slot[d_cur]
        record(np.repeat(d_idx, counts), heads, tails)
        node[d_idx] = node_of_slot[d_tgt]
        done_parts.append(d_idx)
    return np.concatenate(done_parts)


def _run_table_cohort(view, idx, node, dst, n, record):
    """Resolve a table cohort's multi-hop runs to leg completion.

    Returns ``(finalized, advanced)``: packets that reached their
    destination (finalize with the current leg's metadata) and packets that
    missed or hit the ``n + 1`` hop cap (advance to their next leg).  The
    per-step order of operations — cap check first, then lookup, then the
    reached check — matches the legacy engine exactly.
    """
    budget = np.full(idx.size, n + 1, dtype=np.int64)
    nodes = node[idx]
    dests = dst[idx]
    finalized = [idx[:0]]
    advanced = [idx[:0]]
    if jit_requested():
        _, table_kernel = _jit_kernels()
        flat = getattr(view, "jit_flat", None)
        if table_kernel is not None and flat is not None and idx.size:
            counts, status, finals, heads, tails = table_kernel(
                flat, np.int64(n), nodes, dests, np.int64(n + 1))
            record(np.repeat(idx, counts), heads, tails)
            node[idx] = finals
            reached = status == 1
            return idx[reached], idx[~reached]
    while idx.size:
        capped = budget <= 0
        if capped.any():
            advanced.append(idx[capped])
            keep = ~capped
            idx, nodes = idx[keep], nodes[keep]
            dests, budget = dests[keep], budget[keep]
            if idx.size == 0:
                break
        nxt = view.lookup(nodes, dests)
        miss = nxt < 0
        if miss.any():
            advanced.append(idx[miss])
            keep = ~miss
            idx, nodes, nxt = idx[keep], nodes[keep], nxt[keep]
            dests, budget = dests[keep], budget[keep]
            if idx.size == 0:
                break
        record(idx, nodes, nxt)
        node[idx] = nxt
        nodes = nxt
        budget -= 1
        reached = nodes == dests
        if reached.any():
            finalized.append(idx[reached])
            keep = ~reached
            idx, nodes = idx[keep], nodes[keep]
            dests, budget = dests[keep], budget[keep]
    return np.concatenate(finalized), np.concatenate(advanced)


def _run_literal_cohort(idx, lo, hi, literal_nodes, node, record) -> None:
    """Replay literal walks with one ``repeat``/gather (no per-hop loop).

    All members have non-empty ranges (empties complete during entry
    resolution).  Heads are the previous tails shifted by one within each
    segment, seeded with the packet's current node.
    """
    counts = hi - lo
    total = int(counts.sum())
    rep_idx = np.repeat(idx, counts)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    offsets = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    tails = literal_nodes[np.repeat(lo, counts) + offsets]
    heads = np.empty(total, dtype=np.int64)
    heads[1:] = tails[:-1]
    heads[starts] = node[idx]
    record(rep_idx, heads, tails)
    node[idx] = literal_nodes[hi - 1]


# --------------------------------------------------------------------- #
# the fused executor
# --------------------------------------------------------------------- #
def run_fused(program, src: np.ndarray, dst: np.ndarray,
              materialize: bool = True, timings: Optional[Dict[str, float]] = None):
    """Execute a batch through the fused cohort kernels.

    Drop-in replacement for the legacy ``run_lockstep`` execution loop:
    identical walks, hop records, metadata and
    :class:`~repro.routing.forwarding.LockstepOutcome` layout.  ``timings``,
    when given, accumulates wall seconds under ``"plan"`` (batch planning /
    flattening) and ``"step"`` (kernel execution + assembly).
    """
    import time

    from repro.routing.forwarding import (LEG_LITERAL, LEG_TABLE, LEG_TREE,
                                          LockstepOutcome)

    t0 = time.perf_counter() if timings is not None else 0.0
    planner = getattr(program, "batch_planner", None)
    bp = planner(src, dst) if planner is not None else flatten_plans(program, src, dst)
    if timings is not None:
        t1 = time.perf_counter()
        timings["plan"] = timings.get("plan", 0.0) + (t1 - t0)

    bank = program.bank
    n = program.graph.n
    num = bp.num
    node = src.copy()
    leg_ptr = bp.leg_lo.copy()
    out_strategy = bp.out_strategy
    out_phases = bp.out_phases
    views = [table.batch_view(dst) for table in program.tables]

    hop_idx_parts: List[np.ndarray] = []
    hop_head_parts: List[np.ndarray] = []
    hop_tail_parts: List[np.ndarray] = []

    def record(idx: np.ndarray, heads: np.ndarray, tails: np.ndarray) -> None:
        hop_idx_parts.append(idx)
        hop_head_parts.append(heads)
        hop_tail_parts.append(tails)

    def complete_leg(idx: np.ndarray) -> np.ndarray:
        """Finalize terminal legs; advance the rest, returning them."""
        if idx.size == 0:
            return idx
        legs = leg_ptr[idx]
        terminal = bp.leg_terminal[legs]
        fin = idx[terminal]
        out_strategy[fin] = bp.leg_strategy[legs[terminal]]
        out_phases[fin] = bp.leg_phases[legs[terminal]]
        advancing = idx[~terminal]
        leg_ptr[advancing] += 1
        return advancing

    pending = np.arange(num, dtype=np.int64)
    while pending.size:
        # -- entry resolution: bucket pending packets into this round's
        #    cohorts (skips, instant completions and exhaustion loop here) --
        tree_parts: List[tuple] = []
        table_parts: Dict[int, List[np.ndarray]] = {}
        lit_parts: List[tuple] = []
        while pending.size:
            live = pending[leg_ptr[pending] < bp.leg_hi[pending]]
            if live.size == 0:
                pending = live
                break
            legs = leg_ptr[live]
            kinds = bp.leg_kind[legs]
            next_pending: List[np.ndarray] = []

            tree_sel = kinds == LEG_TREE
            if tree_sel.any():
                t_idx, t_leg = live[tree_sel], legs[tree_sel]
                slots = bank.slots_of(bp.leg_a[t_leg], node[t_idx])
                miss = slots < 0
                if miss.any():
                    skipped = t_idx[miss]   # current node outside tree: skip leg
                    leg_ptr[skipped] += 1
                    next_pending.append(skipped)
                    t_idx, t_leg, slots = t_idx[~miss], t_leg[~miss], slots[~miss]
                targets = bp.leg_b[t_leg]
                arrived = slots == targets
                if arrived.any():
                    next_pending.append(complete_leg(t_idx[arrived]))
                going = ~arrived
                g_idx, g_leg = t_idx[going], t_leg[going]
                if g_idx.size:
                    trees = bp.leg_a[g_leg]
                    tree_parts.append((g_idx, slots[going], targets[going],
                                       bank.offsets[trees],
                                       2 * bank.sizes[trees] + 1))

            table_sel = kinds == LEG_TABLE
            if table_sel.any():
                b_idx = live[table_sel]
                tids = bp.leg_a[legs[table_sel]]
                for tid in np.unique(tids):
                    table_parts.setdefault(int(tid), []).append(b_idx[tids == tid])

            literal_sel = kinds == LEG_LITERAL
            if literal_sel.any():
                l_idx, l_leg = live[literal_sel], legs[literal_sel]
                empty = bp.leg_a[l_leg] == bp.leg_b[l_leg]
                if empty.any():
                    next_pending.append(complete_leg(l_idx[empty]))
                keep = ~empty
                l_idx, l_leg = l_idx[keep], l_leg[keep]
                if l_idx.size:
                    lit_parts.append((l_idx, bp.leg_a[l_leg], bp.leg_b[l_leg]))

            pending = np.concatenate(next_pending) if next_pending else _EMPTY_I64

        # -- run each cohort to leg completion, re-bucket the advancers --
        advancing: List[np.ndarray] = []
        if tree_parts:
            idx, cur, tgt, off, budget = (np.concatenate(parts)
                                          for parts in zip(*tree_parts))
            completed = _run_tree_cohort(bank, idx, cur, tgt, off, budget,
                                         node, record)
            advancing.append(complete_leg(completed))
        for tid, parts in table_parts.items():
            idx = np.concatenate(parts)
            finalized, advanced = _run_table_cohort(views[tid], idx, node,
                                                    dst, n, record)
            if finalized.size:   # table success: finalize with the leg's metadata
                legs = leg_ptr[finalized]
                out_strategy[finalized] = bp.leg_strategy[legs]
                out_phases[finalized] = bp.leg_phases[legs]
            leg_ptr[advanced] += 1
            advancing.append(advanced)
        if lit_parts:
            idx, lo, hi = (np.concatenate(parts) for parts in zip(*lit_parts))
            _run_literal_cohort(idx, lo, hi, bp.literal_nodes, node, record)
            advancing.append(complete_leg(idx))
        pending = np.concatenate(advancing) if advancing else _EMPTY_I64

    # -- assemble (packet-major, chronological hop order) -- #
    if hop_idx_parts:
        all_idx = np.concatenate(hop_idx_parts)
        all_heads = np.concatenate(hop_head_parts)
        all_tails = np.concatenate(hop_tail_parts)
        order = np.argsort(all_idx, kind="stable")
        hop_index = all_idx[order]
        hop_heads = all_heads[order]
        hop_tails = all_tails[order]
    else:
        hop_index = _EMPTY_I64
        hop_heads = _EMPTY_I64
        hop_tails = _EMPTY_I64

    found = np.where(bp.found_override >= 0,
                     bp.found_override.astype(bool), node == dst)

    results: Optional[List[RouteResult]] = None
    if materialize:
        counts = np.bincount(hop_index, minlength=num) if num \
            else np.zeros(0, dtype=np.int64)
        groups = np.split(hop_tails, np.cumsum(counts)[:-1]) if num else []
        results = []
        strategy_names = bp.strategy_names
        for p in range(num):
            path = [int(src[p])] + groups[p].tolist()
            result = RouteResult(
                found=bool(found[p]),
                path=path,
                cost=0.0,
                phases_used=int(out_phases[p]),
                strategy=strategy_names[out_strategy[p]] if out_strategy[p] >= 0 else "",
                max_header_bits=int(bp.header_bits[p]),
            )
            if bp.notes_of[p]:
                result.notes = dict(bp.notes_of[p])
            results.append(result)
    outcome = LockstepOutcome(
        results=results, hop_index=hop_index, hop_heads=hop_heads,
        hop_tails=hop_tails, cost_override=bp.cost_override, found=found,
        final_nodes=node, phases=out_phases, strategy_codes=out_strategy,
        strategy_names=bp.strategy_names, header_bits=bp.header_bits,
        notes=bp.notes_of)
    if timings is not None:
        timings["step"] = timings.get("step", 0.0) + (time.perf_counter() - t1)
    return outcome
