"""Routing framework: scheme interfaces, routing tables, headers, and the simulator."""

from repro.routing.messages import RouteResult, Header
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.routing.table import RoutingTable
from repro.routing.forwarding import (ForwardingProgram, MemoizedScalarProgram,
                                      NextHopTable, PacketPlan, TreeBank,
                                      run_lockstep)
from repro.routing.simulator import RoutingSimulator, EvaluationReport

__all__ = [
    "RouteResult",
    "Header",
    "RoutingSchemeInstance",
    "RoutingTable",
    "RoutingSimulator",
    "EvaluationReport",
    "ForwardingProgram",
    "MemoizedScalarProgram",
    "NextHopTable",
    "PacketPlan",
    "TreeBank",
    "run_lockstep",
]
