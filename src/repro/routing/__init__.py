"""Routing framework: scheme interfaces, routing tables, headers, and the simulator."""

from repro.routing.messages import RouteResult, Header
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.routing.table import RoutingTable
from repro.routing.simulator import RoutingSimulator, EvaluationReport

__all__ = [
    "RouteResult",
    "Header",
    "RoutingSchemeInstance",
    "RoutingTable",
    "RoutingSimulator",
    "EvaluationReport",
]
