"""Batched hop-by-hop evaluation of routing schemes.

The simulator takes a scheme instance, samples (or receives) source /
destination pairs, asks the scheme to route each one, **independently
verifies** the returned walks (consecutive nodes must be graph-adjacent; the
cost is recomputed from edge weights), and aggregates stretch statistics
against exact shortest-path distances.

Two evaluation engines are available (``engine=`` on :meth:`evaluate` /
:meth:`evaluate_batch` / :meth:`route_batch`):

* ``"scalar"`` — per-pair ``scheme.route()`` calls, the reference engine;
* ``"lockstep"`` — the scheme's :meth:`compile_forwarding` program executed
  by :func:`repro.routing.forwarding.run_lockstep`: all pending packets
  advance one hop per step through array gathers over compiled forwarding
  tables, producing walks identical to the scalar engine;
* ``"auto"`` (default) — lockstep when the scheme compiles, scalar otherwise.

Either way the data plane is vectorized: pair sampling rejects disconnected
candidates with one component-id array comparison, walk verification checks
every hop of every walk through one CSR gather, shortest distances for the
round are prefetched into the backend in one batched call, and stretch
statistics are computed with NumPy over the whole batch.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.forwarding import run_lockstep
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.utils.rng import make_rng
from repro.utils.validation import require

#: engine names accepted by evaluate / evaluate_batch / route_batch
ENGINE_NAMES = ("auto", "scalar", "lockstep")


class InvalidRouteError(RuntimeError):
    """Raised when a scheme returns a walk that does not exist in the graph."""


class PairSamplingError(ValueError):
    """Raised when the requested number of connected pairs cannot be sampled."""


def gather_hop_costs(graph: WeightedGraph, packet_idx: np.ndarray,
                     heads: np.ndarray, tails: np.ndarray,
                     num_packets: int) -> np.ndarray:
    """Validate flattened hop arrays and accumulate per-packet walk costs.

    Shared by :meth:`RoutingSimulator.verify_walks` (which flattens Python
    paths), the lockstep engine (whose hop arrays come out of the run
    directly, in the same packet-major chronological order — so the
    accumulated sums are bit-identical between engines) and the traffic
    engine's batch streaming.  Self-hops (``head == tail``) are ignored,
    everything else must be a graph edge or :class:`InvalidRouteError` is
    raised.
    """
    costs = np.zeros(num_packets)
    if packet_idx.size == 0:
        return costs
    real = heads != tails
    heads, tails, packet_idx = heads[real], tails[real], packet_idx[real]
    if packet_idx.size == 0:
        return costs
    # bounds-check before the gather: CSR fancy indexing would wrap
    # negative ids onto real nodes and certify a non-existent walk
    out_of_range = ((heads < 0) | (heads >= graph.n)
                    | (tails < 0) | (tails >= graph.n))
    if out_of_range.any():
        bad = int(np.where(out_of_range)[0][0])
        raise InvalidRouteError(
            f"walk step ({heads[bad]}, {tails[bad]}) is outside the graph")
    csr = graph.to_scipy_csr()
    weights = np.asarray(csr[heads, tails]).ravel()
    missing = np.where(weights <= 0.0)[0]
    if missing.size:
        bad = int(missing[0])
        raise InvalidRouteError(
            f"walk uses non-existent edge ({heads[bad]}, {tails[bad]})")
    np.add.at(costs, packet_idx, weights)
    return costs


def verify_lockstep_walks(graph: WeightedGraph, outcome, num_packets: int,
                          destinations: np.ndarray) -> np.ndarray:
    """Validate a lockstep run's hop arrays and endpoint claims; return costs.

    The walk-certification half of lockstep evaluation, shared by the
    simulator and the traffic engine: every hop must be a graph edge
    (:func:`gather_hop_costs`) and every packet claiming ``found`` must have
    ended at its destination.
    """
    costs = gather_hop_costs(graph, outcome.hop_index, outcome.hop_heads,
                             outcome.hop_tails, num_packets)
    bad = outcome.found & (outcome.final_nodes != destinations)
    if bad.any():
        i = int(np.flatnonzero(bad)[0])
        raise InvalidRouteError(
            f"scheme reports 'found' but walk ends at "
            f"{int(outcome.final_nodes[i])}, destination is "
            f"{int(destinations[i])}")
    return costs


def resolve_engine_spec(scheme: RoutingSchemeInstance, engine: str) -> str:
    """Turn an engine spec into ``"scalar"`` or ``"lockstep"``.

    ``"auto"`` picks the lockstep engine when the scheme has a real compiled
    program and the scalar engine when only the memoized fallback is
    available (replaying scalar routes buys nothing then).  Shared by the
    simulator and the traffic engine so both layers resolve a spec the same
    way.
    """
    require(engine in ENGINE_NAMES,
            f"engine must be one of {ENGINE_NAMES}, got {engine!r}")
    if engine == "auto":
        return "scalar" if scheme.compiled_forwarding().is_fallback else "lockstep"
    return engine


@dataclass
class PairOutcome:
    """Evaluation of one routed pair."""

    source: int
    destination: int
    shortest: float
    cost: float
    stretch: float
    hops: int
    found: bool
    strategy: str
    phases_used: int
    max_header_bits: int


@dataclass
class EvaluationReport:
    """Aggregated routing quality over a set of pairs."""

    scheme: str
    n: int
    num_pairs: int
    max_stretch: float
    avg_stretch: float
    median_stretch: float
    p95_stretch: float
    max_header_bits: int
    failures: int
    max_table_bits: int
    avg_table_bits: float
    max_label_bits: int
    engine: str = "scalar"
    outcomes: List[PairOutcome] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for tabular reporting (outcomes omitted)."""
        return {
            "scheme": self.scheme,
            "n": self.n,
            "num_pairs": self.num_pairs,
            "max_stretch": self.max_stretch,
            "avg_stretch": self.avg_stretch,
            "median_stretch": self.median_stretch,
            "p95_stretch": self.p95_stretch,
            "max_header_bits": self.max_header_bits,
            "failures": self.failures,
            "max_table_bits": self.max_table_bits,
            "avg_table_bits": self.avg_table_bits,
            "max_label_bits": self.max_label_bits,
            "engine": self.engine,
        }


class RoutingSimulator:
    """Evaluates scheme instances on a fixed graph."""

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None) -> None:
        self.graph = graph
        self.oracle = oracle or DistanceOracle(graph)

    # ------------------------------------------------------------------ #
    # pair sampling
    # ------------------------------------------------------------------ #
    def sample_pairs(self, num_pairs: int, seed=None, distinct: bool = True,
                     on_shortfall: str = "raise",
                     max_batches: int = 200) -> List[Tuple[int, int]]:
        """Sample source/destination pairs uniformly among connected pairs.

        Candidates are drawn in vectorized batches and rejected with one
        component-id comparison (two nodes are connected iff their component
        ids agree) — no per-candidate distance query.  If the graph admits no
        valid pair at all, or the defensive attempt cap trips, the shortfall
        is reported instead of silently returning fewer pairs:
        ``on_shortfall="raise"`` (default) raises :class:`PairSamplingError`,
        ``"warn"`` emits a warning and returns the partial list.

        ``max_batches`` caps the rejection rounds (each round's draw is
        itself capped at one million candidates, so a near-zero acceptance
        probability cannot demand an unbounded allocation).  The default is
        generous enough that a shortfall on a sane graph means something is
        wrong; lower it when a *partial* sample is acceptable and the caller
        handles the ``"warn"`` outcome.
        """
        require(on_shortfall in ("raise", "warn"),
                f"on_shortfall must be 'raise' or 'warn', got {on_shortfall!r}")
        require(max_batches >= 1, "need at least one sampling batch")
        n = self.graph.n
        require(n >= 2, "need at least two nodes to sample pairs")
        if num_pairs <= 0:
            return []
        comp = self.graph.component_ids()
        counts = np.bincount(comp)
        # a valid pair needs a component with >= 2 nodes (distinct) or any
        # node at all (self-pairs allowed)
        if distinct and not np.any(counts >= 2):
            message = (f"graph has no connected pair of distinct nodes "
                       f"({num_pairs} requested)")
            if on_shortfall == "raise":
                raise PairSamplingError(message)
            warnings.warn(message, stacklevel=2)
            return []

        rng = make_rng(seed)
        # acceptance probability of one uniform candidate pair, used to size
        # the rejection batches
        counts = counts.astype(float)
        if distinct:
            acceptance = float(np.sum(counts * (counts - 1.0))) / (n * n)
        else:
            acceptance = float(np.sum(counts ** 2)) / (n * n)
        acceptance = max(acceptance, 1e-9)

        pairs: List[Tuple[int, int]] = []
        for _ in range(max_batches):
            need = num_pairs - len(pairs)
            if need <= 0:
                break
            # cap the draw so near-zero acceptance cannot demand a huge
            # allocation; the outer loop keeps drawing batches as needed
            batch = min(max(int(need / acceptance * 1.2) + 8, need), 1_000_000)
            us = rng.integers(0, n, size=batch)
            vs = rng.integers(0, n, size=batch)
            keep = comp[us] == comp[vs]
            if distinct:
                keep &= us != vs
            us, vs = us[keep][:need], vs[keep][:need]
            pairs.extend(zip(us.tolist(), vs.tolist()))
        if len(pairs) < num_pairs:
            message = (f"sampled only {len(pairs)} of {num_pairs} requested "
                       f"connected pairs after {max_batches} batches")
            if on_shortfall == "raise":
                raise PairSamplingError(message)
            warnings.warn(message, stacklevel=2)
        return pairs

    def all_pairs(self) -> List[Tuple[int, int]]:
        """Every ordered connected pair (use only for small graphs)."""
        comp = self.graph.component_ids()
        out = []
        for u in range(self.graph.n):
            for v in range(self.graph.n):
                if u != v and comp[u] == comp[v]:
                    out.append((u, v))
        return out

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def verify_walk(self, result: RouteResult, source: int, destination: int) -> float:
        """Check the walk is feasible and return its true weighted cost."""
        path = result.path
        require(len(path) >= 1, "route result has an empty path")
        if path[0] != source:
            raise InvalidRouteError(
                f"walk starts at {path[0]}, expected source {source}")
        cost = 0.0
        for a, b in zip(path, path[1:]):
            if a == b:
                continue
            if not self.graph.has_edge(a, b):
                raise InvalidRouteError(f"walk uses non-existent edge ({a}, {b})")
            cost += self.graph.edge_weight(a, b)
        if result.found and path[-1] != destination:
            raise InvalidRouteError(
                f"scheme reports 'found' but walk ends at {path[-1]}, "
                f"destination is {destination}")
        return cost

    def verify_walks(self, results: Sequence[RouteResult], sources: Sequence[int],
                     destinations: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`verify_walk` over a batch; returns true walk costs.

        All hops of all walks are validated through one CSR weight gather:
        a gathered weight of zero means the edge does not exist (edge weights
        are strictly positive), so a single comparison flags every infeasible
        step in the batch.
        """
        require(len(results) == len(sources) == len(destinations),
                "results, sources and destinations must have equal length")
        if not results:
            return np.zeros(0)
        heads: List[int] = []
        tails: List[int] = []
        segments: List[int] = []
        for index, (result, source) in enumerate(zip(results, sources)):
            path = result.path
            require(len(path) >= 1, "route result has an empty path")
            if path[0] != source:
                raise InvalidRouteError(
                    f"walk starts at {path[0]}, expected source {source}")
            for a, b in zip(path, path[1:]):
                if a == b:
                    continue
                heads.append(a)
                tails.append(b)
                segments.append(index)
        costs = self._gather_hop_costs(
            np.asarray(segments, dtype=np.int64),
            np.asarray(heads, dtype=np.int64),
            np.asarray(tails, dtype=np.int64),
            len(results))
        for result, destination in zip(results, destinations):
            if result.found and result.path[-1] != destination:
                raise InvalidRouteError(
                    f"scheme reports 'found' but walk ends at {result.path[-1]}, "
                    f"destination is {destination}")
        return costs

    def _gather_hop_costs(self, packet_idx: np.ndarray, heads: np.ndarray,
                          tails: np.ndarray, num_packets: int) -> np.ndarray:
        """Bound method façade over the module-level :func:`gather_hop_costs`."""
        return gather_hop_costs(self.graph, packet_idx, heads, tails, num_packets)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def resolve_engine(self, scheme: RoutingSchemeInstance, engine: str) -> str:
        """Bound method façade over the module-level :func:`resolve_engine_spec`."""
        return resolve_engine_spec(scheme, engine)

    def route_batch(self, scheme: RoutingSchemeInstance,
                    pairs: Sequence[Tuple[int, int]],
                    engine: str = "auto") -> List[RouteResult]:
        """Route every pair and return the verified :class:`RouteResult` list."""
        pairs = [(int(u), int(v)) for u, v in pairs]
        sources = np.asarray([u for u, _ in pairs], dtype=np.int64)
        destinations = np.asarray([v for _, v in pairs], dtype=np.int64)
        engine = self.resolve_engine(scheme, engine)
        results, _ = self._route_and_verify(scheme, pairs, sources,
                                            destinations, engine)
        return results

    def _verify_lockstep(self, outcome, num_pairs: int,
                         destinations: np.ndarray) -> np.ndarray:
        """Bound method façade over the module-level :func:`verify_lockstep_walks`."""
        return verify_lockstep_walks(self.graph, outcome, num_pairs, destinations)

    @staticmethod
    def _apply_costs(results: List[RouteResult], costs: np.ndarray,
                     cost_override: np.ndarray) -> None:
        """Fill verified costs into materialized results (overrides win)."""
        replayed = ~np.isnan(cost_override)
        for i, result in enumerate(results):
            result.cost = float(cost_override[i]) if replayed[i] else float(costs[i])

    def _route_and_verify(self, scheme, pairs, sources, destinations,
                          engine) -> Tuple[List[RouteResult], np.ndarray]:
        """Produce verified results + true walk costs under the given engine."""
        if engine == "lockstep":
            program = scheme.compiled_forwarding()
            outcome = run_lockstep(program, sources, destinations, materialize=True)
            costs = self._verify_lockstep(outcome, len(pairs), destinations)
            self._apply_costs(outcome.results, costs, outcome.cost_override)
            return outcome.results, costs
        names = self.graph.names_view()
        results = [scheme.route(u, names[v]) for u, v in pairs]
        costs = self.verify_walks(results, sources, destinations)
        return results, costs

    def evaluate_batch(
        self,
        scheme: RoutingSchemeInstance,
        pairs: Sequence[Tuple[int, int]],
        keep_outcomes: bool = False,
        engine: str = "auto",
    ) -> EvaluationReport:
        """Route every pair through ``scheme``; verify and score with NumPy.

        Shortest distances for the whole batch come from one vectorized
        ``pair_distances`` call after a single round-level ``prefetch`` of
        every source (one multi-source Dijkstra under the lazy backend), walk
        verification is one CSR gather, and the stretch statistics are array
        reductions.  Under ``engine="lockstep"`` even the per-hop routing is
        array work; under ``"scalar"`` the scheme's own ``route`` remains the
        only per-pair Python.
        """
        pairs = [(int(u), int(v)) for u, v in pairs]
        sources = np.asarray([u for u, _ in pairs], dtype=np.int64)
        destinations = np.asarray([v for _, v in pairs], dtype=np.int64)
        engine = self.resolve_engine(scheme, engine)
        if pairs:
            # one batched fill of the backend's row cache for the whole round
            self.oracle.prefetch(np.unique(sources))
        shortest = self.oracle.pair_distances(sources, destinations)

        if engine == "lockstep":
            # array fast path: RouteResult objects are only materialized when
            # the caller wants per-pair outcomes
            program = scheme.compiled_forwarding()
            outcome = run_lockstep(program, sources, destinations,
                                   materialize=keep_outcomes)
            costs = self._verify_lockstep(outcome, len(pairs), destinations)
            found = outcome.found
            max_header = int(outcome.header_bits.max()) if pairs else 0
            results = outcome.results
            if results is not None:
                self._apply_costs(results, costs, outcome.cost_override)
        else:
            results, costs = self._route_and_verify(scheme, pairs, sources,
                                                    destinations, engine)
            found = np.asarray([r.found for r in results], dtype=bool)
            max_header = max((r.max_header_bits for r in results), default=0)

        stretches = np.full(len(pairs), np.inf)
        trivial = found & (shortest <= 0)
        proper = found & (shortest > 0)
        stretches[trivial] = 1.0
        stretches[proper] = costs[proper] / shortest[proper]
        failures = int(np.count_nonzero(~found))

        outcomes: List[PairOutcome] = []
        if keep_outcomes and results is not None:
            for i, ((u, v), result) in enumerate(zip(pairs, results)):
                outcomes.append(PairOutcome(
                    source=u, destination=v, shortest=float(shortest[i]),
                    cost=float(costs[i]), stretch=float(stretches[i]),
                    hops=result.hops, found=result.found,
                    strategy=result.strategy, phases_used=result.phases_used,
                    max_header_bits=result.max_header_bits,
                ))

        finite = stretches[np.isfinite(stretches)]
        if finite.size == 0:
            finite = np.asarray([np.inf])
        return EvaluationReport(
            scheme=scheme.scheme_name,
            n=self.graph.n,
            num_pairs=len(pairs),
            max_stretch=float(stretches.max()) if len(pairs) else 0.0,
            avg_stretch=float(np.mean(finite)),
            median_stretch=float(np.median(finite)),
            p95_stretch=float(np.percentile(finite, 95)),
            max_header_bits=max_header,
            failures=failures,
            max_table_bits=scheme.max_table_bits(),
            avg_table_bits=scheme.avg_table_bits(),
            max_label_bits=scheme.max_label_bits(),
            engine=engine,
            outcomes=outcomes,
        )

    def evaluate(
        self,
        scheme: RoutingSchemeInstance,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        num_pairs: int = 200,
        seed=None,
        keep_outcomes: bool = False,
        engine: str = "auto",
    ) -> EvaluationReport:
        """Route every pair through ``scheme`` and aggregate stretch statistics."""
        if pairs is None:
            pairs = self.sample_pairs(num_pairs, seed=seed)
        return self.evaluate_batch(scheme, pairs, keep_outcomes=keep_outcomes,
                                   engine=engine)
