"""Hop-by-hop evaluation of routing schemes.

The simulator takes a scheme instance, samples (or receives) source /
destination pairs, asks the scheme to route each one, **independently
verifies** the returned walk (consecutive nodes must be graph-adjacent; the
cost is recomputed from edge weights), and aggregates stretch statistics
against exact shortest-path distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.utils.rng import make_rng
from repro.utils.validation import require


class InvalidRouteError(RuntimeError):
    """Raised when a scheme returns a walk that does not exist in the graph."""


@dataclass
class PairOutcome:
    """Evaluation of one routed pair."""

    source: int
    destination: int
    shortest: float
    cost: float
    stretch: float
    hops: int
    found: bool
    strategy: str
    phases_used: int
    max_header_bits: int


@dataclass
class EvaluationReport:
    """Aggregated routing quality over a set of pairs."""

    scheme: str
    n: int
    num_pairs: int
    max_stretch: float
    avg_stretch: float
    median_stretch: float
    p95_stretch: float
    max_header_bits: int
    failures: int
    max_table_bits: int
    avg_table_bits: float
    max_label_bits: int
    outcomes: List[PairOutcome] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for tabular reporting (outcomes omitted)."""
        return {
            "scheme": self.scheme,
            "n": self.n,
            "num_pairs": self.num_pairs,
            "max_stretch": self.max_stretch,
            "avg_stretch": self.avg_stretch,
            "median_stretch": self.median_stretch,
            "p95_stretch": self.p95_stretch,
            "max_header_bits": self.max_header_bits,
            "failures": self.failures,
            "max_table_bits": self.max_table_bits,
            "avg_table_bits": self.avg_table_bits,
            "max_label_bits": self.max_label_bits,
        }


class RoutingSimulator:
    """Evaluates scheme instances on a fixed graph."""

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None) -> None:
        self.graph = graph
        self.oracle = oracle or DistanceOracle(graph)

    # ------------------------------------------------------------------ #
    # pair sampling
    # ------------------------------------------------------------------ #
    def sample_pairs(self, num_pairs: int, seed=None,
                     distinct: bool = True) -> List[Tuple[int, int]]:
        """Sample source/destination pairs uniformly among connected pairs."""
        rng = make_rng(seed)
        pairs: List[Tuple[int, int]] = []
        n = self.graph.n
        require(n >= 2, "need at least two nodes to sample pairs")
        attempts = 0
        while len(pairs) < num_pairs and attempts < 100 * num_pairs + 1000:
            attempts += 1
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if distinct and u == v:
                continue
            if not np.isfinite(self.oracle.dist(u, v)):
                continue
            pairs.append((u, v))
        return pairs

    def all_pairs(self) -> List[Tuple[int, int]]:
        """Every ordered connected pair (use only for small graphs)."""
        out = []
        for u in range(self.graph.n):
            for v in range(self.graph.n):
                if u != v and np.isfinite(self.oracle.dist(u, v)):
                    out.append((u, v))
        return out

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #
    def verify_walk(self, result: RouteResult, source: int, destination: int) -> float:
        """Check the walk is feasible and return its true weighted cost."""
        path = result.path
        require(len(path) >= 1, "route result has an empty path")
        if path[0] != source:
            raise InvalidRouteError(
                f"walk starts at {path[0]}, expected source {source}")
        cost = 0.0
        for a, b in zip(path, path[1:]):
            if a == b:
                continue
            if not self.graph.has_edge(a, b):
                raise InvalidRouteError(f"walk uses non-existent edge ({a}, {b})")
            cost += self.graph.edge_weight(a, b)
        if result.found and path[-1] != destination:
            raise InvalidRouteError(
                f"scheme reports 'found' but walk ends at {path[-1]}, "
                f"destination is {destination}")
        return cost

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(
        self,
        scheme: RoutingSchemeInstance,
        pairs: Optional[Sequence[Tuple[int, int]]] = None,
        num_pairs: int = 200,
        seed=None,
        keep_outcomes: bool = False,
    ) -> EvaluationReport:
        """Route every pair through ``scheme`` and aggregate stretch statistics."""
        if pairs is None:
            pairs = self.sample_pairs(num_pairs, seed=seed)
        outcomes: List[PairOutcome] = []
        stretches: List[float] = []
        failures = 0
        max_header = 0
        for u, v in pairs:
            shortest = self.oracle.dist(u, v)
            result = scheme.route(u, self.graph.name_of(v))
            cost = self.verify_walk(result, u, v)
            if not result.found:
                failures += 1
                stretch = float("inf")
            elif shortest <= 0:
                stretch = 1.0
            else:
                stretch = cost / shortest
            stretches.append(stretch)
            max_header = max(max_header, result.max_header_bits)
            if keep_outcomes:
                outcomes.append(PairOutcome(
                    source=u, destination=v, shortest=shortest, cost=cost,
                    stretch=stretch, hops=result.hops, found=result.found,
                    strategy=result.strategy, phases_used=result.phases_used,
                    max_header_bits=result.max_header_bits,
                ))
        finite = [s for s in stretches if np.isfinite(s)]
        if not finite:
            finite = [float("inf")]
        return EvaluationReport(
            scheme=scheme.scheme_name,
            n=self.graph.n,
            num_pairs=len(pairs),
            max_stretch=float(max(stretches)) if stretches else 0.0,
            avg_stretch=float(np.mean(finite)),
            median_stretch=float(np.median(finite)),
            p95_stretch=float(np.percentile(finite, 95)),
            max_header_bits=max_header,
            failures=failures,
            max_table_bits=scheme.max_table_bits(),
            avg_table_bits=scheme.avg_table_bits(),
            max_label_bits=scheme.max_label_bits(),
            outcomes=outcomes,
        )
