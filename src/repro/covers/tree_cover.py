"""Tree covers ``TC_{k,rho}(G)`` (Lemma 6).

A tree cover turns each cluster of a :class:`SparseCover` into a rooted
spanning tree (a shortest-path tree of the cluster's induced subgraph,
restricted to edges of weight at most ``2 rho`` — such edges always suffice
to connect a cluster, and the restriction is what gives Lemma 6's
"small edges" property).  The cover keeps, for every node ``v``, the index of
the tree that contains its whole ball ``B(v, rho)`` — the tree ``W(v)`` the
dense routing strategy climbs.

Cluster trees are built in batches: each chunk of clusters is assembled into
one block-diagonal CSR matrix (every cluster its own relabeled block, heavy
edges filtered out) and a single multi-source Dijkstra call — one source per
block — grows every tree of the chunk at once.  A cluster whose restricted
subgraph leaves some member unreachable falls back to its unrestricted
induced subgraph, exactly like the scalar path (``REPRO_BUILD_MODE=scalar``
keeps the original per-cluster Python-heap Dijkstra for the parity tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from repro.construction.context import BuildContext, scalar_build_mode
from repro.covers.sparse_cover import SparseCover, build_sparse_cover
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, dijkstra, exact_distance_oracle
from repro.graphs.trees import Tree
from repro.utils.validation import require

#: clusters per block-diagonal kernel call
CLUSTER_CHUNK = 64

#: total relabeled rows per block-diagonal kernel call.  Chunking by
#: cluster count alone breaks down at large scales, where every cluster
#: spans (nearly) a whole component: 64 clusters of 100k nodes would
#: assemble a 6.4M-row block matrix whose dense dist/pred result is
#: several GB.  The node budget caps the in-flight slab at
#: ~``sources × budget × 12`` bytes regardless of cluster sizes; chunk
#: boundaries do not affect the trees (every block is independent), so
#: the build-parity suite pins bit-identity across chunkings.
CHUNK_NODE_BUDGET = 1 << 19


@dataclass
class TreeCover:
    """A collection of rooted cluster trees covering all ``rho``-balls."""

    k: int
    rho: float
    trees: List[Tree]
    #: node -> index of the tree containing B(node, rho)
    home: Dict[int, int]

    def home_tree(self, v: int) -> Tree:
        """The tree guaranteed to contain ``B(v, rho)``."""
        return self.trees[self.home[v]]

    def trees_containing(self, v: int) -> List[int]:
        """Indices of all trees that contain node ``v``."""
        return [i for i, t in enumerate(self.trees) if t.contains(v)]

    def max_membership(self) -> int:
        """Largest number of trees any node belongs to (Lemma 6's sparsity)."""
        counts: Dict[int, int] = {}
        for t in self.trees:
            for v in t.nodes:
                counts[v] = counts.get(v, 0) + 1
        return max(counts.values()) if counts else 0

    def max_radius(self) -> float:
        """Largest tree radius (Lemma 6 bounds it by ``O(k) * rho``)."""
        return max((t.radius() for t in self.trees), default=0.0)

    def max_edge(self) -> float:
        """Heaviest tree edge (Lemma 6 bounds it by ``2 rho``)."""
        return max((t.max_edge() for t in self.trees), default=0.0)

    def covers_ball(self, v: int, oracle: DistanceOracle,
                    nodes: Optional[Sequence[int]] = None) -> bool:
        """Check that ``B(v, rho)`` (within ``nodes`` if given) lies inside ``home_tree(v)``."""
        ball = oracle.ball(v, self.rho)
        if nodes is not None:
            allowed = set(nodes)
            ball = [u for u in ball if u in allowed]
        tree = self.home_tree(v)
        return all(tree.contains(u) for u in ball)


def _cluster_tree(graph: WeightedGraph, center: int, nodes: Sequence[int],
                  rho: float) -> Tree:
    """Shortest-path tree of the cluster, using only edges of weight <= 2 rho.

    The scalar reference implementation (one Python-heap Dijkstra per
    cluster); the default batched path is :func:`_cluster_trees_batched`.
    """
    members = sorted(set(int(v) for v in nodes))
    if len(members) == 1:
        return Tree.single_node(members[0])
    member_set = set(members)

    # Restricted Dijkstra inside the cluster, ignoring heavy edges.
    import heapq

    dist = {v: float("inf") for v in members}
    parent: Dict[int, int] = {}
    weight: Dict[int, float] = {}
    dist[center] = 0.0
    heap = [(0.0, center)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            if v not in member_set or w > 2.0 * rho + 1e-12:
                continue
            nd = d + w
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                parent[v] = u
                weight[v] = w
                heapq.heappush(heap, (nd, v))

    unreachable = [v for v in members if not np.isfinite(dist[v])]
    if unreachable:
        # Fall back to the unrestricted induced subgraph: correctness (the
        # cover property) takes precedence over the small-edge bound, and the
        # benches report max_edge so any such fallback is visible.
        sub, mapping = graph.subgraph(members)
        local_center = mapping.index(center)
        d2, p2 = dijkstra(sub, local_center)
        parent = {}
        weight = {}
        for local_v, par in enumerate(p2):
            if par >= 0:
                parent[mapping[local_v]] = mapping[int(par)]
                weight[mapping[local_v]] = sub.edge_weight(int(par), local_v)
    return Tree(root=center, parent=parent, edge_weight=weight)


def _tree_from_local(members: np.ndarray, local_root: int,
                     pred: np.ndarray, edge_index) -> Tree:
    """Translate one block's local predecessor row into a global Tree.

    Weights come from the context's shared sorted-edge-key lookup (the
    restricted subgraph keeps original weights for every surviving edge).
    """
    local_children = np.flatnonzero(pred >= 0)
    if local_children.size == 0:
        return Tree.single_node(int(members[local_root]))
    local_parents = pred[local_children]
    children = members[local_children]
    parents = members[local_parents]
    weights = edge_index.weights(parents, children)
    return Tree(root=int(members[local_root]),
                parent=dict(zip(children.tolist(), parents.tolist())),
                edge_weight=dict(zip(children.tolist(), weights.tolist())))


def _cluster_trees_batched(graph: WeightedGraph, cover: SparseCover,
                           rho: float,
                           context: Optional[BuildContext] = None) -> List[Tree]:
    """Grow every cluster tree of ``cover``, one kernel call per cluster chunk."""
    from repro.construction.context import _EdgeIndex

    csr = graph.to_scipy_csr()
    weight_index = context.edge_index() if context is not None else _EdgeIndex(graph)
    jobs = []  # (cluster_index, members array, local root)
    trees: List[Optional[Tree]] = [None] * len(cover.clusters)
    for cluster in cover.clusters:
        members = np.asarray(sorted(cluster.nodes), dtype=np.int64)
        if members.size == 1:
            trees[cluster.index] = Tree.single_node(int(members[0]))
            continue
        local_root = int(np.searchsorted(members, cluster.center))
        jobs.append((cluster.index, members, local_root))

    def run_chunk(chunk) -> List[tuple]:
        # manual induced-submatrix assembly: row-slice the global CSR, then
        # keep columns inside the cluster and edges within 2 rho in one mask —
        # no SciPy column fancy-indexing (which argsorts per cluster)
        col_map = np.full(graph.n, -1, dtype=np.int64)
        blocks = []
        sources = []
        offset = 0
        for _, members, local_root in chunk:
            m = members.size
            rsel = csr[members]
            col_map[members] = np.arange(m)
            local_cols = col_map[rsel.indices]
            keep = (local_cols >= 0) & (rsel.data <= 2.0 * rho + 1e-12)
            row_of = np.repeat(np.arange(m), np.diff(rsel.indptr))
            indptr = np.concatenate(
                ([0], np.cumsum(np.bincount(row_of[keep], minlength=m))))
            sub = sp.csr_matrix(
                (rsel.data[keep], local_cols[keep], indptr), shape=(m, m))
            col_map[members] = -1
            blocks.append(sub)
            sources.append(offset + local_root)
            offset += m
        combined = sp.block_diag(blocks, format="csr")
        dist, pred = _scipy_dijkstra(combined, directed=False, indices=sources,
                                     return_predecessors=True)
        dist = np.atleast_2d(dist)
        pred = np.atleast_2d(pred)
        out = []
        offset = 0
        for row, (index, members, local_root) in enumerate(chunk):
            span = slice(offset, offset + members.size)
            local_dist = dist[row, span]
            local_pred = np.where(pred[row, span] < 0, -1,
                                  pred[row, span] - offset).astype(np.int64)
            if np.isfinite(local_dist).all():
                tree = _tree_from_local(members, local_root, local_pred,
                                        weight_index)
            else:
                # unreachable under the 2 rho restriction: fall back to the
                # unrestricted induced subgraph (same rule as the scalar path)
                sub = csr[members][:, members]
                d2, p2 = _scipy_dijkstra(sub, directed=False,
                                         indices=local_root,
                                         return_predecessors=True)
                local_pred = np.where(p2 < 0, -1, p2).astype(np.int64)
                tree = _tree_from_local(members, local_root, local_pred,
                                        weight_index)
            out.append((index, tree))
            offset += members.size
        return out

    chunks = []
    current: List[tuple] = []
    current_nodes = 0
    for job in jobs:
        size = job[1].size
        if current and (len(current) >= CLUSTER_CHUNK
                        or current_nodes + size > CHUNK_NODE_BUDGET):
            chunks.append(current)
            current, current_nodes = [], 0
        current.append(job)
        current_nodes += size
    if current:
        chunks.append(current)
    mapper = context.map if context is not None else (
        lambda fn, items: [fn(item) for item in items])
    for part in mapper(run_chunk, chunks):
        for index, tree in part:
            trees[index] = tree
    return trees  # type: ignore[return-value]


def build_tree_cover(
    graph: WeightedGraph,
    k: int,
    rho: float,
    oracle: Optional[DistanceOracle] = None,
    nodes: Optional[Sequence[int]] = None,
    context: Optional[BuildContext] = None,
) -> TreeCover:
    """Build ``TC_{k,rho}`` of ``graph`` (or of the induced subgraph on ``nodes``)."""
    require(k >= 1, f"k must be >= 1, got {k}")
    if context is None:
        context = BuildContext(graph, oracle=exact_distance_oracle(graph, oracle))
    cover: SparseCover = build_sparse_cover(graph, k, rho, oracle=context.oracle,
                                            nodes=nodes, context=context)
    if scalar_build_mode():
        trees = [_cluster_tree(graph, cluster.center, sorted(cluster.nodes), rho)
                 for cluster in cover.clusters]
    else:
        trees = _cluster_trees_batched(graph, cover, rho, context=context)
    return TreeCover(k=k, rho=rho, trees=trees, home=dict(cover.home))
