"""Tree covers ``TC_{k,rho}(G)`` (Lemma 6).

A tree cover turns each cluster of a :class:`SparseCover` into a rooted
spanning tree (a shortest-path tree of the cluster's induced subgraph,
restricted to edges of weight at most ``2 rho`` — such edges always suffice
to connect a cluster, and the restriction is what gives Lemma 6's
"small edges" property).  The cover keeps, for every node ``v``, the index of
the tree that contains its whole ball ``B(v, rho)`` — the tree ``W(v)`` the
dense routing strategy climbs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.covers.sparse_cover import SparseCover, build_sparse_cover
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, dijkstra, exact_distance_oracle
from repro.graphs.trees import Tree
from repro.utils.validation import require


@dataclass
class TreeCover:
    """A collection of rooted cluster trees covering all ``rho``-balls."""

    k: int
    rho: float
    trees: List[Tree]
    #: node -> index of the tree containing B(node, rho)
    home: Dict[int, int]

    def home_tree(self, v: int) -> Tree:
        """The tree guaranteed to contain ``B(v, rho)``."""
        return self.trees[self.home[v]]

    def trees_containing(self, v: int) -> List[int]:
        """Indices of all trees that contain node ``v``."""
        return [i for i, t in enumerate(self.trees) if t.contains(v)]

    def max_membership(self) -> int:
        """Largest number of trees any node belongs to (Lemma 6's sparsity)."""
        counts: Dict[int, int] = {}
        for t in self.trees:
            for v in t.nodes:
                counts[v] = counts.get(v, 0) + 1
        return max(counts.values()) if counts else 0

    def max_radius(self) -> float:
        """Largest tree radius (Lemma 6 bounds it by ``O(k) * rho``)."""
        return max((t.radius() for t in self.trees), default=0.0)

    def max_edge(self) -> float:
        """Heaviest tree edge (Lemma 6 bounds it by ``2 rho``)."""
        return max((t.max_edge() for t in self.trees), default=0.0)

    def covers_ball(self, v: int, oracle: DistanceOracle,
                    nodes: Optional[Sequence[int]] = None) -> bool:
        """Check that ``B(v, rho)`` (within ``nodes`` if given) lies inside ``home_tree(v)``."""
        ball = oracle.ball(v, self.rho)
        if nodes is not None:
            allowed = set(nodes)
            ball = [u for u in ball if u in allowed]
        tree = self.home_tree(v)
        return all(tree.contains(u) for u in ball)


def _cluster_tree(graph: WeightedGraph, center: int, nodes: Sequence[int],
                  rho: float) -> Tree:
    """Shortest-path tree of the cluster, using only edges of weight <= 2 rho."""
    members = sorted(set(int(v) for v in nodes))
    if len(members) == 1:
        return Tree.single_node(members[0])
    member_set = set(members)

    # Restricted Dijkstra inside the cluster, ignoring heavy edges.
    import heapq
    import numpy as np

    dist = {v: float("inf") for v in members}
    parent: Dict[int, int] = {}
    weight: Dict[int, float] = {}
    dist[center] = 0.0
    heap = [(0.0, center)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            if v not in member_set or w > 2.0 * rho + 1e-12:
                continue
            nd = d + w
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                parent[v] = u
                weight[v] = w
                heapq.heappush(heap, (nd, v))

    unreachable = [v for v in members if not np.isfinite(dist[v])]
    if unreachable:
        # Fall back to the unrestricted induced subgraph: correctness (the
        # cover property) takes precedence over the small-edge bound, and the
        # benches report max_edge so any such fallback is visible.
        sub, mapping = graph.subgraph(members)
        local_center = mapping.index(center)
        d2, p2 = dijkstra(sub, local_center)
        parent = {}
        weight = {}
        for local_v, par in enumerate(p2):
            if par >= 0:
                parent[mapping[local_v]] = mapping[int(par)]
                weight[mapping[local_v]] = sub.edge_weight(int(par), local_v)
    return Tree(root=center, parent=parent, edge_weight=weight)


def build_tree_cover(
    graph: WeightedGraph,
    k: int,
    rho: float,
    oracle: Optional[DistanceOracle] = None,
    nodes: Optional[Sequence[int]] = None,
) -> TreeCover:
    """Build ``TC_{k,rho}`` of ``graph`` (or of the induced subgraph on ``nodes``)."""
    require(k >= 1, f"k must be >= 1, got {k}")
    oracle = exact_distance_oracle(graph, oracle)
    cover: SparseCover = build_sparse_cover(graph, k, rho, oracle=oracle, nodes=nodes)
    trees: List[Tree] = []
    for cluster in cover.clusters:
        trees.append(_cluster_tree(graph, cluster.center, sorted(cluster.nodes), rho))
    return TreeCover(k=k, rho=rho, trees=trees, home=dict(cover.home))
