"""Sparse covers / tree covers (Lemma 6, after Awerbuch–Peleg [9] with [3]'s extensions)."""

from repro.covers.sparse_cover import SparseCover, build_sparse_cover
from repro.covers.tree_cover import TreeCover, build_tree_cover

__all__ = ["SparseCover", "build_sparse_cover", "TreeCover", "build_tree_cover"]
