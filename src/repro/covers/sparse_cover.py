"""Sparse covers by ball coarsening (Awerbuch–Peleg style).

Lemma 6 needs, for a graph ``G``, integer ``k`` and radius ``rho``, a
collection of clusters such that

* (cover) every ball ``B(v, rho)`` is fully contained in some cluster,
* (sparse) every node belongs to ``O(k n^{1/k})`` clusters,
* (small radius) every cluster has radius ``O(k) * rho`` around its center,
* (small edges) cluster spanning trees only use edges of weight ``<= 2 rho``.

The construction coarsens the initial cover ``{B(v, rho) : v}``: repeatedly
pick an uncovered ball, merge into it all still-unprocessed balls that touch
the growing cluster, and stop growing as soon as one more layer would not
multiply the number of merged *kernel* balls by ``n^{1/k}`` — so at most
``k`` growth layers happen and the radius stays ``O(k rho)``.  Balls merged
into the kernel are removed permanently (their cover obligation is met);
balls that merely touch the final cluster stay pending for later clusters,
and are skipped for the remainder of the current *phase* so that the clusters
produced within one phase stay (kernel-)disjoint, which is what bounds the
per-node membership.

Two implementations of the coarsening are provided.  The default is
array-native: balls arrive as flat CSR arrays (one streamed row-block pass
over the oracle), the ball→center incidence is transposed once, and each
cluster's "which pending balls touch me" query is a gather over the
transposed CSR restricted to the cluster's newly absorbed nodes — stamped
visit arrays replace the per-cluster Python set algebra, whose
``O(pending² · ball)`` intersection tests dominated every scale of the
hierarchical baselines.  ``REPRO_BUILD_MODE=scalar`` re-enables the original
set-based loop; both produce identical clusters in identical order (asserted
by the build-parity tests).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.construction.context import BuildContext, scalar_build_mode
from repro.construction.kernels import absorb_kernel
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, exact_distance_oracle
from repro.utils.validation import require

#: coarsening strategies accepted by ``REPRO_COVER_MODE``
COVER_MODES = ("auto", "csr", "regions")


def cover_mode() -> str:
    """Coarsening strategy knob (``REPRO_COVER_MODE``): auto|csr|regions.

    ``csr`` materializes the full ball incidence table once and coarsens
    against it (the PR-4 path; best when balls are small).  ``regions`` never
    builds the table: clusters grow by multi-source ``min_only`` Dijkstra
    regions, so large-radius scales — where every ball is a sizable fraction
    of the graph and the table would be O(n²) — cost a handful of Dijkstra
    passes per cluster instead.  ``auto`` samples a few ball sizes and picks.
    """
    raw = os.environ.get("REPRO_COVER_MODE", "auto").strip().lower() or "auto"
    if raw not in COVER_MODES:
        raise ValueError(
            f"unknown REPRO_COVER_MODE {raw!r}; choose from {COVER_MODES}")
    return raw


@dataclass
class Cluster:
    """One output cluster: its member nodes, kernel centers, and designated center."""

    index: int
    center: int
    nodes: Set[int]
    kernel_centers: Set[int] = field(default_factory=set)


@dataclass
class SparseCover:
    """The result of the coarsening: clusters plus the home-cluster map."""

    k: int
    rho: float
    clusters: List[Cluster]
    #: for each node, the index of the cluster that covers its rho-ball
    home: Dict[int, int]

    def membership_counts(self, n: int) -> np.ndarray:
        """Number of clusters containing each node (length-``n`` int array)."""
        if not self.clusters:
            return np.zeros(n, dtype=np.int64)
        members = np.concatenate([
            np.fromiter(cluster.nodes, dtype=np.int64, count=len(cluster.nodes))
            for cluster in self.clusters])
        return np.bincount(members, minlength=n)

    def max_membership(self, n: int) -> int:
        """Largest number of clusters any node belongs to."""
        counts = self.membership_counts(n)
        return int(counts.max()) if counts.size else 0

    def cluster_of_home(self, v: int) -> Cluster:
        """The cluster guaranteed to contain ``B(v, rho)``."""
        return self.clusters[self.home[v]]


def build_sparse_cover(
    graph: WeightedGraph,
    k: int,
    rho: float,
    oracle: Optional[DistanceOracle] = None,
    nodes: Optional[Sequence[int]] = None,
    context: Optional[BuildContext] = None,
) -> SparseCover:
    """Coarsen the ball cover ``{B(v, rho)}`` of ``graph`` into a sparse cover.

    Parameters
    ----------
    graph, k, rho:
        As in Lemma 6.
    oracle:
        Optional pre-computed distance oracle of ``graph``.
    nodes:
        Optional node subset: only these nodes' balls must be covered and only
        these nodes participate (used when covering a subgraph ``G_i`` that was
        *not* materialized as a separate ``WeightedGraph``).  Defaults to all
        nodes.
    context:
        Optional shared :class:`BuildContext` (streams the ball table through
        its oracle).
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    require(rho > 0, f"rho must be positive, got {rho}")
    if context is None:
        context = BuildContext(graph, oracle=exact_distance_oracle(graph, oracle))
    oracle = context.oracle
    if nodes is None:
        universe = np.arange(graph.n, dtype=np.int64)
    else:
        universe = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
    n_eff = max(universe.size, 2)
    growth = n_eff ** (1.0 / k)

    if scalar_build_mode():
        return _coarsen_scalar(oracle, k, rho, universe, growth)

    allowed_mask = None
    if nodes is not None:
        allowed_mask = np.zeros(graph.n, dtype=bool)
        allowed_mask[universe] = True
    mode = cover_mode()
    if mode == "auto":
        mode = _choose_cover_mode(graph, k, rho, universe, allowed_mask)
    if mode == "regions":
        return _coarsen_regions(graph, k, rho, universe, growth, allowed_mask)
    indptr, indices = context.ball_csr(rho, universe=universe,
                                       allowed_mask=allowed_mask)
    return _coarsen_vectorized(graph.n, k, rho, universe, growth, indptr, indices)


# --------------------------------------------------------------------------- #
# vectorized coarsening
# --------------------------------------------------------------------------- #
def _gather_csr(indptr: np.ndarray, data: np.ndarray,
                positions: np.ndarray) -> np.ndarray:
    """Concatenate ``data[indptr[p]:indptr[p+1]]`` over ``positions``, no loop."""
    if positions.size == 0:
        return np.zeros(0, dtype=data.dtype)
    if positions.size == 1:
        p = int(positions[0])
        return data[indptr[p]:indptr[p + 1]]
    starts = indptr[positions]
    counts = indptr[positions + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=data.dtype)
    offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return data[np.repeat(starts, counts) + offsets]


def _coarsen_vectorized(n: int, k: int, rho: float, universe: np.ndarray,
                        growth: float, indptr: np.ndarray,
                        indices: np.ndarray) -> SparseCover:
    """CSR/stamp implementation of the coarsening loop.

    Mirrors the scalar loop decision for decision: the same center order
    (``min`` of the pending set — universe positions ascend by global id),
    the same growth test, the same phase bookkeeping.  Per-cluster set
    algebra is replaced by stamp arrays: ``node_stamp[g] == cluster_id``
    means global node ``g`` is in the growing cluster, and the transposed
    ball incidence answers "which pending balls touch the nodes this layer
    absorbed" with one gather per layer.
    """
    num = universe.size
    # transpose of the ball incidence: owners_of[g] = universe positions p
    # with g in ball(p)
    member_order = np.argsort(indices, kind="stable")
    owners = np.repeat(np.arange(num, dtype=np.int64),
                       np.diff(indptr))[member_order]
    owned_nodes = indices[member_order]
    owners_indptr = np.concatenate(
        ([0], np.cumsum(np.bincount(owned_nodes, minlength=n))))

    remaining = np.ones(num, dtype=bool)
    pending = np.zeros(num, dtype=bool)
    node_stamp = np.full(n, -1, dtype=np.int64)       # node in current cluster
    touch_stamp = np.full(num, -1, dtype=np.int64)    # ball touches current cluster
    merged_stamp = np.full(num, -1, dtype=np.int64)   # ball already absorbed

    clusters: List[Cluster] = []
    home: Dict[int, int] = {}
    remaining_count = num

    # REPRO_JIT=1 fuses the absorb/mark gathers into one compiled CSR pass;
    # it emits the same new-node *set* in discovery order — every consumer
    # is a stamp array or a Python set, so the clusters are identical
    fused = absorb_kernel()
    scratch = np.empty(n, dtype=np.int64) if fused is not None else None
    flat_indices = np.asarray(indices)   # plain view (indices may be a memmap)

    def absorb(cid: int, positions: np.ndarray,
               members_out: List[np.ndarray], mark: bool = False) -> np.ndarray:
        """Merge the balls of ``positions`` into cluster ``cid``.

        Returns the globally-new nodes; ``members_out`` accumulates them so
        the final member list needs no mask scan.  With ``mark`` the owning
        balls of every new node are stamped as touching the cluster (the
        growth layers need it; the final absorb does not).
        """
        if fused is not None:
            count = fused(indptr, flat_indices, owners_indptr, owners,
                          merged_stamp, node_stamp, touch_stamp,
                          np.ascontiguousarray(positions, dtype=np.int64),
                          cid, scratch, mark)
            new_nodes = scratch[:count].copy()
            members_out.append(new_nodes)
            return new_nodes
        fresh_balls = positions[merged_stamp[positions] != cid]
        if fresh_balls.size == 0:
            return np.zeros(0, dtype=np.int64)
        merged_stamp[fresh_balls] = cid
        if fresh_balls.size == 1:
            # one ball is already sorted and duplicate-free
            p = int(fresh_balls[0])
            candidates = indices[indptr[p]:indptr[p + 1]]
        else:
            candidates = np.unique(_gather_csr(indptr, indices, fresh_balls))
        new_nodes = candidates[node_stamp[candidates] != cid]
        node_stamp[new_nodes] = cid
        members_out.append(new_nodes)
        if mark:
            mark_touching(cid, new_nodes)
        return new_nodes

    def mark_touching(cid: int, new_nodes: np.ndarray) -> None:
        touch_stamp[_gather_csr(owners_indptr, owners, new_nodes)] = cid

    while remaining_count:
        pending[:] = remaining
        pending_count = int(remaining_count)
        cursor = 0
        while pending_count:
            # v = min(phase_pending): universe positions ascend by global id
            cursor += int(np.argmax(pending[cursor:]))
            v = cursor
            cid = len(clusters)
            kernel = np.asarray([v], dtype=np.int64)
            members_parts: List[np.ndarray] = []
            absorb(cid, kernel, members_parts, mark=True)
            for _ in range(k + 1):
                touching = np.flatnonzero((touch_stamp == cid) & pending)
                touch_set = np.union1d(touching, kernel)
                if touch_set.size < growth * kernel.size:
                    # final layer: absorb the touching balls into the cluster
                    # body, but only the current kernel is considered covered
                    absorb(cid, touch_set, members_parts)
                    member_nodes = np.concatenate(members_parts) \
                        if members_parts else np.zeros(0, dtype=np.int64)
                    kernel_globals = universe[kernel]
                    clusters.append(Cluster(
                        index=cid, center=int(universe[v]),
                        nodes=set(member_nodes.tolist()),
                        kernel_centers=set(kernel_globals.tolist())))
                    for c in kernel_globals.tolist():
                        home[c] = cid
                    remaining[kernel] = False
                    remaining_count -= kernel.size
                    dropped = touch_set[pending[touch_set]]
                    pending[dropped] = False
                    pending_count -= dropped.size
                    break
                kernel = touch_set
                absorb(cid, touch_set, members_parts, mark=True)
            else:  # pragma: no cover - the growth loop always breaks within k+1 rounds
                raise RuntimeError("sparse cover growth loop failed to terminate")

    return SparseCover(k=k, rho=rho, clusters=clusters, home=home)


# --------------------------------------------------------------------------- #
# region-growing coarsening (REPRO_COVER_MODE=regions / auto at large rho)
# --------------------------------------------------------------------------- #
def _limited_min_dist(csr, sources: np.ndarray, rho: float) -> np.ndarray:
    """Min distance from ``sources`` to every node, exact within ``rho``.

    The limit is widened the same way :meth:`BuildContext.limited_dijkstra`
    widens it, so every node that could pass the ``<= rho + 1e-12`` ball test
    is finalized with its exact distance; nodes beyond come back ``inf``.
    """
    from scipy.sparse.csgraph import dijkstra

    limit = rho * (1.0 + 1e-12) + 1e-12
    return dijkstra(csr, directed=False, indices=sources, min_only=True,
                    limit=limit)


def _choose_cover_mode(graph: WeightedGraph, k: int, rho: float,
                       universe: np.ndarray,
                       allowed_mask: Optional[np.ndarray]) -> str:
    """Sample a few ball sizes and pick csr vs regions for this scale.

    The csr table costs one row per universe node (n Dijkstra rows) plus
    ``total ball entries × 8`` bytes; region growing costs ``O(k)`` Dijkstra
    passes per *cluster*.  Large sampled balls mean few clusters — regions
    wins; small balls mean ~one cluster per node — the streamed table wins.
    """
    num = universe.size
    if num < 2048:
        return "csr"   # small instance: the table is cheap and exact
    samples = universe[:: max(num // 8, 1)][:8]
    sizes = []
    csr = graph.to_scipy_csr()
    for s in samples:
        row = _limited_min_dist(csr, np.asarray([s], dtype=np.int64), rho)
        in_ball = row <= rho + 1e-12
        if allowed_mask is not None:
            in_ball &= allowed_mask
        sizes.append(int(np.count_nonzero(in_ball)))
    avg_ball = float(np.mean(sizes)) if sizes else 1.0
    return "regions" if avg_ball >= max(32.0, 4.0 * (k + 2)) else "csr"


def _coarsen_regions(graph: WeightedGraph, k: int, rho: float,
                     universe: np.ndarray, growth: float,
                     allowed_mask: Optional[np.ndarray]) -> SparseCover:
    """Ball-table-free coarsening: clusters grow as min-only Dijkstra regions.

    Decision-for-decision the same loop as :func:`_coarsen_vectorized` — the
    same center order, growth test and phase bookkeeping — but the two set
    queries are answered from the graph instead of a precomputed incidence:

    * *absorb*: the union of the fresh kernel balls is exactly the set of
      allowed nodes within ``rho`` of the fresh centers — one multi-source
      ``min_only`` pass from those centers (the multi-source distance is the
      per-source minimum bit-for-bit, so the ball test matches the table);
    * *touching*: a pending ball touches the cluster iff its center is
      within ``rho`` of some cluster node — a running minimum over
      per-layer ``min_only`` passes sourced at the newly absorbed nodes.

    Worst case (tiny balls) this is a Dijkstra pass per cluster; the auto
    mode only picks it when sampled balls are large, i.e. when the csr table
    would be a significant fraction of O(n²).
    """
    n = graph.n
    csr = graph.to_scipy_csr()
    num = universe.size
    tol = rho + 1e-12

    remaining = np.ones(num, dtype=bool)
    pending = np.zeros(num, dtype=bool)
    node_stamp = np.full(n, -1, dtype=np.int64)
    merged_stamp = np.full(num, -1, dtype=np.int64)

    clusters: List[Cluster] = []
    home: Dict[int, int] = {}
    remaining_count = num

    while remaining_count:
        pending[:] = remaining
        pending_count = int(remaining_count)
        cursor = 0
        while pending_count:
            cursor += int(np.argmax(pending[cursor:]))
            v = cursor
            cid = len(clusters)
            kernel = np.asarray([v], dtype=np.int64)
            members_parts: List[np.ndarray] = []
            # min distance from the cluster body to every node so far
            cluster_dist = np.full(n, np.inf)

            def absorb(positions: np.ndarray, mark: bool) -> None:
                fresh = positions[merged_stamp[positions] != cid]
                if fresh.size == 0:
                    return
                merged_stamp[fresh] = cid
                dist = _limited_min_dist(csr, universe[fresh], rho)
                in_ball = dist <= tol
                if allowed_mask is not None:
                    in_ball &= allowed_mask
                candidates = np.flatnonzero(in_ball)
                new_nodes = candidates[node_stamp[candidates] != cid]
                node_stamp[new_nodes] = cid
                members_parts.append(new_nodes)
                if mark and new_nodes.size:
                    reach = _limited_min_dist(csr, new_nodes, rho)
                    np.minimum(cluster_dist, reach, out=cluster_dist)

            absorb(kernel, mark=True)
            for _ in range(k + 1):
                centers = universe[pending]
                touch_hit = cluster_dist[centers] <= tol
                touching = np.flatnonzero(pending)[touch_hit]
                touch_set = np.union1d(touching, kernel)
                if touch_set.size < growth * kernel.size:
                    absorb(touch_set, mark=False)
                    member_nodes = np.concatenate(members_parts) \
                        if members_parts else np.zeros(0, dtype=np.int64)
                    member_nodes = np.unique(member_nodes)
                    kernel_globals = universe[kernel]
                    clusters.append(Cluster(
                        index=cid, center=int(universe[v]),
                        nodes=set(member_nodes.tolist()),
                        kernel_centers=set(kernel_globals.tolist())))
                    for c in kernel_globals.tolist():
                        home[c] = cid
                    remaining[kernel] = False
                    remaining_count -= kernel.size
                    dropped = touch_set[pending[touch_set]]
                    pending[dropped] = False
                    pending_count -= dropped.size
                    break
                kernel = touch_set
                absorb(touch_set, mark=True)
            else:  # pragma: no cover - the growth loop always breaks within k+1 rounds
                raise RuntimeError("sparse cover growth loop failed to terminate")

    return SparseCover(k=k, rho=rho, clusters=clusters, home=home)


# --------------------------------------------------------------------------- #
# scalar coarsening (REPRO_BUILD_MODE=scalar; the build-parity reference)
# --------------------------------------------------------------------------- #
def _coarsen_scalar(oracle: DistanceOracle, k: int, rho: float,
                    universe_arr: np.ndarray, growth: float) -> SparseCover:
    universe = [int(v) for v in universe_arr]
    allowed = set(universe)

    # Pre-compute every ball restricted to the allowed node set.  Sources are
    # prefetched in blocks so the lazy backend fills its row cache with one
    # vectorized multi-source call per block instead of a Dijkstra per ball.
    balls: Dict[int, Set[int]] = {}
    for chunk in oracle.iter_prefetched_chunks(universe):
        for v in chunk:
            balls[v] = {u for u in oracle.ball(v, rho) if u in allowed}

    remaining: Set[int] = set(universe)          # centers whose ball still needs covering
    clusters: List[Cluster] = []
    home: Dict[int, int] = {}

    while remaining:
        phase_pending: Set[int] = set(remaining)  # centers processable in this phase
        progressed = False
        while phase_pending:
            v = min(phase_pending)
            kernel: Set[int] = {v}
            cluster_nodes: Set[int] = set(balls[v])
            # grow while one more layer multiplies the kernel by >= n^{1/k}
            for _ in range(k + 1):
                touching = {c for c in phase_pending
                            if c in remaining and not balls[c].isdisjoint(cluster_nodes)}
                touching |= kernel
                if len(touching) < growth * len(kernel):
                    # final layer: absorb the touching balls into the cluster body,
                    # but only the current kernel is considered covered
                    final_nodes = set(cluster_nodes)
                    for c in touching:
                        final_nodes |= balls[c]
                    index = len(clusters)
                    clusters.append(Cluster(index=index, center=v,
                                            nodes=final_nodes, kernel_centers=set(kernel)))
                    for c in kernel:
                        home[c] = index
                    remaining -= kernel
                    phase_pending -= touching
                    phase_pending -= kernel
                    progressed = True
                    break
                kernel = set(touching)
                for c in touching:
                    cluster_nodes |= balls[c]
            else:  # pragma: no cover - the growth loop always breaks within k+1 rounds
                raise RuntimeError("sparse cover growth loop failed to terminate")
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("sparse cover made no progress in a phase")

    return SparseCover(k=k, rho=rho, clusters=clusters, home=home)
