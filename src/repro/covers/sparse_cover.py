"""Sparse covers by ball coarsening (Awerbuch–Peleg style).

Lemma 6 needs, for a graph ``G``, integer ``k`` and radius ``rho``, a
collection of clusters such that

* (cover) every ball ``B(v, rho)`` is fully contained in some cluster,
* (sparse) every node belongs to ``O(k n^{1/k})`` clusters,
* (small radius) every cluster has radius ``O(k) * rho`` around its center,
* (small edges) cluster spanning trees only use edges of weight ``<= 2 rho``.

The construction coarsens the initial cover ``{B(v, rho) : v}``: repeatedly
pick an uncovered ball, merge into it all still-unprocessed balls that touch
the growing cluster, and stop growing as soon as one more layer would not
multiply the number of merged *kernel* balls by ``n^{1/k}`` — so at most
``k`` growth layers happen and the radius stays ``O(k rho)``.  Balls merged
into the kernel are removed permanently (their cover obligation is met);
balls that merely touch the final cluster stay pending for later clusters,
and are skipped for the remainder of the current *phase* so that the clusters
produced within one phase stay (kernel-)disjoint, which is what bounds the
per-node membership.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, exact_distance_oracle
from repro.utils.validation import require


@dataclass
class Cluster:
    """One output cluster: its member nodes, kernel centers, and designated center."""

    index: int
    center: int
    nodes: Set[int]
    kernel_centers: Set[int] = field(default_factory=set)


@dataclass
class SparseCover:
    """The result of the coarsening: clusters plus the home-cluster map."""

    k: int
    rho: float
    clusters: List[Cluster]
    #: for each node, the index of the cluster that covers its rho-ball
    home: Dict[int, int]

    def membership_counts(self, n: int) -> List[int]:
        """Number of clusters containing each node (length-``n`` list)."""
        counts = [0] * n
        for cluster in self.clusters:
            for v in cluster.nodes:
                counts[v] += 1
        return counts

    def max_membership(self, n: int) -> int:
        """Largest number of clusters any node belongs to."""
        counts = self.membership_counts(n)
        return max(counts) if counts else 0

    def cluster_of_home(self, v: int) -> Cluster:
        """The cluster guaranteed to contain ``B(v, rho)``."""
        return self.clusters[self.home[v]]


def build_sparse_cover(
    graph: WeightedGraph,
    k: int,
    rho: float,
    oracle: Optional[DistanceOracle] = None,
    nodes: Optional[Sequence[int]] = None,
) -> SparseCover:
    """Coarsen the ball cover ``{B(v, rho)}`` of ``graph`` into a sparse cover.

    Parameters
    ----------
    graph, k, rho:
        As in Lemma 6.
    oracle:
        Optional pre-computed distance oracle of ``graph``.
    nodes:
        Optional node subset: only these nodes' balls must be covered and only
        these nodes participate (used when covering a subgraph ``G_i`` that was
        *not* materialized as a separate ``WeightedGraph``).  Defaults to all
        nodes.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    require(rho > 0, f"rho must be positive, got {rho}")
    oracle = exact_distance_oracle(graph, oracle)
    if nodes is None:
        universe = list(range(graph.n))
    else:
        universe = sorted(set(int(v) for v in nodes))
    allowed = set(universe)
    n_eff = max(len(universe), 2)
    growth = n_eff ** (1.0 / k)

    # Pre-compute every ball restricted to the allowed node set.  Sources are
    # prefetched in blocks so the lazy backend fills its row cache with one
    # vectorized multi-source call per block instead of a Dijkstra per ball.
    balls: Dict[int, Set[int]] = {}
    for chunk in oracle.iter_prefetched_chunks(universe):
        for v in chunk:
            balls[v] = {u for u in oracle.ball(v, rho) if u in allowed}

    remaining: Set[int] = set(universe)          # centers whose ball still needs covering
    clusters: List[Cluster] = []
    home: Dict[int, int] = {}

    while remaining:
        phase_pending: Set[int] = set(remaining)  # centers processable in this phase
        progressed = False
        while phase_pending:
            v = min(phase_pending)
            kernel: Set[int] = {v}
            cluster_nodes: Set[int] = set(balls[v])
            # grow while one more layer multiplies the kernel by >= n^{1/k}
            for _ in range(k + 1):
                touching = {c for c in phase_pending
                            if c in remaining and not balls[c].isdisjoint(cluster_nodes)}
                touching |= kernel
                if len(touching) < growth * len(kernel):
                    # final layer: absorb the touching balls into the cluster body,
                    # but only the current kernel is considered covered
                    final_nodes = set(cluster_nodes)
                    for c in touching:
                        final_nodes |= balls[c]
                    index = len(clusters)
                    clusters.append(Cluster(index=index, center=v,
                                            nodes=final_nodes, kernel_centers=set(kernel)))
                    for c in kernel:
                        home[c] = index
                    remaining -= kernel
                    phase_pending -= touching
                    phase_pending -= kernel
                    progressed = True
                    break
                kernel = set(touching)
                for c in touching:
                    cluster_nodes |= balls[c]
            else:  # pragma: no cover - the growth loop always breaks within k+1 rounds
                raise RuntimeError("sparse cover growth loop failed to terminate")
        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("sparse cover made no progress in a phase")

    return SparseCover(k=k, rho=rho, clusters=clusters, home=home)
