"""Sparse/dense neighborhood decomposition (Definitions 1 and 2).

For every node ``u`` the decomposition produces ranges
``a(u,0) = 0 < a(u,1) < ... < a(u,k+1)`` such that the ball of radius
``2^{a(u,i+1)}`` around ``u`` holds at least ``n^{1/k}`` times as many nodes
as the ball of radius ``2^{a(u,i)}`` — each level multiplies the population
by ``n^{1/k}`` *and* at least doubles the radius, which is the combined
combinatorial/geometric restriction that makes the scheme scale-free.

Level ``i`` is **dense** for ``u`` when the next range is at most
``dense_gap`` (= 3) steps away, i.e. the population multiplies within a
constant radius blow-up; otherwise it is **sparse**.

Distances are measured in units of ``d_min`` (the smallest positive pairwise
distance) so that radius ``2^j`` means ``d_min * 2^j`` — the paper simply
normalizes ``d_min = 1``.  When no radius achieves the required growth the
range is capped at a sentinel exponent large enough that the corresponding
ball covers the whole connected component; this realizes the paper's
"``a(u,i+1) = log Δ`` if no such integer exists" and guarantees the top level
always covers the destination (DESIGN.md §3 item 5).
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.params import AGMParams
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, exact_distance_oracle
from repro.utils.validation import check_index, require


class NeighborhoodDecomposition:
    """Ranges, neighborhoods and dense/sparse classification for every node."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        oracle: Optional[DistanceOracle] = None,
        params: Optional[AGMParams] = None,
    ) -> None:
        require(k >= 1, f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = int(k)
        self.params = params or AGMParams.paper()
        self.oracle = exact_distance_oracle(graph, oracle)
        self.n = graph.n
        self.growth = max(self.n, 2) ** (1.0 / self.k)

        self.d_min = self.oracle.min_positive_distance()
        diameter = self.oracle.diameter()
        self.max_exp = 0
        if diameter > 0 and self.d_min > 0:
            self.max_exp = max(0, int(math.ceil(math.log2(diameter / self.d_min))))
        #: sentinel exponent whose E/F balls cover the whole component
        self.top_exp = self.max_exp + 4

        # Pre-compute |B(u, d_min * 2^j)| for every node and every exponent
        # 0..max_exp in vectorized blocks; the range recursion then runs on
        # this table instead of issuing O(n) ball queries per probe.  Rows are
        # streamed through the oracle so the table costs O(block · n) transient
        # memory under the lazy backend instead of a materialized O(n²) matrix.
        radii = self.d_min * np.power(2.0, np.arange(self.max_exp + 1)) + 1e-12
        levels = self.max_exp + 1
        self._ball_size_table = np.empty((self.n, levels), dtype=np.int64)
        for chunk, rows in self.oracle.iter_row_blocks():
            # One searchsorted pass buckets every distance into the first
            # radius level containing it (`left` == first j with r_j >= d,
            # so the bucket test matches `d <= r_j` exactly; inf lands past
            # the last level and is dropped).  A per-row histogram + cumsum
            # then yields |B(u, r_j)| for all j at once — one O(log levels)
            # pass over the block instead of `levels` full boolean sweeps.
            chunk_idx = np.asarray(chunk)
            buckets = np.searchsorted(radii, rows, side="left")
            flat = np.arange(len(chunk_idx))[:, None] * (levels + 1) + buckets
            hist = np.bincount(flat.ravel(),
                               minlength=len(chunk_idx) * (levels + 1))
            hist = hist.reshape(len(chunk_idx), levels + 1)[:, :levels]
            self._ball_size_table[chunk_idx] = np.cumsum(hist, axis=1)

        # ranges a(u, 0..k+1), all nodes at once (one boolean-matrix argmax
        # per level instead of n per-node probe loops), plus the dense/sparse
        # classification table derived from them
        self._ranges: np.ndarray = self._compute_all_ranges()
        next_within = self._ranges[:, 1:] <= self._ranges[:, :-1] + self.params.dense_gap
        self._dense_table: np.ndarray = \
            (self._ranges[:, :-1] < self._ranges[:, 1:]) & next_within

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def radius_of_exponent(self, j: float) -> float:
        """The metric radius corresponding to exponent ``j`` (i.e. ``d_min * 2^j``)."""
        return self.d_min * (2.0 ** j)

    def _ball_size(self, u: int, exponent: float) -> int:
        j = int(exponent)
        if 0 <= j <= self.max_exp and j == exponent:
            return int(self._ball_size_table[u, j])
        return self.oracle.ball_size(u, self.radius_of_exponent(exponent))

    def _compute_ranges(self, u: int) -> List[int]:
        """Per-node range recursion (the scalar reference of :meth:`_compute_all_ranges`)."""
        sizes = self._ball_size_table[u]
        ranges = [0]
        current_size = 1  # |A(u,0)| = |{u}|
        for _ in range(self.k + 1):
            target = self.growth * current_size
            # the next range must strictly exceed the previous one (ball sizes
            # are monotone, so smaller exponents can never reach the target)
            start = max(ranges[-1] + 1, 1)
            found: Optional[int] = None
            if start <= self.max_exp:
                hits = np.where(sizes[start:] >= target - 1e-9)[0]
                if hits.size:
                    found = start + int(hits[0])
            if found is None:
                ranges.append(max(self.top_exp, ranges[-1] + self.params.dense_gap + 1))
                current_size = int(sizes[self.max_exp])
            else:
                ranges.append(found)
                current_size = int(sizes[found])
        return ranges

    def _compute_all_ranges(self) -> np.ndarray:
        """The range recursion for every node at once.

        Level-synchronous over the ball-size table: one ``(n, max_exp+1)``
        boolean comparison plus an ``argmax`` per level replaces the per-node
        probe loops of :meth:`_compute_ranges` (identical results — asserted
        by the decomposition tests).
        """
        sizes = self._ball_size_table
        exps = np.arange(self.max_exp + 1)
        ranges = np.zeros((self.n, self.k + 2), dtype=np.int64)
        current = np.ones(self.n, dtype=np.float64)  # |A(u,0)| = 1
        for level in range(1, self.k + 2):
            target = self.growth * current
            start = np.maximum(ranges[:, level - 1] + 1, 1)
            valid = (sizes >= target[:, None] - 1e-9) & (exps[None, :] >= start[:, None])
            has_hit = valid.any(axis=1)
            first = np.argmax(valid, axis=1)
            capped = np.maximum(self.top_exp,
                                ranges[:, level - 1] + self.params.dense_gap + 1)
            ranges[:, level] = np.where(has_hit, first, capped)
            current = np.where(has_hit, sizes[np.arange(self.n), first],
                               sizes[:, self.max_exp]).astype(np.float64)
        return ranges

    # ------------------------------------------------------------------ #
    # Definition 1 accessors
    # ------------------------------------------------------------------ #
    def range(self, u: int, i: int) -> int:
        """``a(u, i)`` for ``0 <= i <= k+1``."""
        check_index(u, self.n, "u")
        require(0 <= i <= self.k + 1, f"level {i} out of range [0, {self.k + 1}]")
        return int(self._ranges[u, i])

    def ranges_of(self, u: int) -> List[int]:
        """The full range list ``[a(u,0), ..., a(u,k+1)]``."""
        check_index(u, self.n, "u")
        return [int(a) for a in self._ranges[u]]

    def ranges_table(self) -> np.ndarray:
        """All ranges as an ``(n, k+2)`` array (read-only; do not mutate)."""
        return self._ranges

    def dense_table(self) -> np.ndarray:
        """Dense/sparse classification as an ``(n, k+1)`` bool array (read-only)."""
        return self._dense_table

    def neighborhood_radius(self, u: int, i: int) -> float:
        """Radius of ``A(u, i)`` (0 for level 0)."""
        if i == 0:
            return 0.0
        return self.radius_of_exponent(self.range(u, i))

    def neighborhood(self, u: int, i: int) -> List[int]:
        """``A(u, i)``: the level-``i`` neighborhood ball of ``u``."""
        if i == 0:
            return [u]
        return self.oracle.ball(u, self.neighborhood_radius(u, i))

    def neighborhood_indices(self, u: int, i: int) -> np.ndarray:
        """``A(u, i)`` as an index array (zero-copy hot-path variant)."""
        if i == 0:
            return np.asarray([u], dtype=np.int64)
        return self.oracle.ball_indices(u, self.neighborhood_radius(u, i))

    def neighborhood_size(self, u: int, i: int) -> int:
        """``|A(u, i)|``."""
        if i == 0:
            return 1
        return self.oracle.ball_size(u, self.neighborhood_radius(u, i))

    # ------------------------------------------------------------------ #
    # Definition 2: dense / sparse levels
    # ------------------------------------------------------------------ #
    def is_dense(self, u: int, i: int) -> bool:
        """Whether level ``i`` is dense for ``u`` (Definition 2)."""
        require(0 <= i <= self.k, f"level {i} out of range [0, {self.k}]")
        return bool(self._dense_table[u, i])

    def is_sparse(self, u: int, i: int) -> bool:
        """Whether level ``i`` is sparse for ``u``."""
        return not self.is_dense(u, i)

    def dense_levels(self, u: int) -> List[int]:
        """All dense levels of ``u`` in ``0..k``."""
        return [i for i in range(self.k + 1) if self.is_dense(u, i)]

    def sparse_levels(self, u: int) -> List[int]:
        """All sparse levels of ``u`` in ``0..k``."""
        return [i for i in range(self.k + 1) if self.is_sparse(u, i)]

    # ------------------------------------------------------------------ #
    # guarantee balls F(u,i) and E(u,i)
    # ------------------------------------------------------------------ #
    def f_radius(self, u: int, i: int) -> float:
        """Radius of ``F(u, i) = B(u, 2^{a(u,i)-1})`` (the dense-level guarantee ball)."""
        return self.radius_of_exponent(self.range(u, i) - 1)

    def f_ball(self, u: int, i: int) -> List[int]:
        """``F(u, i)``."""
        return self.oracle.ball(u, self.f_radius(u, i))

    def e_radius(self, u: int, i: int) -> float:
        """Radius of ``E(u, i) = B(u, 2^{a(u,i+1)} / 6)`` (the sparse-level guarantee ball)."""
        return self.radius_of_exponent(self.range(u, i + 1)) / self.params.sparse_shrink

    def e_ball(self, u: int, i: int) -> List[int]:
        """``E(u, i)``."""
        return self.oracle.ball(u, self.e_radius(u, i))

    def e_ball_indices(self, u: int, i: int) -> np.ndarray:
        """``E(u, i)`` as an index array (zero-copy hot-path variant)."""
        return self.oracle.ball_indices(u, self.e_radius(u, i))

    def guarantee_ball(self, u: int, i: int) -> List[int]:
        """The ball the level-``i`` strategy is guaranteed to cover (F if dense, E if sparse)."""
        return self.f_ball(u, i) if self.is_dense(u, i) else self.e_ball(u, i)

    # ------------------------------------------------------------------ #
    # range sets L(u), R(u) and the extended-range subgraph populations
    # ------------------------------------------------------------------ #
    def range_set(self, u: int) -> Set[int]:
        """``L(u) = { a(u, i) : i in K }``."""
        return set(int(a) for a in self._ranges[u, : self.k + 1])

    def extended_range_set(self, u: int) -> Set[int]:
        """``R(u) = { j : exists a in L(u) with -1 <= a - j <= 4 }`` (clipped to >= 0)."""
        out: Set[int] = set()
        for a in self.range_set(u):
            lo = a - self.params.extend_above
            hi = a + self.params.extend_below
            for j in range(max(lo, 0), hi + 1):
                out.add(j)
        return out

    def extended_range_members(self) -> Dict[int, List[int]]:
        """For every exponent ``j``, the node set ``V_j = { u : j in R(u) }``.

        Vectorized: every ``(node, offset-shifted range)`` pair is generated
        by broadcasting over the range table, deduplicated, and grouped by
        exponent with one sort — no per-node Python set construction.
        """
        offsets = np.arange(-self.params.extend_above,
                            self.params.extend_below + 1, dtype=np.int64)
        exponents = (self._ranges[:, : self.k + 1, None] + offsets).reshape(self.n, -1)
        nodes = np.broadcast_to(np.arange(self.n, dtype=np.int64)[:, None],
                                exponents.shape)
        keep = exponents >= 0
        pairs = np.unique(np.stack([exponents[keep], nodes[keep]], axis=1), axis=0)
        members: Dict[int, List[int]] = {}
        if pairs.size == 0:
            return members
        split_at = np.flatnonzero(np.diff(pairs[:, 0])) + 1
        for group in np.split(pairs, split_at):
            members[int(group[0, 0])] = [int(u) for u in group[:, 1]]
        return members

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def describe(self, u: int) -> Dict[str, object]:
        """Human-readable summary of ``u``'s decomposition (for debugging/reports)."""
        return {
            "ranges": self.ranges_of(u),
            "sizes": [self.neighborhood_size(u, i) for i in range(self.k + 1)],
            "dense": [self.is_dense(u, i) for i in range(self.k + 1)],
        }
