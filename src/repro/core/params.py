"""Tunable constants of the AGM construction.

The paper's constants (e.g. ``|S(u,i)| = 16 n^{2/k} log n`` nearby landmarks,
the dense-level gap of 3, the ``/6`` shrink factor of ``E(u,i)``) are chosen
for the asymptotic analysis; several of them exceed ``n`` outright for the
graph sizes a pure-Python reproduction can handle, in which case every set
degenerates to "all nodes" and the measurement says nothing about scaling.

:class:`AGMParams` therefore exposes every constant:

* :meth:`AGMParams.paper` keeps the published values;
* :meth:`AGMParams.experiment` scales the *constant factors* down (never the
  exponents) so that the ``n^{1/k}``-type scaling is visible at n of a few
  hundred nodes.  DESIGN.md §3 item 2 documents this substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.utils.validation import require


@dataclass(frozen=True)
class AGMParams:
    """Constants of the construction (see module docstring)."""

    #: multiplier in front of ``n^{2/k} log2 n`` for the nearby-landmark sets S(u, i)
    landmark_count_factor: float = 16.0
    #: dense level when ``a(u,i+1) <= a(u,i) + dense_gap`` (Definition 2 uses 3)
    dense_gap: int = 3
    #: the sparse guarantee ball is ``E(u,i) = B(u, 2^{a(u,i+1)} / sparse_shrink)``
    sparse_shrink: float = 6.0
    #: extended range: ``R(u) = { j : exists a in L(u), -extend_below <= a - j <= extend_above }``
    extend_below: int = 1
    extend_above: int = 4
    #: bits charged for storing one arbitrary node name (the paper allows polylog(n))
    name_bits: int = 64
    #: landmark sampling probability is ``(n / ln n)^{-1/k}`` scaled by this factor
    sampling_boost: float = 1.0
    #: how many times to re-draw the landmark hierarchy if a sanity check fails
    max_sampling_retries: int = 5

    def __post_init__(self) -> None:
        require(self.landmark_count_factor > 0, "landmark_count_factor must be positive")
        require(self.dense_gap >= 1, "dense_gap must be >= 1")
        require(self.sparse_shrink >= 1.0, "sparse_shrink must be >= 1")
        require(self.extend_below >= 0 and self.extend_above >= 0,
                "extended-range margins must be non-negative")
        require(self.name_bits >= 1, "name_bits must be >= 1")
        require(self.sampling_boost > 0, "sampling_boost must be positive")

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "AGMParams":
        """The constants as published."""
        return cls()

    @classmethod
    def experiment(cls, landmark_count_factor: float = 1.0) -> "AGMParams":
        """Scaled-down constant factors for small-n experiments (exponents unchanged)."""
        return cls(landmark_count_factor=landmark_count_factor)

    def with_overrides(self, **kwargs) -> "AGMParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def nearby_landmark_count(self, n: int, k: int) -> int:
        """``|S(u, i)|``: how many nearby landmarks of each level a node tracks."""
        require(n >= 1 and k >= 1, "n and k must be >= 1")
        raw = self.landmark_count_factor * (n ** (2.0 / k)) * max(math.log2(max(n, 2)), 1.0)
        return max(1, int(math.ceil(raw)))

    def sampling_probability(self, n: int, k: int) -> float:
        """Per-level landmark survival probability ``(n / ln n)^{-1/k}``."""
        require(n >= 2 and k >= 1, "n must be >= 2 and k >= 1")
        base = (n / max(math.log(n), 1.0)) ** (-1.0 / k)
        return min(1.0, base * self.sampling_boost)
