"""Landmark hierarchy, ranks, nearby-landmark sets and centers (Section 2.3).

The sparse-level machinery needs a low-discrepancy hierarchy of landmark sets
``V = C_0 ⊇ C_1 ⊇ ... ⊇ C_k = ∅``: starting from all nodes, each level keeps
every node of the previous level independently with probability
``(n / ln n)^{-1/k}``.  A node's **rank** is the largest level it belongs to.

From the hierarchy the paper derives, for every node ``u`` and level ``i``:

* ``S(u, i)`` — the ``16 n^{2/k} log n`` closest members of ``C_i``
  (the "nearby landmarks" of level ``i``), and ``S(u)`` their union;
* ``m(u, i)`` — the highest rank present in the neighborhood ``A(u, i)``;
* ``c(u, i)`` — the closest node of rank-class ``C_{m(u,i)}`` — the *center*
  the sparse strategy routes through.

Claims 1 and 2 are w.h.p. statements about this sampling; the reproduction
verifies them empirically (see ``verify_claims``) and the construction can be
re-drawn a few times if a check fails (the paper notes the construction can
be fully de-randomized).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.params import AGMParams
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, exact_distance_oracle
from repro.utils.rng import make_rng
from repro.utils.validation import check_index, require


class LandmarkHierarchy:
    """Sampled landmark levels plus the derived S / m / c quantities."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        oracle: Optional[DistanceOracle] = None,
        decomposition: Optional[NeighborhoodDecomposition] = None,
        params: Optional[AGMParams] = None,
        seed=None,
    ) -> None:
        require(k >= 1, f"k must be >= 1, got {k}")
        self.graph = graph
        self.k = int(k)
        self.params = params or AGMParams.paper()
        self.oracle = exact_distance_oracle(graph, oracle)
        self.decomposition = decomposition or NeighborhoodDecomposition(
            graph, k, oracle=self.oracle, params=self.params)
        self.n = graph.n
        rng = make_rng(seed)

        self._sample_levels(rng)
        self._nearby_count = self.params.nearby_landmark_count(max(self.n, 2), self.k)
        # S(u, i) is computed lazily and cached (it is O(n) per query).
        self._nearby_cache: Dict[tuple, List[int]] = {}

    # ------------------------------------------------------------------ #
    # sampling (C_0 ⊇ C_1 ⊇ ... ⊇ C_k = ∅) and ranks
    # ------------------------------------------------------------------ #
    def _sample_levels(self, rng: np.random.Generator) -> None:
        probability = self.params.sampling_probability(max(self.n, 2), self.k)
        levels: List[Set[int]] = [set(range(self.n))]
        for _ in range(1, self.k):
            previous = levels[-1]
            kept = {v for v in previous if rng.random() < probability}
            levels.append(kept)
        levels.append(set())  # C_k = ∅
        self.levels: List[Set[int]] = levels
        self.rank: List[int] = [0] * self.n
        for level_index in range(1, self.k):
            for v in levels[level_index]:
                self.rank[v] = level_index
        # vectorized views used by the hot highest-rank / center queries
        self._rank_array = np.asarray(self.rank, dtype=np.int64)
        self._level_arrays: List[np.ndarray] = [
            np.asarray(sorted(level), dtype=np.int64) for level in levels
        ]

    def level_set(self, i: int) -> Set[int]:
        """``C_i`` (a copy)."""
        require(0 <= i <= self.k, f"level {i} out of range [0, {self.k}]")
        return set(self.levels[i])

    def level_size(self, i: int) -> int:
        """``|C_i|``."""
        require(0 <= i <= self.k, f"level {i} out of range [0, {self.k}]")
        return len(self.levels[i])

    def rank_of(self, v: int) -> int:
        """The rank of node ``v`` — the largest ``i`` with ``v in C_i``."""
        check_index(v, self.n, "v")
        return self.rank[v]

    # ------------------------------------------------------------------ #
    # nearby landmark sets S(u, i)
    # ------------------------------------------------------------------ #
    @property
    def nearby_count(self) -> int:
        """``|S(u, i)|`` — how many nearby landmarks of each level a node tracks."""
        return self._nearby_count

    def nearby_landmarks(self, u: int, i: int) -> List[int]:
        """``S(u, i)``: the closest ``nearby_count`` members of ``C_i`` to ``u``."""
        check_index(u, self.n, "u")
        require(0 <= i <= self.k, f"level {i} out of range [0, {self.k}]")
        key = (u, i)
        if key not in self._nearby_cache:
            members = self.levels[i]
            if not members:
                self._nearby_cache[key] = []
            else:
                self._nearby_cache[key] = self.oracle.nearest(u, self._nearby_count, members)
        return list(self._nearby_cache[key])

    def nearby_union(self, u: int) -> Set[int]:
        """``S(u)``: the union of ``S(u, i)`` over all levels."""
        out: Set[int] = set()
        for i in range(self.k + 1):
            out.update(self.nearby_landmarks(u, i))
        return out

    def serves(self, center: int, u: int) -> bool:
        """Whether ``center in S(u)`` — i.e. ``u`` stores tree-routing state for ``center``."""
        return center in self.nearby_union(u)

    # ------------------------------------------------------------------ #
    # highest rank in a neighborhood and the resulting center
    # ------------------------------------------------------------------ #
    def highest_rank_in(self, u: int, i: int) -> int:
        """``m(u, i)``: the highest rank of any node of ``A(u, i)``."""
        neighborhood = self.decomposition.neighborhood_indices(u, i)
        return int(self._rank_array[neighborhood].max())

    def center(self, u: int, i: int) -> int:
        """``c(u, i)``: the closest node to ``u`` among ``C_{m(u,i)}``.

        Vectorized over the sorted level array: ``argmin`` keeps the first
        occurrence, which is the (distance, node-index) lexicographic winner.
        """
        m = self.highest_rank_in(u, i)
        members = self._level_arrays[m]
        require(members.size > 0, f"no reachable member of C_{m} from node {u}")
        dists = self.oracle.row(u)[members]
        best = int(np.argmin(dists))
        require(bool(np.isfinite(dists[best])),
                f"no reachable member of C_{m} from node {u}")
        return int(members[best])

    # ------------------------------------------------------------------ #
    # empirical verification of Claims 1 and 2
    # ------------------------------------------------------------------ #
    def verify_claims(self, sample_nodes: Optional[Sequence[int]] = None,
                      slack: float = 1.0) -> Dict[str, bool]:
        """Check Claims 1 and 2 on the sampled hierarchy.

        Claim 1: any ball with at least ``4 (ln n)^{(k-j)/k} n^{j/k}`` nodes
        intersects ``C_j``.  Claim 2: any ball with fewer than
        ``4 (ln n)^{(k-(j+1))/k} n^{(j+2)/k}`` nodes contains at most
        ``16 n^{2/k} ln n`` members of ``C_j``.  Both are w.h.p. statements;
        ``slack`` multiplies the allowed constant.
        """
        n = max(self.n, 2)
        lnn = max(math.log(n), 1.0)
        nodes = list(sample_nodes) if sample_nodes is not None else list(range(self.n))
        claim1 = True
        claim2 = True
        exponents = range(0, self.decomposition.max_exp + 1)
        for u in nodes:
            for e in exponents:
                ball = self.decomposition.oracle.ball(
                    u, self.decomposition.radius_of_exponent(e))
                size = len(ball)
                ball_set = set(ball)
                for j in range(0, self.k):
                    threshold1 = 4.0 * (lnn ** ((self.k - j) / self.k)) * (n ** (j / self.k))
                    if size >= threshold1 and not ball_set & self.levels[j]:
                        claim1 = False
                    threshold2 = 4.0 * (lnn ** ((self.k - (j + 1)) / self.k)) * (n ** ((j + 2) / self.k))
                    limit = slack * 16.0 * (n ** (2.0 / self.k)) * lnn
                    if size < threshold2 and len(ball_set & self.levels[j]) > limit:
                        claim2 = False
        return {"claim1": claim1, "claim2": claim2}
