"""Sparse neighborhood routing strategy (Sections 3.1–3.3).

For a sparse level ``i`` of the source ``u`` the scheme routes to the center
``c(u, i)`` (the closest landmark of the highest rank present in ``A(u,i)``)
and performs a ``b(u, i)``-bounded Lemma 4 search on the shortest-path tree
``T(c(u,i))`` that spans every node ``v`` with ``c(u,i) in S(v)``.  Lemma 3
guarantees that every ``v in E(u, i)`` satisfies ``c(u,i) in S(v)``, so the
search succeeds whenever the destination is inside the guarantee ball; a miss
walks back to ``u`` (the error report) and the scheme moves on to the next
level.

Lazy materialization (documented in DESIGN.md §3): the paper charges every
node for the trees of *all* its nearby landmarks ``S(u)``; the reproduction
only materializes trees whose root is actually some node's center ``c(u,i)``
— the only trees routing can ever touch — and charges exactly the
materialized state.  The measured space is therefore a lower bound on the
paper's accounting, which is itself an upper bound.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.construction.context import BuildContext, SPTJob, scalar_build_mode
from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.landmarks import LandmarkHierarchy
from repro.core.params import AGMParams
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.table import TableCollection
from repro.trees.name_independent import NameIndependentTreeRouting
from repro.utils.bitsize import bits_for_count, bits_for_id
from repro.utils.rng import derive_rng
from repro.utils.validation import require


class SparseStrategy:
    """Preprocessed sparse-level routing state for one graph."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        oracle: DistanceOracle,
        decomposition: NeighborhoodDecomposition,
        landmarks: LandmarkHierarchy,
        params: AGMParams,
        tables: TableCollection,
        seed=None,
        context: Optional[BuildContext] = None,
    ) -> None:
        self.graph = graph
        self.k = int(k)
        self.oracle = oracle
        self.decomposition = decomposition
        self.landmarks = landmarks
        self.params = params
        self.tables = tables

        n = graph.n
        self.sigma = max(2, int(math.ceil(n ** (1.0 / self.k)))) if n > 1 else 1

        #: (u, i) -> center c(u, i) for every sparse level
        self.center_of: Dict[Tuple[int, int], int] = {}
        #: (u, i) -> search bound b(u, i)
        self.bound_of: Dict[Tuple[int, int], int] = {}
        #: center -> Lemma 4 structure on T(center)
        self.trees: Dict[int, NameIndependentTreeRouting] = {}

        context = context or BuildContext(graph, oracle=oracle, seed=seed)
        if scalar_build_mode():
            self._build_scalar(seed)
        else:
            self._build(seed, context)

    # ------------------------------------------------------------------ #
    # construction (vectorized)
    # ------------------------------------------------------------------ #
    def _build(self, seed, context: BuildContext) -> None:
        """Array-native build: every per-(node, level) loop of the scalar path
        becomes one masked-matrix operation per streamed row block, and the
        center trees grow as one batched SPT forest."""
        graph, k = self.graph, self.k
        n = graph.n
        decomposition, landmarks = self.decomposition, self.landmarks
        ranges = decomposition.ranges_table()
        dense_tbl = decomposition.dense_table()
        rank = landmarks._rank_array
        level_arrays = landmarks._level_arrays
        d_min = decomposition.d_min

        # 1 + 2 in one streamed pass over the rows: the centers c(u, i) of
        # every sparse level (highest rank in A(u, i), then nearest member of
        # that rank class) and the nearby-landmark memberships c in S(v)
        # (top-``nearby_count`` of each level by (distance, id), realized by
        # one stable argsort per row block).
        nearby = landmarks.nearby_count
        served_v_parts: List[np.ndarray] = []
        served_c_parts: List[np.ndarray] = []
        served_d_parts: List[np.ndarray] = []
        for chunk, rows in self.oracle.iter_row_blocks():
            chunk_arr = np.asarray(chunk, dtype=np.int64)
            for i in range(k + 1):
                sel = np.flatnonzero(~dense_tbl[chunk_arr, i])
                if sel.size:
                    us = chunk_arr[sel]
                    if i == 0:
                        m_vals = rank[us]
                    else:
                        radii = d_min * np.power(2.0, ranges[us, i].astype(float))
                        mask = rows[sel] <= radii[:, None] + 1e-12
                        m_vals = np.where(mask, rank[None, :], -1).max(axis=1)
                    for m in np.unique(m_vals):
                        grp = sel[m_vals == m]
                        members = level_arrays[int(m)]
                        require(members.size > 0,
                                f"no member of C_{int(m)} exists")
                        dists = rows[grp][:, members]
                        best = np.argmin(dists, axis=1)
                        found = dists[np.arange(grp.size), best]
                        require(bool(np.isfinite(found).all()),
                                f"no reachable member of C_{int(m)}")
                        for u, c in zip(chunk_arr[grp].tolist(),
                                        members[best].tolist()):
                            self.center_of[(u, i)] = int(c)
            for i in range(k + 1):
                members = level_arrays[i]
                if members.size == 0:
                    continue
                dists = rows[:, members]
                top = np.argsort(dists, axis=1, kind="stable")[:, :nearby]
                dvals = np.take_along_axis(dists, top, axis=1)
                ids = members[top]
                ok = np.isfinite(dvals)
                rr, cc = np.nonzero(ok)
                served_v_parts.append(chunk_arr[rr])
                served_c_parts.append(ids[rr, cc])
                served_d_parts.append(dvals[rr, cc])
        used_centers = sorted({c for c in self.center_of.values()})
        used_mask = np.zeros(n, dtype=bool)
        used_mask[used_centers] = True

        served_v = np.concatenate(served_v_parts) if served_v_parts \
            else np.zeros(0, dtype=np.int64)
        served_c = np.concatenate(served_c_parts) if served_c_parts \
            else np.zeros(0, dtype=np.int64)
        served_d = np.concatenate(served_d_parts) if served_d_parts \
            else np.zeros(0)
        keep = used_mask[served_c]
        served_v, served_c, served_d = served_v[keep], served_c[keep], served_d[keep]

        # 3. build T(c) for every used center as one batched SPT forest; each
        # job's limit is its farthest served node, so low-rank center trees
        # are local searches
        members_of: Dict[int, Set[int]] = {c: {c} for c in used_centers}
        limit_of: Dict[int, float] = {c: 0.0 for c in used_centers}
        for v, c, d in zip(served_v.tolist(), served_c.tolist(), served_d.tolist()):
            members_of[c].add(v)
            if d > limit_of[c]:
                limit_of[c] = float(d)
        jobs = [SPTJob(c, sorted(members_of[c]), limit_of[c]) for c in used_centers]
        names = graph.names_view()
        for index, (c, tree) in enumerate(zip(used_centers,
                                              context.spt_trees(jobs))):
            tree_names = {v: names[v] for v in tree.nodes}
            self.trees[c] = NameIndependentTreeRouting(
                tree, tree_names, k=k, sigma=self.sigma,
                name_bits=self.params.name_bits,
                seed=derive_rng(seed, 101, index),
            )

        # 4. search bounds b(u, i): one row fetch per *u-sorted* block (each
        # row is fetched once no matter how many levels/centers reference it),
        # with per-center (tree nodes, digits) arrays cached so the E-ball max
        # is a small gather per key instead of an n-sized vector per center
        shrink = self.params.sparse_shrink
        tree_nodes_of: Dict[int, np.ndarray] = {}
        digits_of: Dict[int, np.ndarray] = {}
        for c, routing in self.trees.items():
            nodes_arr = np.asarray(routing.tree.nodes, dtype=np.int64)
            tree_nodes_of[c] = nodes_arr
            digits_of[c] = np.asarray(
                [max(routing.digits_of(v), 1) for v in routing.tree.nodes],
                dtype=np.int64)
        all_keys = sorted(self.center_of)
        for chunk in self.oracle.iter_prefetched_chunks(all_keys,
                                                        source=lambda key: key[0]):
            for u, i in chunk:
                c = self.center_of[(u, i)]
                row = self.oracle.row(u)
                radius = d_min * (2.0 ** float(ranges[u, i + 1])) / shrink
                nodes_arr = tree_nodes_of[c]
                within = row[nodes_arr] <= radius + 1e-12
                bound = int(digits_of[c][within].max(initial=0))
                self.bound_of[(u, i)] = max(bound, 1)

        self._charge_tables()

    # ------------------------------------------------------------------ #
    # construction (scalar reference, REPRO_BUILD_MODE=scalar)
    # ------------------------------------------------------------------ #
    def _build_scalar(self, seed) -> None:
        graph, k = self.graph, self.k
        # 1. centers actually used by some (node, sparse level) pair
        used_centers: Set[int] = set()
        for chunk in self.oracle.iter_prefetched_chunks(range(graph.n)):
            for u in chunk:
                for i in range(k + 1):
                    if self.decomposition.is_sparse(u, i):
                        c = self.landmarks.center(u, i)
                        self.center_of[(u, i)] = c
                        used_centers.add(c)

        # 2. which nodes each center serves: v is served by c iff c in S(v)
        served_by: Dict[int, Set[int]] = defaultdict(set)
        for chunk in self.oracle.iter_prefetched_chunks(range(graph.n)):
            for v in chunk:
                for c in self.landmarks.nearby_union(v):
                    if c in used_centers:
                        served_by[c].add(v)

        # 3. build T(c) and its Lemma 4 routing structure for every used center
        names = graph.names_view()
        for index, c in enumerate(sorted(used_centers)):
            members = served_by[c] | {c}
            tree = shortest_path_tree(graph, c, members=sorted(members))
            tree_names = {v: names[v] for v in tree.nodes}
            self.trees[c] = NameIndependentTreeRouting(
                tree, tree_names, k=k, sigma=self.sigma,
                name_bits=self.params.name_bits,
                seed=derive_rng(seed, 101, index),
            )

        # 4. search bounds b(u, i): the minimal j-bounded search that covers
        # E(u, i).  Grouped per center: one transient digit vector (0 outside
        # the tree) turns required_bound into a gather + max over the ball
        # index array, without holding a vector per tree alive at once.
        by_center: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for key, c in self.center_of.items():
            by_center[c].append(key)
        vector = np.zeros(graph.n, dtype=np.int64)
        for c, keys in by_center.items():
            routing = self.trees[c]
            vector[:] = 0
            for v in routing.tree.nodes:
                vector[v] = max(routing.digits_of(v), 1)
            for chunk in self.oracle.iter_prefetched_chunks(keys, source=lambda key: key[0]):
                for u, i in chunk:
                    ball = self.decomposition.e_ball_indices(u, i)
                    bound = int(vector[ball].max(initial=0)) if ball.size else 0
                    self.bound_of[(u, i)] = max(bound, 1)

        self._charge_tables()

    def _charge_tables(self) -> None:
        # 5. storage accounting
        idbits = bits_for_id(max(self.graph.n, 2))
        self.tables.charge_structures(
            "sparse_tree_tables",
            ((r.tree.nodes, r.table_bits_list()) for r in self.trees.values()))
        for (u, i), c in self.center_of.items():
            level_bits = idbits + bits_for_count(max(routing_max_digits(self.trees[c]), 1))
            self.tables[u].charge("sparse_level_pointers", level_bits)

    # ------------------------------------------------------------------ #
    # queries used by the scheme and by tests
    # ------------------------------------------------------------------ #
    def is_applicable(self, u: int, i: int) -> bool:
        """Whether level ``i`` of node ``u`` is handled by this strategy."""
        return (u, i) in self.center_of

    def center(self, u: int, i: int) -> int:
        """``c(u, i)``."""
        return self.center_of[(u, i)]

    def bound(self, u: int, i: int) -> int:
        """``b(u, i)``."""
        return self.bound_of[(u, i)]

    def tree_of_center(self, c: int) -> NameIndependentTreeRouting:
        """The Lemma 4 structure of center ``c``."""
        return self.trees[c]

    def max_header_bits(self) -> int:
        """Largest sub-header any sparse-level tree search may need."""
        return max((t.header_bits() for t in self.trees.values()), default=0)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, u: int, i: int, target_name: Hashable
              ) -> Tuple[List[int], float, bool, Optional[int]]:
        """Execute the sparse strategy for level ``i`` from node ``u``.

        Returns ``(walk, cost, found, destination)``; the walk starts at ``u``
        and, when the destination is not found, ends back at ``u``.
        """
        require((u, i) in self.center_of, f"level {i} is not sparse for node {u}")
        c = self.center_of[(u, i)]
        routing = self.trees[c]
        tree = routing.tree
        if not tree.contains(u):
            # Cannot happen when c = c(u,i) (the center is always in S(u));
            # kept as a defensive no-op so routing degrades to the next level.
            return [u], 0.0, False, None

        walk: List[int] = [u]
        cost = 0.0

        # leg 1: climb T(c) from u to the root c
        up = tree.path(u, c)
        walk, cost = _extend_walk(walk, cost, up, tree)

        # leg 2: b(u,i)-bounded search from the root
        search = routing.search_from_root(target_name, j_bound=self.bound_of[(u, i)])
        walk, cost = _extend_walk(walk, cost, search.path, tree)
        if search.found:
            return walk, cost, True, search.destination

        # leg 3: negative response — return to u and let the scheme try level i+1
        down = tree.path(c, u)
        walk, cost = _extend_walk(walk, cost, down, tree)
        return walk, cost, False, None

    def plan_route(self, u: int, i: int, target_name: Hashable
                   ) -> Tuple[Optional[NameIndependentTreeRouting], List[int], bool]:
        """The waypoints of :meth:`route` without performing the walk.

        Returns ``(routing, targets, found)``; ``targets`` lists the tree
        nodes the walk heads for in order (the center, then the bounded
        search's waypoints, then back to ``u`` on a miss) inside
        ``routing``'s tree.  ``routing`` is ``None`` when the level cannot
        walk at all (the same defensive case :meth:`route` degrades on).
        """
        require((u, i) in self.center_of, f"level {i} is not sparse for node {u}")
        c = self.center_of[(u, i)]
        routing = self.trees[c]
        if not routing.tree.contains(u):
            return None, [], False
        targets = [c]
        search_targets, found, _ = routing.plan_search_from_root(
            target_name, j_bound=self.bound_of[(u, i)])
        targets.extend(search_targets)
        if not found:
            targets.append(u)
        return routing, targets, found


def routing_max_digits(routing: NameIndependentTreeRouting) -> int:
    """Maximum primary-name length of a Lemma 4 structure (helper for accounting)."""
    return max(routing.max_digits, 1)


def _extend_walk(walk: List[int], cost: float, segment: List[int], tree
                 ) -> Tuple[List[int], float]:
    """Append ``segment`` (a tree walk) to ``walk``, accumulating tree edge costs."""
    if not segment:
        return walk, cost
    if walk and segment[0] == walk[-1]:
        segment = segment[1:]
    for node in segment:
        prev = walk[-1]
        if node != prev:
            cost += _tree_edge_weight(tree, prev, node)
        walk.append(node)
    return walk, cost


def _tree_edge_weight(tree, a: int, b: int) -> float:
    if tree.parent.get(a) == b:
        return tree.edge_weight[a]
    if tree.parent.get(b) == a:
        return tree.edge_weight[b]
    raise RuntimeError(f"({a}, {b}) is not an edge of the sparse-strategy tree")
