"""Sparse neighborhood routing strategy (Sections 3.1–3.3).

For a sparse level ``i`` of the source ``u`` the scheme routes to the center
``c(u, i)`` (the closest landmark of the highest rank present in ``A(u,i)``)
and performs a ``b(u, i)``-bounded Lemma 4 search on the shortest-path tree
``T(c(u,i))`` that spans every node ``v`` with ``c(u,i) in S(v)``.  Lemma 3
guarantees that every ``v in E(u, i)`` satisfies ``c(u,i) in S(v)``, so the
search succeeds whenever the destination is inside the guarantee ball; a miss
walks back to ``u`` (the error report) and the scheme moves on to the next
level.

Lazy materialization (documented in DESIGN.md §3): the paper charges every
node for the trees of *all* its nearby landmarks ``S(u)``; the reproduction
only materializes trees whose root is actually some node's center ``c(u,i)``
— the only trees routing can ever touch — and charges exactly the
materialized state.  The measured space is therefore a lower bound on the
paper's accounting, which is itself an upper bound.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.construction.context import (BuildContext, SPTJob,
                                        limited_dijkstra, scalar_build_mode)
from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.landmarks import LandmarkHierarchy
from repro.core.params import AGMParams
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, shortest_path_tree
from repro.routing.table import TableCollection
from repro.trees.name_independent import NameIndependentTreeRouting
from repro.utils.bitsize import bits_for_count, bits_for_id
from repro.utils.rng import derive_rng
from repro.utils.validation import require


class SparseStrategy:
    """Preprocessed sparse-level routing state for one graph."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        oracle: DistanceOracle,
        decomposition: NeighborhoodDecomposition,
        landmarks: LandmarkHierarchy,
        params: AGMParams,
        tables: TableCollection,
        seed=None,
        context: Optional[BuildContext] = None,
    ) -> None:
        self.graph = graph
        self.k = int(k)
        self.oracle = oracle
        self.decomposition = decomposition
        self.landmarks = landmarks
        self.params = params
        self.tables = tables

        n = graph.n
        self.sigma = max(2, int(math.ceil(n ** (1.0 / self.k)))) if n > 1 else 1

        #: (u, i) -> center c(u, i) for every sparse level
        self.center_of: Dict[Tuple[int, int], int] = {}
        #: (u, i) -> search bound b(u, i)
        self.bound_of: Dict[Tuple[int, int], int] = {}
        #: center -> Lemma 4 structure on T(center)
        self.trees: Dict[int, NameIndependentTreeRouting] = {}

        context = context or BuildContext(graph, oracle=oracle, seed=seed)
        if scalar_build_mode():
            self._build_scalar(seed)
        else:
            self._build(seed, context)

    # ------------------------------------------------------------------ #
    # construction (vectorized)
    # ------------------------------------------------------------------ #
    def _build(self, seed, context: BuildContext) -> None:
        """Array-native build: every per-(node, level) loop of the scalar path
        becomes one masked-matrix operation, and the center trees grow as one
        batched SPT forest.

        Unlike the original streamed version, no pass here sweeps all ``n``
        rows unless it truly has to:

        * centers come from per-level nearest-member tables (``|C_j|`` rows
          per landmark level instead of ``n``) — the highest rank present in
          ``A(u, i)`` is the largest ``j`` whose nearest ``C_j`` member sits
          within the level radius, because the level sets are nested;
        * a level ``j`` with ``|C_j| <= nearby_count`` is *degenerate*:
          ``S(v, j)`` keeps every reachable member, so a used center whose
          top rank class is that small serves exactly its connected
          component and needs no membership scan at all.  At the paper
          constants every level is degenerate for realistic ``n`` (see
          ``AGMParams``), which deletes the quadratic membership pass;
        * the search-bound pass only fetches a distance row when the
          E-radius cannot already be certified to cover the whole tree by
          the triangle inequality — and then only a radius-limited row.
        """
        graph, k = self.graph, self.k
        n = graph.n
        decomposition, landmarks = self.decomposition, self.landmarks
        ranges = decomposition.ranges_table()
        dense_tbl = decomposition.dense_table()
        rank = landmarks._rank_array
        level_arrays = landmarks._level_arrays
        d_min = decomposition.d_min
        nearby = landmarks.nearby_count

        # 1. centers c(u, i) for every sparse level, sweep-free.  For each
        # nonempty level j >= 1 the oracle's nearest_member table gives every
        # node its closest C_j member (smallest id on ties — the same
        # tie-break as the row argmin it replaces); level 0's table is the
        # identity (every node is its own nearest C_0 member at distance 0).
        near_ids: Dict[int, np.ndarray] = {0: np.arange(n, dtype=np.int64)}
        near_d: Dict[int, np.ndarray] = {0: np.zeros(n)}
        for j in range(1, k + 1):
            if level_arrays[j].size:
                ids_j, d_j = self.oracle.nearest_member(level_arrays[j])
                near_ids[j], near_d[j] = ids_j.astype(np.int64), d_j
        for i in range(k + 1):
            sel = np.flatnonzero(~dense_tbl[:, i])
            if sel.size == 0:
                continue
            if i == 0:
                m_vals = rank[sel].astype(np.int64)
            else:
                radii = d_min * np.power(2.0, ranges[sel, i].astype(float))
                m_vals = np.zeros(sel.size, dtype=np.int64)  # u covers j=0
                for j in sorted(near_d):
                    if j == 0:
                        continue
                    hit = near_d[j][sel] <= radii + 1e-12
                    m_vals[hit] = j   # ascending j: the last hit is the max
            centers = np.empty(sel.size, dtype=np.int64)
            for m in np.unique(m_vals):
                require(int(m) in near_ids and level_arrays[int(m)].size > 0,
                        f"no member of C_{int(m)} exists")
                grp = m_vals == m
                centers[grp] = near_ids[int(m)][sel[grp]]
                require(bool(np.isfinite(near_d[int(m)][sel[grp]]).all()),
                        f"no reachable member of C_{int(m)}")
            for u, c in zip(sel.tolist(), centers.tolist()):
                self.center_of[(u, int(i))] = int(c)

        used_centers = sorted({c for c in self.center_of.values()})
        used_mask = np.zeros(n, dtype=bool)
        used_mask[used_centers] = True

        # 2. which nodes each used center serves.  A used center whose own
        # rank class is degenerate (|C_rank| <= nearby, so every applicable
        # S(v, rank) keeps all reachable members) serves its whole connected
        # component; only the remaining centers need the streamed
        # top-``nearby`` membership scan, and only the levels small enough
        # to be selective are scanned.
        level_sizes = [arr.size for arr in level_arrays]
        comp_ids = graph.component_ids()
        members_of: Dict[int, Set[int]] = {}
        limit_of: Dict[int, Optional[float]] = {}
        sweep_mask = np.zeros(n, dtype=bool)
        for c in used_centers:
            if level_sizes[int(rank[c])] <= nearby:
                comp = np.flatnonzero(comp_ids == comp_ids[c])
                members_of[c] = set(comp.tolist())
                members_of[c].add(c)
                limit_of[c] = None
            else:
                members_of[c] = {c}
                limit_of[c] = 0.0
                sweep_mask[c] = True
        sweep_levels = [j for j in range(k + 1)
                        if level_sizes[j] > nearby
                        and bool(sweep_mask[level_arrays[j]].any())]
        if sweep_levels:
            for chunk, rows in self.oracle.iter_row_blocks():
                chunk_arr = np.asarray(chunk, dtype=np.int64)
                for j in sweep_levels:
                    members = level_arrays[j]
                    dists = rows[:, members]
                    top = np.argsort(dists, axis=1, kind="stable")[:, :nearby]
                    dvals = np.take_along_axis(dists, top, axis=1)
                    ids = members[top]
                    ok = np.isfinite(dvals) & sweep_mask[ids]
                    rr, cc = np.nonzero(ok)
                    for v, c, d in zip(chunk_arr[rr].tolist(),
                                       ids[rr, cc].tolist(),
                                       dvals[rr, cc].tolist()):
                        members_of[c].add(v)
                        if d > limit_of[c]:
                            limit_of[c] = float(d)

        # 3. build T(c) for every used center as one batched SPT forest; each
        # scanned center's limit is its farthest served node, so low-rank
        # center trees are local searches (component centers span everything
        # reachable, so they run unlimited)
        jobs = [SPTJob(c, sorted(members_of[c]), limit_of[c]) for c in used_centers]
        names = graph.names_view()
        for index, (c, tree) in enumerate(zip(used_centers,
                                              context.spt_trees(jobs))):
            tree_names = {v: names[v] for v in tree.nodes}
            self.trees[c] = NameIndependentTreeRouting(
                tree, tree_names, k=k, sigma=self.sigma,
                name_bits=self.params.name_bits,
                seed=derive_rng(seed, 101, index),
            )

        # 4. search bounds b(u, i): when the E-radius provably reaches past
        # the whole tree (d(u, c) + the tree's max depth, with a generous
        # float margin), the bound is the tree-wide digit max and no row is
        # touched; otherwise a radius-limited row (exact within the radius,
        # inf beyond — both sides of the <= radius test unchanged) feeds the
        # same masked gather as before
        shrink = self.params.sparse_shrink
        tree_nodes_of: Dict[int, np.ndarray] = {}
        digits_of: Dict[int, np.ndarray] = {}
        depth_of: Dict[int, Dict[int, float]] = {}
        max_depth_of: Dict[int, float] = {}
        max_digit_of: Dict[int, int] = {}
        for c, routing in self.trees.items():
            nodes_arr = np.asarray(routing.tree.nodes, dtype=np.int64)
            tree_nodes_of[c] = nodes_arr
            digits_of[c] = np.asarray(
                [max(routing.digits_of(v), 1) for v in routing.tree.nodes],
                dtype=np.int64)
            max_digit_of[c] = int(digits_of[c].max(initial=0))
            depth_of[c] = routing.tree.depth
            max_depth_of[c] = max(routing.tree.depth.values(), default=0.0)
        slow_keys: List[Tuple[int, int]] = []
        for u, i in sorted(self.center_of):
            c = self.center_of[(u, i)]
            radius = d_min * (2.0 ** float(ranges[u, i + 1])) / shrink
            reach = depth_of[c].get(u)
            if reach is not None and \
                    radius >= (reach + max_depth_of[c]) * (1 + 1e-9) + 1e-9:
                self.bound_of[(u, i)] = max(max_digit_of[c], 1)
            else:
                slow_keys.append((u, i))
        if slow_keys:
            radius_of = {
                key: d_min * (2.0 ** float(ranges[key[0], key[1] + 1])) / shrink
                for key in slow_keys}
            by_u: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
            for key in slow_keys:
                by_u[key[0]].append(key)
            u_limit = {u: max(radius_of[key] for key in keys)
                       for u, keys in by_u.items()}
            order = sorted(by_u, key=lambda u: (u_limit[u], u))
            csr = graph.to_scipy_csr()
            block = self.oracle.block_rows()
            for start in range(0, len(order), block):
                batch = order[start:start + block]
                limit = max(u_limit[u] for u in batch)
                rows = limited_dijkstra(csr, batch, limit)
                for local, u in enumerate(batch):
                    row = rows[local]
                    for key in by_u[u]:
                        c = self.center_of[key]
                        nodes_arr = tree_nodes_of[c]
                        within = row[nodes_arr] <= radius_of[key] + 1e-12
                        bound = int(digits_of[c][within].max(initial=0))
                        self.bound_of[key] = max(bound, 1)

        self._charge_tables()

    # ------------------------------------------------------------------ #
    # construction (scalar reference, REPRO_BUILD_MODE=scalar)
    # ------------------------------------------------------------------ #
    def _build_scalar(self, seed) -> None:
        graph, k = self.graph, self.k
        # 1. centers actually used by some (node, sparse level) pair
        used_centers: Set[int] = set()
        for chunk in self.oracle.iter_prefetched_chunks(range(graph.n)):
            for u in chunk:
                for i in range(k + 1):
                    if self.decomposition.is_sparse(u, i):
                        c = self.landmarks.center(u, i)
                        self.center_of[(u, i)] = c
                        used_centers.add(c)

        # 2. which nodes each center serves: v is served by c iff c in S(v)
        served_by: Dict[int, Set[int]] = defaultdict(set)
        for chunk in self.oracle.iter_prefetched_chunks(range(graph.n)):
            for v in chunk:
                for c in self.landmarks.nearby_union(v):
                    if c in used_centers:
                        served_by[c].add(v)

        # 3. build T(c) and its Lemma 4 routing structure for every used center
        names = graph.names_view()
        for index, c in enumerate(sorted(used_centers)):
            members = served_by[c] | {c}
            tree = shortest_path_tree(graph, c, members=sorted(members))
            tree_names = {v: names[v] for v in tree.nodes}
            self.trees[c] = NameIndependentTreeRouting(
                tree, tree_names, k=k, sigma=self.sigma,
                name_bits=self.params.name_bits,
                seed=derive_rng(seed, 101, index),
            )

        # 4. search bounds b(u, i): the minimal j-bounded search that covers
        # E(u, i).  Grouped per center: one transient digit vector (0 outside
        # the tree) turns required_bound into a gather + max over the ball
        # index array, without holding a vector per tree alive at once.
        by_center: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for key, c in self.center_of.items():
            by_center[c].append(key)
        vector = np.zeros(graph.n, dtype=np.int64)
        for c, keys in by_center.items():
            routing = self.trees[c]
            vector[:] = 0
            for v in routing.tree.nodes:
                vector[v] = max(routing.digits_of(v), 1)
            for chunk in self.oracle.iter_prefetched_chunks(keys, source=lambda key: key[0]):
                for u, i in chunk:
                    ball = self.decomposition.e_ball_indices(u, i)
                    bound = int(vector[ball].max(initial=0)) if ball.size else 0
                    self.bound_of[(u, i)] = max(bound, 1)

        self._charge_tables()

    def _charge_tables(self) -> None:
        # 5. storage accounting
        idbits = bits_for_id(max(self.graph.n, 2))
        self.tables.charge_structures(
            "sparse_tree_tables",
            ((r.tree.nodes, r.table_bits_list()) for r in self.trees.values()))
        for (u, i), c in self.center_of.items():
            level_bits = idbits + bits_for_count(max(routing_max_digits(self.trees[c]), 1))
            self.tables[u].charge("sparse_level_pointers", level_bits)

    # ------------------------------------------------------------------ #
    # queries used by the scheme and by tests
    # ------------------------------------------------------------------ #
    def is_applicable(self, u: int, i: int) -> bool:
        """Whether level ``i`` of node ``u`` is handled by this strategy."""
        return (u, i) in self.center_of

    def center(self, u: int, i: int) -> int:
        """``c(u, i)``."""
        return self.center_of[(u, i)]

    def bound(self, u: int, i: int) -> int:
        """``b(u, i)``."""
        return self.bound_of[(u, i)]

    def tree_of_center(self, c: int) -> NameIndependentTreeRouting:
        """The Lemma 4 structure of center ``c``."""
        return self.trees[c]

    def max_header_bits(self) -> int:
        """Largest sub-header any sparse-level tree search may need."""
        return max((t.header_bits() for t in self.trees.values()), default=0)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, u: int, i: int, target_name: Hashable
              ) -> Tuple[List[int], float, bool, Optional[int]]:
        """Execute the sparse strategy for level ``i`` from node ``u``.

        Returns ``(walk, cost, found, destination)``; the walk starts at ``u``
        and, when the destination is not found, ends back at ``u``.
        """
        require((u, i) in self.center_of, f"level {i} is not sparse for node {u}")
        c = self.center_of[(u, i)]
        routing = self.trees[c]
        tree = routing.tree
        if not tree.contains(u):
            # Cannot happen when c = c(u,i) (the center is always in S(u));
            # kept as a defensive no-op so routing degrades to the next level.
            return [u], 0.0, False, None

        walk: List[int] = [u]
        cost = 0.0

        # leg 1: climb T(c) from u to the root c
        up = tree.path(u, c)
        walk, cost = _extend_walk(walk, cost, up, tree)

        # leg 2: b(u,i)-bounded search from the root
        search = routing.search_from_root(target_name, j_bound=self.bound_of[(u, i)])
        walk, cost = _extend_walk(walk, cost, search.path, tree)
        if search.found:
            return walk, cost, True, search.destination

        # leg 3: negative response — return to u and let the scheme try level i+1
        down = tree.path(c, u)
        walk, cost = _extend_walk(walk, cost, down, tree)
        return walk, cost, False, None

    def plan_route(self, u: int, i: int, target_name: Hashable
                   ) -> Tuple[Optional[NameIndependentTreeRouting], List[int], bool]:
        """The waypoints of :meth:`route` without performing the walk.

        Returns ``(routing, targets, found)``; ``targets`` lists the tree
        nodes the walk heads for in order (the center, then the bounded
        search's waypoints, then back to ``u`` on a miss) inside
        ``routing``'s tree.  ``routing`` is ``None`` when the level cannot
        walk at all (the same defensive case :meth:`route` degrades on).
        """
        require((u, i) in self.center_of, f"level {i} is not sparse for node {u}")
        c = self.center_of[(u, i)]
        routing = self.trees[c]
        if not routing.tree.contains(u):
            return None, [], False
        targets = [c]
        search_targets, found, _ = routing.plan_search_from_root(
            target_name, j_bound=self.bound_of[(u, i)])
        targets.extend(search_targets)
        if not found:
            targets.append(u)
        return routing, targets, found


def routing_max_digits(routing: NameIndependentTreeRouting) -> int:
    """Maximum primary-name length of a Lemma 4 structure (helper for accounting)."""
    return max(routing.max_digits, 1)


def _extend_walk(walk: List[int], cost: float, segment: List[int], tree
                 ) -> Tuple[List[int], float]:
    """Append ``segment`` (a tree walk) to ``walk``, accumulating tree edge costs."""
    if not segment:
        return walk, cost
    if walk and segment[0] == walk[-1]:
        segment = segment[1:]
    for node in segment:
        prev = walk[-1]
        if node != prev:
            cost += _tree_edge_weight(tree, prev, node)
        walk.append(node)
    return walk, cost


def _tree_edge_weight(tree, a: int, b: int) -> float:
    if tree.parent.get(a) == b:
        return tree.edge_weight[a]
    if tree.parent.get(b) == a:
        return tree.edge_weight[b]
    raise RuntimeError(f"({a}, {b}) is not an edge of the sparse-strategy tree")
