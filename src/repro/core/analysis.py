"""Theoretical bounds of the paper, as evaluable functions.

The benches print the measured quantity next to the corresponding bound so
that EXPERIMENTS.md can record paper-vs-measured for every claim.  All
"bounds" are asymptotic, so each function exposes its constant factor as a
parameter; defaults are the constants that appear (explicitly or implicitly)
in the paper's lemmas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


def theorem1_table_bits(n: int, k: int, constant: float = 1.0) -> float:
    """Theorem 1's table bound ``O(k^2 n^{1/k} log^3 n)`` (statement version)."""
    logn = max(math.log2(max(n, 2)), 1.0)
    return constant * (k ** 2) * (n ** (1.0 / k)) * (logn ** 3)


def lemma11_table_bits(n: int, k: int, constant: float = 1.0) -> float:
    """Lemma 11's sparse-strategy storage ``O(k^2 n^{3/k} log^3 n)``.

    Note: the paper's Theorem 1 statement says ``n^{1/k}`` while its own proof
    (via Lemma 11) derives ``n^{3/k}``; the reproduction reports both so the
    discrepancy is visible (see EXPERIMENTS.md).
    """
    logn = max(math.log2(max(n, 2)), 1.0)
    return constant * (k ** 2) * (n ** (3.0 / k)) * (logn ** 3)


def stretch_bound(k: int, constant: float = 1.0) -> float:
    """The linear stretch bound ``O(k)``."""
    return constant * k


def exponential_stretch_bound(k: int, constant: float = 1.0) -> float:
    """The prior scale-free schemes' stretch ``O(2^k)`` (what the paper improves on)."""
    return constant * (2.0 ** k)


def lemma4_table_bits(n: int, k: int, constant: float = 1.0) -> float:
    """Lemma 4 per-node storage ``O(k n^{1/k} log^2 n)``."""
    logn = max(math.log2(max(n, 2)), 1.0)
    return constant * k * (n ** (1.0 / k)) * (logn ** 2)


def lemma5_table_bits(m: int, k: int, constant: float = 1.0) -> float:
    """Lemma 5 per-node storage ``O(m^{1/k} log m)``."""
    logm = max(math.log2(max(m, 2)), 1.0)
    return constant * (m ** (1.0 / k)) * logm


def lemma5_label_bits(m: int, k: int, constant: float = 1.0) -> float:
    """Lemma 5 label size ``O(k log m)``."""
    logm = max(math.log2(max(m, 2)), 1.0)
    return constant * k * logm


def lemma6_membership(n: int, k: int, constant: float = 2.0) -> float:
    """Lemma 6 sparsity: every node is in at most ``2 k n^{1/k}`` cover trees."""
    return constant * k * (n ** (1.0 / k))


def lemma6_radius(rho: float, k: int, constant: float = 2.0) -> float:
    """Lemma 6 radius bound ``(2k - 1) rho`` (the implementation achieves ``(2k+3) rho``)."""
    return (constant * k + 3) * rho


def lemma7_route_bound(radius: float, max_edge: float, k: int,
                       constant: float = 4.0) -> float:
    """Lemma 7 route-length bound ``4 rad(T) + 2 k maxE(T)``."""
    return constant * radius + 2.0 * k * max_edge


@dataclass
class ScalingFit:
    """Least-squares fit of ``y ~ c * x^alpha`` on log-log scale."""

    exponent: float
    constant: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> ScalingFit:
    """Fit a power law through (xs, ys); used to check measured scaling exponents."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    mask = (xs > 0) & (ys > 0)
    xs, ys = xs[mask], ys[mask]
    if xs.size < 2:
        return ScalingFit(exponent=0.0, constant=float(ys[0]) if ys.size else 0.0, r_squared=1.0)
    lx, ly = np.log(xs), np.log(ys)
    slope, intercept = np.polyfit(lx, ly, 1)
    pred = slope * lx + intercept
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - np.mean(ly)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ScalingFit(exponent=float(slope), constant=float(math.exp(intercept)), r_squared=r2)


def growth_ratio(values: Sequence[float]) -> List[float]:
    """Successive ratios ``values[i+1] / values[i]`` (diagnostic for linear-vs-exponential growth)."""
    out = []
    for a, b in zip(values, values[1:]):
        out.append(b / a if a > 0 else float("inf"))
    return out
