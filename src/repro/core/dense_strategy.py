"""Dense neighborhood routing strategy (Sections 3.4–3.6).

For a dense level ``i`` of the source ``u`` (the population multiplies within
a constant radius blow-up), the scheme uses tree covers of bounded radius.
The crucial scale-free twist is that the cover at radius ``2^j`` is built
**only on the subgraph** ``G_j`` induced by the nodes whose extended range
set ``R(·)`` contains ``j`` — Lemma 2 shows that for a dense level the whole
guarantee ball ``F(u,i) = B(u, 2^{a(u,i)-1})`` lies inside ``G_{a(u,i)}``, so
routing on a cover tree of ``G_{a(u,i)}`` finds it.  Because ``|R(v)| = O(k)``
for every node, each node participates in only ``O(k)`` covers no matter how
large the aspect ratio is.

Each cover tree carries the Lemma 7 name-independent dictionary so that a
lookup costs ``O(rad(T))`` and reports misses back to the source.

Lazy materialization (DESIGN.md §3): covers are only built for exponents that
are the range ``a(u,i)`` of some dense level actually present in the graph;
other exponents of ``R(u)`` can never be the target of a dense-level search.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

import numpy as np

from repro.construction.context import BuildContext
from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.params import AGMParams
from repro.covers.tree_cover import TreeCover, build_tree_cover
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, exact_distance_oracle
from repro.graphs.trees import Tree
from repro.routing.table import TableCollection
from repro.trees.error_reporting import DictionaryTreeRouting
from repro.utils.bitsize import bits_for_count, bits_for_id
from repro.utils.rng import derive_rng
from repro.utils.validation import require


def translate_tree(tree: Tree, mapping: List[int]) -> Tree:
    """Map a tree over subgraph-local indices back to global node indices."""
    parent = {mapping[c]: mapping[p] for c, p in tree.parent.items()}
    weights = {mapping[c]: w for c, w in tree.edge_weight.items()}
    return Tree(root=mapping[tree.root], parent=parent, edge_weight=weights)


class DenseStrategy:
    """Preprocessed dense-level routing state for one graph."""

    def __init__(
        self,
        graph: WeightedGraph,
        k: int,
        oracle: DistanceOracle,
        decomposition: NeighborhoodDecomposition,
        params: AGMParams,
        tables: TableCollection,
        seed=None,
        context: Optional[BuildContext] = None,
    ) -> None:
        self.graph = graph
        self.k = int(k)
        self.oracle = oracle
        self.decomposition = decomposition
        self.params = params
        self.tables = tables

        #: exponent j -> list of Lemma 7 structures (one per cover tree of G_j)
        self.covers: Dict[int, List[DictionaryTreeRouting]] = {}
        #: exponent j -> {global node -> index of its home tree in covers[j]}
        self.home_index: Dict[int, Dict[int, int]] = {}
        #: (u, i) -> exponent a(u, i) for every dense level
        self.exponent_of: Dict[Tuple[int, int], int] = {}

        self._build(seed, context or BuildContext(graph, oracle=oracle, seed=seed))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, seed, context: BuildContext) -> None:
        graph, k = self.graph, self.k

        # 1. which exponents are the range of some dense level
        needed: Set[int] = set()
        for u in range(graph.n):
            for i in range(k + 1):
                if self.decomposition.is_dense(u, i):
                    j = self.decomposition.range(u, i)
                    self.exponent_of[(u, i)] = j
                    needed.add(j)
        if not needed:
            return

        # 2. the extended-range populations V_j = { v : j in R(v) }
        members = self.decomposition.extended_range_members()

        # 3. one tree cover per needed exponent, built on the induced subgraph
        # G_j.  Exponents are independent build units, so they fan out over
        # the context's workers; seeds derive from the exponent's position in
        # the sorted order, keeping parallel output bit-identical to serial.
        names = graph.names_view()

        def build_exponent(item):
            count, j = item
            population = members.get(j, [])
            if not population:
                return j, None, None
            subgraph, mapping = graph.subgraph(population)
            # large G_j subgraphs use the lazy backend outright: the cover
            # build consumes one radius-limited ball pass plus local cluster
            # trees, so a full subgraph APSP matrix would mostly go unread.
            # The configured dense-node limit still caps it from below, so a
            # memory-tight REPRO_DENSE_NODE_LIMIT is honored here too.
            from repro.graphs.backends import dense_node_limit
            from repro.graphs.shortest_paths import DistanceOracle

            sub_backend = "lazy" if subgraph.n > min(2048, dense_node_limit()) \
                else None
            sub_oracle = exact_distance_oracle(
                subgraph, DistanceOracle(subgraph, backend=sub_backend))
            sub_context = BuildContext(subgraph, oracle=sub_oracle, seed=seed)
            rho = self.decomposition.radius_of_exponent(j)
            cover: TreeCover = build_tree_cover(subgraph, k, rho, oracle=sub_oracle,
                                                context=sub_context)
            routings: List[DictionaryTreeRouting] = []
            for t_index, local_tree in enumerate(cover.trees):
                global_tree = translate_tree(local_tree, mapping)
                tree_names = {v: names[v] for v in global_tree.nodes}
                routings.append(DictionaryTreeRouting(
                    global_tree, tree_names, name_bits=self.params.name_bits,
                    seed=derive_rng(seed, 202, count, t_index)))
            home = {mapping[local]: idx for local, idx in cover.home.items()}
            return j, routings, home

        for j, routings, home in context.map(build_exponent,
                                             list(enumerate(sorted(needed)))):
            if routings is None:
                continue
            self.covers[j] = routings
            self.home_index[j] = home

        # 4. storage accounting
        idbits = bits_for_id(max(graph.n, 2))
        self.tables.charge_structures(
            "dense_tree_tables",
            ((routing.tree.nodes, routing.table_bits_list())
             for routings in self.covers.values() for routing in routings))
        exponent_bits = bits_for_count(self.decomposition.top_exp + 1)
        for (u, i), j in self.exponent_of.items():
            # the node records the exponent and the root w(u, i) of its home tree
            self.tables[u].charge("dense_level_pointers", exponent_bits + idbits)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def is_applicable(self, u: int, i: int) -> bool:
        """Whether level ``i`` of node ``u`` is handled by this strategy."""
        if (u, i) not in self.exponent_of:
            return False
        j = self.exponent_of[(u, i)]
        return j in self.home_index and u in self.home_index[j]

    def home_tree_routing(self, u: int, i: int) -> DictionaryTreeRouting:
        """The Lemma 7 structure of ``W(u, i)`` (the tree covering ``B(u, 2^{a(u,i)})``)."""
        j = self.exponent_of[(u, i)]
        return self.covers[j][self.home_index[j][u]]

    def root(self, u: int, i: int) -> int:
        """``w(u, i)``: the root of ``W(u, i)``."""
        return self.home_tree_routing(u, i).tree.root

    def max_header_bits(self) -> int:
        """Largest sub-header any dense-level lookup may need."""
        return max((r.header_bits() for routings in self.covers.values() for r in routings),
                   default=0)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, u: int, i: int, target_name: Hashable
              ) -> Tuple[List[int], float, bool, Optional[int]]:
        """Execute the dense strategy for level ``i`` from node ``u``.

        Returns ``(walk, cost, found, destination)``; the walk starts at ``u``
        and, when the destination is not found, ends back at ``u``.
        """
        require((u, i) in self.exponent_of, f"level {i} is not dense for node {u}")
        if not self.is_applicable(u, i):
            return [u], 0.0, False, None
        routing = self.home_tree_routing(u, i)
        result = routing.lookup(u, target_name)
        return list(result.path), result.cost, result.found, result.destination

    def plan_route(self, u: int, i: int, target_name: Hashable
                   ) -> Tuple[Optional[DictionaryTreeRouting], List[int], bool]:
        """The waypoints of :meth:`route` without performing the walk.

        Returns ``(routing, targets, found)``: the Lemma 7 lookup waypoints
        (root, responsible node, then destination or back to ``u``) inside the
        home tree of level ``i``, or ``(None, [], False)`` when the level is
        inapplicable — the same case :meth:`route` degrades on.
        """
        require((u, i) in self.exponent_of, f"level {i} is not dense for node {u}")
        if not self.is_applicable(u, i):
            return None, [], False
        routing = self.home_tree_routing(u, i)
        targets, found, _ = routing.plan_lookup(u, target_name)
        return routing, targets, found
