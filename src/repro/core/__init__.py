"""The paper's primary contribution: the scale-free name-independent routing scheme.

Modules
-------
``params``
    Tunable constants of the construction (paper defaults + experiment presets).
``decomposition``
    Definitions 1–2: ranges ``a(u,i)``, neighborhoods ``A(u,i)``, dense/sparse
    levels, range sets ``L(u)``/``R(u)``, and the balls ``F(u,i)``/``E(u,i)``.
``landmarks``
    Claims 1–2 and Lemma 3: the landmark hierarchy ``C_0 ⊇ … ⊇ C_k``, ranks,
    nearby landmark sets ``S(u,i)``, and centers ``c(u,i)``.
``sparse_strategy`` / ``dense_strategy``
    Sections 3.1–3.3 and 3.4–3.6.
``scheme``
    The full iterative routing scheme of Theorem 1 (:class:`AGMRoutingScheme`).
``analysis``
    Evaluators for the theoretical bounds, used by benches and EXPERIMENTS.md.
"""

from repro.core.params import AGMParams
from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.landmarks import LandmarkHierarchy
from repro.core.scheme import AGMRoutingScheme

__all__ = [
    "AGMParams",
    "NeighborhoodDecomposition",
    "LandmarkHierarchy",
    "AGMRoutingScheme",
]
