"""The scale-free name-independent routing scheme of Theorem 1.

Routing from ``u`` to the node named ``t`` is the simple iterative protocol
of Section 3: for levels ``i = 0, 1, ..., k``, search the neighborhood
``A(u, i)`` — with the *sparse* strategy (center + Lemma 4 bounded tree
search) if level ``i`` is sparse for ``u``, and with the *dense* strategy
(cover tree of ``G_{a(u,i)}`` + Lemma 7 dictionary lookup) if it is dense.
Every unsuccessful level reports the miss back to ``u`` and the next level
takes over; the guarantee balls grow with the level, the level at which the
destination must be found has radius ``O(d(u, t))``, and each level's cost is
proportional to its radius times ``O(k)`` — which is where the ``O(k)``
stretch comes from.

A last-resort fallback (one shortest-path tree per connected component,
rooted at the component's highest-rank landmark, carrying a Lemma 7
dictionary) guarantees that routing always terminates even when a
scaled-down experimental constant violates one of the w.h.p. lemmas; the
number of times the fallback fires is reported and is expected to be zero
(see DESIGN.md §3 item 5).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.construction.context import BuildContext, SPTJob, scalar_build_mode
from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.dense_strategy import DenseStrategy
from repro.core.landmarks import LandmarkHierarchy
from repro.core.params import AGMParams
from repro.core.sparse_strategy import SparseStrategy
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (DistanceOracle, exact_distance_oracle,
                                          shortest_path_tree)
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.trees.error_reporting import DictionaryTreeRouting
from repro.utils.bitsize import bits_for_count, bits_for_id
from repro.utils.rng import derive_rng
from repro.utils.validation import require


class AGMRoutingScheme(RoutingSchemeInstance):
    """Abraham–Gavoille–Malkhi (SPAA 2006) scheme instance for one graph."""

    scheme_name = "agm"
    labeled = False

    def __init__(
        self,
        graph: WeightedGraph,
        k: int = 2,
        params: Optional[AGMParams] = None,
        oracle: Optional[DistanceOracle] = None,
        seed=None,
        context: Optional[BuildContext] = None,
    ) -> None:
        super().__init__(graph)
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)
        self.params = params or AGMParams.paper()
        self.oracle = exact_distance_oracle(graph, oracle)
        self._build_seed = seed  # kept for rebuild_spec / churn repair
        context = context or BuildContext(graph, oracle=self.oracle, seed=seed)

        self.decomposition = NeighborhoodDecomposition(
            graph, self.k, oracle=self.oracle, params=self.params)
        self.landmarks = LandmarkHierarchy(
            graph, self.k, oracle=self.oracle, decomposition=self.decomposition,
            params=self.params, seed=derive_rng(seed, 1))
        self.sparse = SparseStrategy(
            graph, self.k, self.oracle, self.decomposition, self.landmarks,
            self.params, self.tables, seed=derive_rng(seed, 2), context=context)
        self.dense = DenseStrategy(
            graph, self.k, self.oracle, self.decomposition,
            self.params, self.tables, seed=derive_rng(seed, 3), context=context)
        self._build_fallback(seed, context)
        self._charge_base_tables()

        #: diagnostic counters (per-instance, reset-able)
        self.fallback_uses = 0

    @classmethod
    def build(cls, graph: WeightedGraph, k: int = 2,
              params: Optional[AGMParams] = None,
              oracle: Optional[DistanceOracle] = None,
              seed=None,
              context: Optional[BuildContext] = None) -> "AGMRoutingScheme":
        """Construct the scheme for ``graph`` (alias of the constructor)."""
        return cls(graph, k=k, params=params, oracle=oracle, seed=seed,
                   context=context)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _build_fallback(self, seed, context: BuildContext) -> None:
        names = self.graph.names_view()
        self._fallback: Dict[int, DictionaryTreeRouting] = {}
        self._fallback_of_node: Dict[int, int] = {}
        jobs: List[Tuple[int, List[int], int]] = []
        for index, component in enumerate(self.graph.connected_components()):
            root = max(component, key=lambda v: (self.landmarks.rank_of(v), -v))
            if len(component) == 1:
                continue
            jobs.append((index, component, root))
        if scalar_build_mode():
            trees = [shortest_path_tree(self.graph, root, members=component)
                     for _, component, root in jobs]
        else:
            trees = context.spt_trees(
                [SPTJob(root, component) for _, component, root in jobs])
        for (index, component, _), tree in zip(jobs, trees):
            tree_names = {v: names[v] for v in tree.nodes}
            routing = DictionaryTreeRouting(tree, tree_names,
                                            name_bits=self.params.name_bits,
                                            seed=derive_rng(seed, 7, index))
            self._fallback[index] = routing
            for v in component:
                self._fallback_of_node[v] = index
            for v, bits in zip(tree.nodes, routing.table_bits_list()):
                self.tables[v].charge("fallback_tables", bits)

    def _charge_base_tables(self) -> None:
        exponent_bits = bits_for_count(self.decomposition.top_exp + 1)
        for u in range(self.graph.n):
            # the node's own range list a(u, 0..k+1) and dense/sparse flags
            self.tables[u].charge("decomposition_ranges", exponent_bits, count=self.k + 2)
            self.tables[u].charge("level_flags", 1, count=self.k + 1)
            # the node's own rank in the landmark hierarchy
            self.tables[u].charge("landmark_rank", bits_for_count(self.k))

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Route from ``source`` to the node carrying ``destination_name``."""
        require(0 <= source < self.graph.n, f"source {source} out of range")
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits())
        if self.graph.name_at(source) == destination_name:
            result.found = True
            result.strategy = "local"
            return result

        for i in range(self.k + 1):
            result.phases_used = i + 1
            if self.decomposition.is_dense(source, i):
                walk, cost, found, _ = self.dense.route(source, i, destination_name)
                strategy = "dense"
            else:
                walk, cost, found, _ = self.sparse.route(source, i, destination_name)
                strategy = "sparse"
            result.extend(walk)
            result.cost += cost
            if found:
                result.found = True
                result.strategy = strategy
                return result

        # last-resort fallback (expected never to fire; counted when it does)
        component = self._fallback_of_node.get(source)
        if component is not None:
            self.fallback_uses += 1
            routing = self._fallback[component]
            lookup = routing.lookup(source, destination_name)
            result.extend(lookup.path)
            result.cost += lookup.cost
            result.notes["fallback_used"] = 1.0
            if lookup.found:
                result.found = True
                result.strategy = "fallback"
                return result
        result.found = False
        result.strategy = "not-found"
        return result

    # ------------------------------------------------------------------ #
    # compiled forwarding
    # ------------------------------------------------------------------ #
    def compile_forwarding(self):
        """Compile the full AGM walk structure for the lockstep engine.

        Every tree routing can touch — sparse-center Lemma 4 trees, dense
        cover trees with their Lemma 7 dictionaries, the per-component
        fallback trees — is registered in one :class:`TreeBank`.  Planning a
        pair replays the level-by-level control flow of :meth:`route` (which
        strategy, which dictionary hit or missed) without walking; the engine
        supplies the identical hops as array operations.
        """
        from repro.routing.forwarding import (ForwardingProgram, PacketPlan,
                                              TreeBank, mark_terminal, tree_leg)

        bank = TreeBank(self.graph.n)
        tree_id_of: Dict[int, int] = {}

        def register(routing) -> None:
            tree_id_of[id(routing)] = bank.add(routing.tree)

        for routing in self.sparse.trees.values():
            register(routing)
        for routings in self.dense.covers.values():
            for routing in routings:
                register(routing)
        for routing in self._fallback.values():
            register(routing)

        names = self.graph.names_view()
        header = self.header_bits()
        k = self.k

        def plan(source: int, destination: int) -> PacketPlan:
            require(0 <= source < self.graph.n, f"source {source} out of range")
            if source == destination:
                return PacketPlan([], "local", 0)
            target_name = names[destination]
            legs = []
            for i in range(k + 1):
                if self.decomposition.is_dense(source, i):
                    routing, targets, found = self.dense.plan_route(source, i, target_name)
                    strategy = "dense"
                else:
                    routing, targets, found = self.sparse.plan_route(source, i, target_name)
                    strategy = "sparse"
                if routing is not None and targets:
                    tree = tree_id_of[id(routing)]
                    legs.extend(tree_leg(tree, t) for t in targets)
                    if found:
                        mark_terminal(legs, strategy, i + 1)
                        return PacketPlan(legs, "not-found", k + 1)
            notes = None
            component = self._fallback_of_node.get(source)
            if component is not None:
                self.fallback_uses += 1
                notes = {"fallback_used": 1.0}
                routing = self._fallback[component]
                targets, found, _ = routing.plan_lookup(source, target_name)
                tree = tree_id_of[id(routing)]
                legs.extend(tree_leg(tree, t) for t in targets)
                if found:
                    mark_terminal(legs, "fallback", k + 1)
                    return PacketPlan(legs, "not-found", k + 1, notes=notes)
            return PacketPlan(legs, "not-found", k + 1, notes=notes)

        return ForwardingProgram(self.graph, plan, bank=bank,
                                 header_bits=header, label="agm")

    # ------------------------------------------------------------------ #
    # header accounting
    # ------------------------------------------------------------------ #
    def header_bits(self) -> int:
        """Destination name + phase counter + the largest sub-strategy header."""
        sub = max(self.sparse.max_header_bits(), self.dense.max_header_bits(),
                  max((r.header_bits() for r in self._fallback.values()), default=0))
        return self.params.name_bits + bits_for_count(self.k + 1) + sub

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Headline facts, including AGM-specific counters."""
        base = super().describe()
        base.update({
            "k": self.k,
            "num_sparse_trees": len(self.sparse.trees),
            "num_dense_exponents": len(self.dense.covers),
            "fallback_uses": self.fallback_uses,
        })
        return base
