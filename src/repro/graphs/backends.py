"""Pluggable distance backends for :class:`repro.graphs.shortest_paths.DistanceOracle`.

The original reproduction eagerly materialized the full O(n²) all-pairs
shortest-path matrix for every graph, which caps the system at a few thousand
nodes.  This module factors the distance store behind a small interface so the
rest of the library (decomposition, landmarks, both AGM strategies, all
baselines, covers, the simulator and the experiment harness) never touches a
raw matrix:

* :class:`DenseAPSPBackend` — the original eager matrix, unchanged semantics;
  best for small graphs where every row is needed many times.
* :class:`LazyDijkstraBackend` — per-source rows computed on demand through
  the SciPy Dijkstra kernel and kept in a bounded LRU cache, with a batched
  ``prefetch`` that fills many rows in one vectorized call.  Peak memory is
  ``O(cache_rows · n)`` instead of ``O(n²)`` while every returned distance is
  bit-identical to the dense matrix row.
* :class:`LandmarkApproxBackend` — triangle-inequality upper bounds through a
  small landmark set; inexact, meant for workload generation and sanity
  sweeps at sizes where even one Dijkstra pass per node is too slow.

Backends are selected by name or automatically from the graph size / memory
budget via :func:`resolve_backend` (see ``DistanceOracle``).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.validation import check_index, require

#: default node count up to which the automatic selection picks the dense
#: matrix.  At the limit the matrix plus its order cache cost ~1 GB — the
#: right trade on anything server-class, and an order of magnitude faster for
#: whole-metric construction passes than recomputing rows per pass.  Hosts
#: with tighter memory lower it via REPRO_DENSE_NODE_LIMIT.
DEFAULT_DENSE_NODE_LIMIT = 8192
#: default LRU capacity (rows) of the lazy backend
DEFAULT_CACHE_ROWS = 256
#: chunk size (sources per SciPy call) for streaming passes
DEFAULT_CHUNK_ROWS = 256


@dataclass(frozen=True)
class DistanceStats:
    """Global scalar facts about a metric, computed once per backend."""

    diameter: float
    min_positive: float

    @property
    def aspect_ratio(self) -> float:
        if self.min_positive <= 0:
            return float("inf")
        return self.diameter / self.min_positive


def _row_stats(block: np.ndarray) -> DistanceStats:
    """Diameter / minimum positive distance contribution of a row block."""
    finite = block[np.isfinite(block)]
    diameter = float(finite.max()) if finite.size else 0.0
    positive = finite[finite > 0]
    min_positive = float(positive.min()) if positive.size else float("inf")
    return DistanceStats(diameter=diameter, min_positive=min_positive)


class DistanceBackend:
    """Interface every distance backend implements.

    A backend answers *row-shaped* questions: the full distance row of a
    source, a stable (distance, node-index) ordering of that row, and global
    scalar stats.  Everything else (balls, nearest sets, pair batches) is
    derived in ``DistanceOracle`` from these primitives, so backends stay
    small.
    """

    name: str = "abstract"
    #: whether returned distances are exact shortest-path distances
    exact: bool = True

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.n = graph.n
        self._stats: Optional[DistanceStats] = None
        self._graph_version = graph.version

    # -- mutation tracking ----------------------------------------------- #
    def invalidate(self) -> None:
        """Drop every cached distance; the next query recomputes from the graph.

        Subclasses extend this to clear their stores.  Called automatically
        (via :meth:`_sync`) when the graph's mutation version has moved, and
        available as an explicit pass-through on :class:`DistanceOracle` for
        callers that mutate through a side channel.
        """
        self._stats = None
        self._graph_version = self.graph.version

    def _sync(self) -> None:
        """Invalidate if the graph mutated since the last query.

        Every public query entry point calls this first, so a live backend
        never serves rows computed against a stale topology.  The check is a
        single integer comparison; note that concurrent mutation and querying
        from different threads is not supported (mutate, then evaluate).
        """
        if self._graph_version != self.graph.version:
            self.invalidate()

    # -- primitives ----------------------------------------------------- #
    def row(self, u: int) -> np.ndarray:
        """Distances from ``u`` to every node (read-only; do not mutate)."""
        raise NotImplementedError

    def rows(self, sources: Sequence[int]) -> np.ndarray:
        """Stacked distance rows, shape ``(len(sources), n)``."""
        raise NotImplementedError

    def order(self, u: int) -> np.ndarray:
        """All nodes sorted by ``(dist from u, node index)`` — stable tie-break."""
        raise NotImplementedError

    def prefetch(self, sources: Sequence[int]) -> None:
        """Hint that the rows of ``sources`` are about to be queried.

        Part of the backend protocol: callers issue one ``prefetch`` per
        evaluation round (all sources at once) so a backend can batch the
        fill into a single multi-source computation.  The default is a no-op
        (the dense backend already holds every row).
        """

    def preferred_block(self) -> int:
        """Largest prefetch block this backend can actually hold at once.

        Streaming consumers size their chunks with this so a prefetch is
        never silently truncated below the chunk it serves.
        """
        return DEFAULT_CHUNK_ROWS

    def dist(self, u: int, v: int) -> float:
        return float(self.row(u)[v])

    # -- global stats ---------------------------------------------------- #
    def _compute_stats(self) -> DistanceStats:
        raise NotImplementedError

    def stats(self) -> DistanceStats:
        self._sync()
        if self._stats is None:
            self._stats = self._compute_stats()
        return self._stats

    # -- introspection --------------------------------------------------- #
    def nbytes(self) -> int:
        """Resident memory of the distance store (approximate)."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(n={self.n})"


class DenseAPSPBackend(DistanceBackend):
    """The original eager all-pairs matrix (plus the eager stable argsort)."""

    name = "dense"

    def __init__(self, graph: WeightedGraph, matrix: Optional[np.ndarray] = None) -> None:
        super().__init__(graph)
        self._matrix: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None
        self._order_rows: Dict[int, np.ndarray] = {}
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=float)
            require(matrix.shape == (graph.n, graph.n),
                    "distance matrix shape does not match the graph")
            self._matrix = matrix
        self._ensure()

    def _ensure(self) -> None:
        if self._matrix is None:
            # refuse, with a clear error, any path that would materialize an
            # n×n float64 matrix past the dense limit — an OOM kill reports
            # nothing, and auto-selection would never have picked dense here.
            # A caller-supplied matrix (set in __init__) bypasses this: the
            # memory is already paid for.
            limit = dense_node_limit()
            if self.n > limit:
                raise ValueError(
                    f"dense APSP backend refused: n={self.n} exceeds the "
                    f"dense node limit {limit} (the matrix would take "
                    f"{8 * self.n * self.n / 2**30:.1f} GiB). Use the 'lazy' "
                    f"backend, pass a precomputed matrix, or raise "
                    f"REPRO_DENSE_NODE_LIMIT.")
            # local import: shortest_paths imports this module at load time
            from repro.graphs.shortest_paths import all_pairs_distances

            self._matrix = all_pairs_distances(self.graph)

    def _ensure_order(self) -> None:
        # computed on first order() query: whole-matrix consumers (ball
        # tables, cover construction) never need it, and the n² log n argsort
        # rivals the APSP itself in cost
        if self._order is None:
            # argsort is stable for equal keys, so sorting by distance with
            # node index as the implicit secondary key realizes the
            # lexicographic tie-break of Definition N(u, m, Z).
            self._order = np.argsort(self.matrix, axis=1, kind="stable")
            self._order_rows.clear()  # per-row cache now duplicates _order

    def invalidate(self) -> None:
        super().invalidate()
        self._matrix = None
        self._order = None
        self._order_rows.clear()

    @property
    def matrix(self) -> np.ndarray:
        """The full APSP matrix, recomputed lazily after graph mutation."""
        self._sync()
        self._ensure()
        return self._matrix

    def row(self, u: int) -> np.ndarray:
        return self.matrix[u]

    def rows(self, sources: Sequence[int]) -> np.ndarray:
        return self.matrix[np.asarray(list(sources), dtype=np.int64)]

    def order(self, u: int) -> np.ndarray:
        self._sync()
        if self._order is not None:
            return self._order[u]
        # a few callers (e.g. per-landmark nearest sets) only ever order a
        # handful of rows; argsort those individually and escalate to the
        # full-matrix order only when demand shows it pays for itself
        cached = self._order_rows.get(u)
        if cached is not None:
            return cached
        if len(self._order_rows) * 8 >= self.n:
            self._ensure_order()
            return self._order[u]
        row_order = np.argsort(self.matrix[u], kind="stable")
        self._order_rows[u] = row_order
        return row_order

    def dist(self, u: int, v: int) -> float:
        return float(self.matrix[u, v])

    def _compute_stats(self) -> DistanceStats:
        stats = _row_stats(self.matrix)
        if not np.isfinite(stats.min_positive):
            # no positive finite distance at all (edgeless graph): the paper
            # normalizes d_min to 1
            stats = DistanceStats(diameter=stats.diameter, min_positive=1.0)
        return stats

    def nbytes(self) -> int:
        self._ensure()
        total = int(self._matrix.nbytes)
        if self._order is not None:
            total += int(self._order.nbytes)
        return total


class LazyDijkstraBackend(DistanceBackend):
    """Rows computed on demand via SciPy Dijkstra, held in a bounded LRU cache.

    ``prefetch`` computes all missing rows of a batch in one vectorized
    multi-source call, which is how streaming consumers (the decomposition's
    ball-size table, sparse-cover construction, batched pair evaluation) avoid
    per-row kernel overhead.

    Rows falling out of the LRU are not discarded: they are **spilled** into
    a :class:`repro.storage.SpilledRowStore` (memmap slots in
    ``REPRO_SPILL_DIR``), so a re-touched cold row is a page-cache read
    instead of a fresh Dijkstra.  ``REPRO_ROW_SPILL=0`` disables the store
    and restores the pure-eviction behavior; ``REPRO_ROW_SPILL_BYTES`` caps
    its footprint.  Spilled rows are cleared together with the RAM cache on
    graph mutation, so a stale row can never be served.
    """

    name = "lazy"

    def __init__(self, graph: WeightedGraph, cache_rows: int = DEFAULT_CACHE_ROWS,
                 chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
        super().__init__(graph)
        require(cache_rows >= 1, "cache_rows must be >= 1")
        require(chunk_rows >= 1, "chunk_rows must be >= 1")
        from repro.storage import row_spill_enabled

        self.cache_rows = int(cache_rows)
        self.chunk_rows = int(chunk_rows)
        self._rows: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._orders: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._spill_enabled = row_spill_enabled()
        self._spill = None  # created on first eviction
        # one backend may be shared by run_matrix(parallel=) worker threads;
        # every LRU read-modify (get + move_to_end) must be atomic
        self._lock = threading.RLock()
        #: diagnostic counters
        self.hits = 0
        self.misses = 0
        self.row_spills = 0
        self.row_restores = 0

    def invalidate(self) -> None:
        with self._lock:
            super().invalidate()
            self._rows.clear()
            self._orders.clear()
            if self._spill is not None:
                self._spill.clear()

    # -- cache plumbing -------------------------------------------------- #
    def _spill_store(self):
        if self._spill is None and self._spill_enabled:
            from repro.storage import SpilledRowStore

            self._spill = SpilledRowStore(self.n)
        return self._spill

    def _restore(self, u: int) -> Optional[np.ndarray]:
        """Bring a previously spilled row back into the LRU, if stored."""
        with self._lock:
            if self._spill is None:
                return None
            row = self._spill.get(u)
            if row is None:
                return None
            self.row_restores += 1
            self._insert(u, row)
            return row

    def _insert(self, u: int, row: np.ndarray) -> None:
        with self._lock:
            self._rows[u] = row
            self._rows.move_to_end(u)
            while len(self._rows) > self.cache_rows:
                evicted, evicted_row = self._rows.popitem(last=False)
                self._orders.pop(evicted, None)
                store = self._spill_store()
                if store is not None:
                    store.put(evicted, evicted_row)
                    self.row_spills += 1

    def _compute(self, sources: List[int]) -> np.ndarray:
        from repro.graphs.shortest_paths import multi_source_distances

        return multi_source_distances(self.graph, sources)

    def _cached_row(self, u: int) -> Optional[np.ndarray]:
        with self._lock:
            cached = self._rows.get(u)
            if cached is not None:
                self.hits += 1
                self._rows.move_to_end(u)
            return cached

    def row(self, u: int) -> np.ndarray:
        check_index(u, self.n, "u")
        self._sync()
        cached = self._cached_row(u)
        if cached is None:
            cached = self._restore(u)
        if cached is not None:
            return cached
        self.misses += 1
        row = self._compute([u])[0]
        self._insert(u, row)
        return row

    def rows(self, sources: Sequence[int]) -> np.ndarray:
        self._sync()
        sources = [int(s) for s in sources]
        out = np.empty((len(sources), self.n), dtype=float)
        positions: Dict[int, List[int]] = {}
        for i, s in enumerate(sources):
            positions.setdefault(s, []).append(i)
        missing: List[int] = []
        for s, idxs in positions.items():
            cached = self._cached_row(s)
            if cached is None:
                cached = self._restore(s)
            if cached is not None:
                out[idxs] = cached
            else:
                missing.append(s)
        missing.sort()
        if missing:
            self.misses += len(missing)
            # requests larger than the cache fill the output directly from
            # the computed blocks (caching them would evict rows of this very
            # request before they are ever read) and leave the LRU untouched
            cache_them = len(missing) <= self.cache_rows
            for start in range(0, len(missing), self.chunk_rows):
                chunk = missing[start:start + self.chunk_rows]
                block = self._compute(chunk)
                for local, s in enumerate(chunk):
                    out[positions[s]] = block[local]
                    if cache_them:
                        self._insert(s, block[local])
        return out

    def prefetch(self, sources: Sequence[int]) -> None:
        """Fill the cache for an upcoming round in **one** multi-source call.

        All missing rows of the hint are computed by a single vectorized
        Dijkstra kernel invocation, so a batched evaluation round (e.g. the
        lockstep engine's source set) pays one kernel launch instead of one
        cache miss per consumer step.  Hints larger than the cache would only
        churn it, so they are truncated to the capacity the cache can
        actually retain; later consumers fall back to the grouped ``rows``
        path for the remainder.
        """
        self._sync()
        with self._lock:
            missing = sorted({int(s) for s in sources if int(s) not in self._rows})
        missing = missing[:self.cache_rows]
        missing = [s for s in missing if self._restore(s) is None]
        if not missing:
            return
        self.misses += len(missing)
        block = self._compute(missing)
        for local, s in enumerate(missing):
            # copy the row out of the block: caching a view would pin the
            # whole block in memory for as long as any one row survives
            self._insert(s, block[local].copy())

    def preferred_block(self) -> int:
        return min(self.chunk_rows, self.cache_rows)

    def order(self, u: int) -> np.ndarray:
        self._sync()
        with self._lock:
            cached = self._orders.get(u)
            if cached is not None:
                self._orders.move_to_end(u)
                return cached
        order = np.argsort(self.row(u), kind="stable")
        with self._lock:
            self._orders[u] = order
            while len(self._orders) > self.cache_rows:
                self._orders.popitem(last=False)
        return order

    def _compute_stats(self) -> DistanceStats:
        # Exact stats without the historical full n-row sweep (55 minutes at
        # n=100k on one core):
        #
        # * the minimum positive distance IS the minimum edge weight — every
        #   positive distance is a sum of >= 1 positive weights >= w_min, and
        #   the w_min edge itself is a shortest path (a two-edge path already
        #   costs >= 2 w_min), finalized by Dijkstra as the literal weight;
        # * the diameter comes from eccentricity-bounds pruning (Takes &
        #   Kosters): process the node with the largest eccentricity upper
        #   bound, tighten ecc(v) <= ecc(u) + d(u, v) from its exact row, and
        #   drop every node whose bound can no longer beat the best
        #   eccentricity seen.  Tens of rows on small-world graphs, never
        #   worse than the old full sweep.
        min_weight = self.graph.min_weight()
        if not np.isfinite(min_weight) or min_weight <= 0:
            # edgeless graph: all distances are 0 or inf; the paper
            # normalizes d_min to 1 (mirrors the dense fallback)
            return DistanceStats(diameter=0.0, min_positive=1.0)
        return DistanceStats(diameter=self._exact_diameter(),
                             min_positive=float(min_weight))

    def _exact_diameter(self) -> float:
        n = self.n
        upper = np.full(n, np.inf)
        active = np.ones(n, dtype=bool)
        diameter = 0.0
        first = True
        while True:
            candidates = np.flatnonzero(active)
            if candidates.size == 0:
                return diameter
            if first:
                # a high-degree node tends to be central: its small
                # eccentricity gives tight first bounds for everyone
                u = max(range(n), key=self.graph.degree)
                first = False
            else:
                u = int(candidates[np.argmax(upper[candidates])])
            row = self._compute([u])[0]
            finite = np.isfinite(row)
            ecc = float(row[finite].max()) if finite.any() else 0.0
            diameter = max(diameter, ecc)
            # one-ulp inflation: fl(ecc + d) may round below the real sum,
            # and an under-rounded bound could prune a true endpoint of the
            # diameter
            bound = np.nextafter(ecc + row[finite], np.inf)
            upper[finite] = np.minimum(upper[finite], bound)
            active[u] = False
            active &= upper > diameter

    def nbytes(self) -> int:
        total = sum(r.nbytes for r in self._rows.values())
        total += sum(o.nbytes for o in self._orders.values())
        return int(total)

    def row_cache_report(self) -> Dict[str, object]:
        """Hit/miss/spill counters plus the spill store's own report."""
        report: Dict[str, object] = {
            "hits": int(self.hits), "misses": int(self.misses),
            "row_spills": int(self.row_spills),
            "row_restores": int(self.row_restores),
        }
        report["spill"] = (self._spill.report() if self._spill is not None
                           else None)
        return report


class LandmarkApproxBackend(DistanceBackend):
    """Triangle-inequality upper bounds ``min_l d(u,l) + d(l,v)`` over landmarks.

    Landmarks are chosen by the farthest-point (maxmin) heuristic, which gives
    good coverage of the metric with a handful of Dijkstra passes.  Distances
    are exact when either endpoint is a landmark and never underestimate;
    intended for workload generation / triage at large ``n``, not for routing
    guarantees (``exact`` is False and scheme construction refuses it).
    """

    name = "landmark"
    exact = False

    def __init__(self, graph: WeightedGraph, num_landmarks: int = 16, seed: int = 0) -> None:
        super().__init__(graph)
        require(num_landmarks >= 1, "num_landmarks must be >= 1")
        from repro.graphs.shortest_paths import multi_source_distances, single_source_distances

        num_landmarks = min(int(num_landmarks), self.n)
        first = int(seed) % self.n
        landmarks = [first]
        # maxmin with still-uncovered components kept at +inf, so every
        # component receives a landmark before any component gets a second
        # one — otherwise nodes outside the first landmark's component would
        # estimate inf for their own intra-component distances
        closest = single_source_distances(graph, first).copy()
        closest[first] = 0.0
        while len(landmarks) < num_landmarks:
            candidate = int(np.argmax(closest))
            if closest[candidate] <= 0:
                break  # every node is itself a landmark already
            landmarks.append(candidate)
            reach = single_source_distances(graph, candidate)
            closest = np.minimum(closest, reach)
            closest[candidate] = 0.0
        self.landmarks = landmarks
        self._landmark_rows = np.atleast_2d(multi_source_distances(graph, landmarks))
        self._cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._cache_rows = DEFAULT_CACHE_ROWS
        # same sharing model as the lazy backend: one instance may serve
        # several worker threads, so LRU read-modify must be atomic
        self._lock = threading.RLock()

    def invalidate(self) -> None:
        """Recompute the landmark rows (same landmark set) and drop the cache."""
        from repro.graphs.shortest_paths import multi_source_distances

        with self._lock:
            super().invalidate()
            self._landmark_rows = np.atleast_2d(
                multi_source_distances(self.graph, self.landmarks))
            self._cache.clear()

    @property
    def landmark_rows(self) -> np.ndarray:
        """Exact ``(num_landmarks, n)`` distance rows landmark -> node.

        Version-synced read-only view; the ``landmark`` traffic-scoring mode
        derives its ALT lower bounds from these rows.
        """
        self._sync()
        return self._landmark_rows

    def row(self, u: int) -> np.ndarray:
        check_index(u, self.n, "u")
        self._sync()
        with self._lock:
            cached = self._cache.get(u)
            if cached is not None:
                self._cache.move_to_end(u)
                return cached
        to_u = self._landmark_rows[:, u]
        row = np.min(to_u[:, None] + self._landmark_rows, axis=0)
        row[u] = 0.0
        with self._lock:
            self._cache[u] = row
            while len(self._cache) > self._cache_rows:
                self._cache.popitem(last=False)
        return row

    def rows(self, sources: Sequence[int]) -> np.ndarray:
        return np.vstack([self.row(int(s)) for s in sources])

    def order(self, u: int) -> np.ndarray:
        return np.argsort(self.row(u), kind="stable")

    def _compute_stats(self) -> DistanceStats:
        finite = self._landmark_rows[np.isfinite(self._landmark_rows)]
        diameter = float(finite.max()) if finite.size else 0.0
        min_weight = self.graph.min_weight()
        min_positive = float(min_weight) if np.isfinite(min_weight) else 1.0
        return DistanceStats(diameter=diameter, min_positive=min_positive)

    def nbytes(self) -> int:
        return int(self._landmark_rows.nbytes
                   + sum(r.nbytes for r in self._cache.values()))


#: names accepted by :func:`resolve_backend`
BACKEND_NAMES = ("auto", "dense", "lazy", "landmark")

BackendLike = Union[str, DistanceBackend, None]


def dense_node_limit() -> int:
    """Node count above which automatic selection switches away from dense."""
    raw = os.environ.get("REPRO_DENSE_NODE_LIMIT")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_DENSE_NODE_LIMIT


def resolve_backend(graph: WeightedGraph, backend: BackendLike = None,
                    **kwargs) -> DistanceBackend:
    """Turn a backend spec (instance, name, ``None``/"auto") into an instance.

    ``None``/"auto" consults ``REPRO_DISTANCE_BACKEND`` and then picks dense
    for graphs up to :func:`dense_node_limit` nodes, lazy beyond it.
    """
    if isinstance(backend, DistanceBackend):
        require(backend.graph is graph, "backend was built for a different graph")
        return backend
    name = (backend or os.environ.get("REPRO_DISTANCE_BACKEND") or "auto").lower()
    if name == "auto":
        name = "dense" if graph.n <= dense_node_limit() else "lazy"
    if name == "dense":
        return DenseAPSPBackend(graph, **kwargs)
    if name == "lazy":
        return LazyDijkstraBackend(graph, **kwargs)
    if name == "landmark":
        return LandmarkApproxBackend(graph, **kwargs)
    raise ValueError(f"unknown distance backend {backend!r}; choose from {BACKEND_NAMES}")
