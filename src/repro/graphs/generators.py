"""Synthetic workload graphs.

The paper proves worst-case guarantees over *arbitrary* weighted graphs; the
reproduction exercises them on standard graph families (grids, random
geometric graphs, Erdős–Rényi, Barabási–Albert, ring-of-cliques, trees,
hypercubes) combined with several weight models:

``unit``
    every edge has weight 1 (the Peleg–Upfal setting);
``uniform``
    weights uniform in ``[wmin, wmax]``;
``exponential``
    weights ``10**U`` with ``U`` uniform — this is the model that produces
    the astronomically large aspect ratios (Δ up to ``2^n``) that motivate
    the paper's scale-free property.

Every generator returns a connected :class:`WeightedGraph` (taking the
largest component and, if necessary, stitching components together), with
adversarial random node names, and is fully deterministic given ``seed``.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.utils.rng import make_rng
from repro.utils.validation import require

WeightModel = str


# --------------------------------------------------------------------------- #
# weight assignment
# --------------------------------------------------------------------------- #
def _draw_weight(rng: np.random.Generator, model: WeightModel,
                 wmin: float, wmax: float) -> float:
    if model == "unit":
        return 1.0
    if model == "uniform":
        return float(rng.uniform(wmin, wmax))
    if model == "exponential":
        lo, hi = math.log10(wmin), math.log10(wmax)
        return float(10.0 ** rng.uniform(lo, hi))
    raise ValueError(f"unknown weight model {model!r}")


def _finalize(
    nxg: nx.Graph,
    rng: np.random.Generator,
    weights: WeightModel,
    wmin: float,
    wmax: float,
    keep_existing_weights: bool = False,
) -> WeightedGraph:
    """Make connected, assign weights and adversarial names, convert."""
    require(nxg.number_of_nodes() >= 1, "generated graph is empty")
    nxg = nx.convert_node_labels_to_integers(nxg)
    if not nx.is_connected(nxg):
        components = [sorted(c) for c in nx.connected_components(nxg)]
        components.sort(key=len, reverse=True)
        # Stitch every smaller component to the largest one with a single edge
        # so no node is dropped (routing correctness tests need all n nodes).
        anchor = components[0][0]
        for comp in components[1:]:
            nxg.add_edge(anchor, comp[0])
    edges = []
    for u, v, data in nxg.edges(data=True):
        if keep_existing_weights and "weight" in data:
            w = float(data["weight"])
        else:
            w = _draw_weight(rng, weights, wmin, wmax)
        edges.append((u, v, max(w, 1e-9)))
    name_seed = int(rng.integers(0, 2**31 - 1))
    return WeightedGraph(nxg.number_of_nodes(), edges, seed=name_seed)


# --------------------------------------------------------------------------- #
# graph families
# --------------------------------------------------------------------------- #
def grid_graph(rows: int, cols: int, weights: WeightModel = "uniform",
               wmin: float = 1.0, wmax: float = 10.0,
               seed: Optional[int] = None) -> WeightedGraph:
    """2-D grid (``rows`` x ``cols``) with the given weight model."""
    rng = make_rng(seed)
    nxg = nx.grid_2d_graph(rows, cols)
    return _finalize(nxg, rng, weights, wmin, wmax)


def path_graph(n: int, weights: WeightModel = "unit",
               wmin: float = 1.0, wmax: float = 10.0,
               seed: Optional[int] = None) -> WeightedGraph:
    """Path on ``n`` nodes."""
    rng = make_rng(seed)
    return _finalize(nx.path_graph(n), rng, weights, wmin, wmax)


def cycle_graph(n: int, weights: WeightModel = "unit",
                wmin: float = 1.0, wmax: float = 10.0,
                seed: Optional[int] = None) -> WeightedGraph:
    """Cycle on ``n`` nodes."""
    rng = make_rng(seed)
    return _finalize(nx.cycle_graph(n), rng, weights, wmin, wmax)


def star_graph(n: int, weights: WeightModel = "unit",
               wmin: float = 1.0, wmax: float = 10.0,
               seed: Optional[int] = None) -> WeightedGraph:
    """Star with ``n`` leaves (n+1 nodes)."""
    rng = make_rng(seed)
    return _finalize(nx.star_graph(n), rng, weights, wmin, wmax)


def complete_graph(n: int, weights: WeightModel = "uniform",
                   wmin: float = 1.0, wmax: float = 10.0,
                   seed: Optional[int] = None) -> WeightedGraph:
    """Complete graph on ``n`` nodes."""
    rng = make_rng(seed)
    return _finalize(nx.complete_graph(n), rng, weights, wmin, wmax)


def hypercube_graph(dim: int, weights: WeightModel = "unit",
                    wmin: float = 1.0, wmax: float = 10.0,
                    seed: Optional[int] = None) -> WeightedGraph:
    """Hypercube of dimension ``dim`` (``2**dim`` nodes)."""
    rng = make_rng(seed)
    return _finalize(nx.hypercube_graph(dim), rng, weights, wmin, wmax)


def erdos_renyi_graph(n: int, p: Optional[float] = None,
                      weights: WeightModel = "uniform",
                      wmin: float = 1.0, wmax: float = 10.0,
                      seed: Optional[int] = None) -> WeightedGraph:
    """Erdős–Rényi ``G(n, p)`` (default ``p`` slightly above the connectivity threshold)."""
    rng = make_rng(seed)
    if p is None:
        p = min(1.0, 3.0 * math.log(max(n, 2)) / max(n, 2))
    nxg = nx.gnp_random_graph(n, p, seed=int(rng.integers(0, 2**31 - 1)))
    return _finalize(nxg, rng, weights, wmin, wmax)


def random_geometric_graph(n: int, radius: Optional[float] = None,
                           weights: WeightModel = "euclidean",
                           wmin: float = 1.0, wmax: float = 10.0,
                           seed: Optional[int] = None) -> WeightedGraph:
    """Random geometric graph in the unit square.

    With the default ``weights="euclidean"`` the edge weight is the Euclidean
    distance between the endpoints (scaled by 100), giving a natural metric
    workload; any other weight model re-draws weights independently.
    """
    rng = make_rng(seed)
    if radius is None:
        radius = min(1.0, 1.8 * math.sqrt(math.log(max(n, 2)) / (math.pi * max(n, 2))))
    nxg = nx.random_geometric_graph(n, radius, seed=int(rng.integers(0, 2**31 - 1)))
    if weights == "euclidean":
        pos = nx.get_node_attributes(nxg, "pos")
        for u, v in nxg.edges():
            (x1, y1), (x2, y2) = pos[u], pos[v]
            nxg[u][v]["weight"] = max(100.0 * math.hypot(x1 - x2, y1 - y2), 1e-6)
        return _finalize(nxg, rng, "uniform", wmin, wmax, keep_existing_weights=True)
    return _finalize(nxg, rng, weights, wmin, wmax)


def barabasi_albert_graph(n: int, attach: int = 2,
                          weights: WeightModel = "uniform",
                          wmin: float = 1.0, wmax: float = 10.0,
                          seed: Optional[int] = None) -> WeightedGraph:
    """Barabási–Albert preferential-attachment graph (internet-like degrees)."""
    rng = make_rng(seed)
    attach = max(1, min(attach, n - 1))
    nxg = nx.barabasi_albert_graph(n, attach, seed=int(rng.integers(0, 2**31 - 1)))
    return _finalize(nxg, rng, weights, wmin, wmax)


def ring_of_cliques(num_cliques: int, clique_size: int,
                    weights: WeightModel = "uniform",
                    wmin: float = 1.0, wmax: float = 10.0,
                    seed: Optional[int] = None) -> WeightedGraph:
    """Ring of cliques — locally dense, globally sparse (stresses both strategies)."""
    rng = make_rng(seed)
    nxg = nx.ring_of_cliques(num_cliques, clique_size)
    return _finalize(nxg, rng, weights, wmin, wmax)


def random_tree_graph(n: int, weights: WeightModel = "uniform",
                      wmin: float = 1.0, wmax: float = 10.0,
                      seed: Optional[int] = None) -> WeightedGraph:
    """Uniformly random labelled tree on ``n`` nodes."""
    rng = make_rng(seed)
    nxg = nx.random_labeled_tree(n, seed=int(rng.integers(0, 2**31 - 1)))
    return _finalize(nxg, rng, weights, wmin, wmax)


def caterpillar_tree(spine: int, legs: int = 2,
                     weights: WeightModel = "uniform",
                     wmin: float = 1.0, wmax: float = 10.0,
                     seed: Optional[int] = None) -> WeightedGraph:
    """Caterpillar tree: a path of ``spine`` nodes, each with ``legs`` leaves."""
    rng = make_rng(seed)
    nxg = nx.Graph()
    for i in range(spine - 1):
        nxg.add_edge(i, i + 1)
    nxt = spine
    for i in range(spine):
        for _ in range(legs):
            nxg.add_edge(i, nxt)
            nxt += 1
    return _finalize(nxg, rng, weights, wmin, wmax)


def dumbbell_graph(side: int, bridge_weight: float = 1000.0,
                   weights: WeightModel = "uniform",
                   wmin: float = 1.0, wmax: float = 10.0,
                   seed: Optional[int] = None) -> WeightedGraph:
    """Two cliques of ``side`` nodes joined by a single heavy edge.

    A classic stress test for the decomposition: neighborhoods are dense
    inside a clique and abruptly sparse across the bridge.
    """
    rng = make_rng(seed)
    nxg = nx.Graph()
    for a, b in itertools.combinations(range(side), 2):
        nxg.add_edge(a, b)
    for a, b in itertools.combinations(range(side, 2 * side), 2):
        nxg.add_edge(a, b)
    nxg.add_edge(0, side, weight=bridge_weight)
    g = _finalize(nxg, rng, weights, wmin, wmax, keep_existing_weights=True)
    return g


# --------------------------------------------------------------------------- #
# aspect-ratio control
# --------------------------------------------------------------------------- #
def rescale_aspect_ratio(graph: WeightedGraph, target_delta: float,
                         seed: Optional[int] = None) -> WeightedGraph:
    """Return a copy of ``graph`` whose aspect ratio is roughly ``target_delta``.

    The topology is preserved; edge weights are re-drawn as ``10**U`` with
    ``U`` uniform in ``[0, log10(target_delta / n)]`` so that the shortest
    pairwise distance stays near 1 while the diameter approaches
    ``target_delta``.  The exact achieved Δ depends on the topology; callers
    that need the exact value should measure it with
    :func:`repro.graphs.metrics.aspect_ratio`.
    """
    require(target_delta >= 1.0, "target aspect ratio must be >= 1")
    rng = make_rng(seed)
    span = max(target_delta / max(graph.n, 2), 1.0)
    hi = math.log10(span) if span > 1 else 0.0

    def new_weight(u: int, v: int, w: float) -> float:
        return float(10.0 ** rng.uniform(0.0, hi)) if hi > 0 else 1.0

    return graph.copy_with_weights(new_weight)


# --------------------------------------------------------------------------- #
# registry (used by the experiment workloads)
# --------------------------------------------------------------------------- #
GENERATORS: dict[str, Callable[..., WeightedGraph]] = {
    "grid": lambda n, seed=None: grid_graph(int(math.isqrt(n)), int(math.isqrt(n)), seed=seed),
    "geometric": lambda n, seed=None: random_geometric_graph(n, seed=seed),
    "erdos-renyi": lambda n, seed=None: erdos_renyi_graph(n, seed=seed),
    "barabasi-albert": lambda n, seed=None: barabasi_albert_graph(n, seed=seed),
    "ring-of-cliques": lambda n, seed=None: ring_of_cliques(max(n // 8, 3), 8, seed=seed),
    "tree": lambda n, seed=None: random_tree_graph(n, seed=seed),
}


def make_graph(family: str, n: int, seed: Optional[int] = None) -> WeightedGraph:
    """Build a graph from the named family with roughly ``n`` nodes."""
    require(family in GENERATORS, f"unknown graph family {family!r}; "
                                  f"choose from {sorted(GENERATORS)}")
    return GENERATORS[family](n, seed=seed)
