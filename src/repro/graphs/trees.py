"""Rooted weighted trees.

All tree-routing schemes (Lemmas 4, 5 and 7, plus the cover trees of
Lemma 6) operate on a :class:`Tree`: a rooted, weighted tree whose node set
is a subset of a host graph's nodes.  The class exposes the structural
queries those schemes need — DFS intervals, subtree sizes, depths (weighted
distance from the root along tree edges), distance-from-root orderings,
radius, and heaviest edge — plus tree-path queries used by the simulator to
verify that a routing walk actually followed tree edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.validation import require


class TreeSlotArrays:
    """Per-tree compiled slot arrays (``slot = DFS-in number``).

    Assembled during :meth:`Tree._compute_dfs` so that
    :meth:`repro.routing.forwarding.TreeBank.freeze` finds every tree's local
    compilation already cached — the bank's global assembly is then pure
    vectorized offset arithmetic with no intermediate dict pass.  Attribute
    layout matches what ``freeze`` consumes (``_TreeSlots`` duck type).
    """

    __slots__ = ("size", "node_of_slot", "dfs_out", "parent_local")

    def __init__(self, size: int) -> None:
        import numpy as np

        self.size = size
        self.node_of_slot = np.empty(size, dtype=np.int64)
        self.dfs_out = np.empty(size, dtype=np.int64)
        self.parent_local = np.full(size, -1, dtype=np.int64)


class Tree:
    """A rooted weighted tree over (a subset of) graph node indices.

    Parameters
    ----------
    root:
        Graph index of the root.
    parent:
        Mapping ``child -> parent`` over graph indices (the root must not
        appear as a key).
    edge_weight:
        Mapping ``child -> weight of (child, parent(child))``.
    """

    def __init__(
        self,
        root: int,
        parent: Dict[int, int],
        edge_weight: Dict[int, float],
    ) -> None:
        require(root not in parent, "the root cannot have a parent")
        self.parent: Dict[int, int] = {int(c): int(p) for c, p in parent.items()}
        self.edge_weight: Dict[int, float] = {int(c): float(w) for c, w in edge_weight.items()}
        require(self.parent.keys() == self.edge_weight.keys(),
                "every child needs exactly one edge weight")
        require(not self.edge_weight or min(self.edge_weight.values()) > 0,
                "tree edge weights must be positive")
        self.root = int(root)

        node_set = set(self.parent) | set(self.parent.values()) | {self.root}
        self.nodes: List[int] = sorted(node_set)
        self.index: Dict[int, int] = {v: i for i, v in enumerate(self.nodes)}
        self.size = len(self.nodes)

        self.children: Dict[int, List[int]] = {v: [] for v in self.nodes}
        for child, par in self.parent.items():
            self.children[par].append(child)
        for v in self.children:
            self.children[v].sort()

        self._validate_connected()
        self._compute_depths()
        self._compute_dfs()

    # ------------------------------------------------------------------ #
    # construction-time computations
    # ------------------------------------------------------------------ #
    def _validate_connected(self) -> None:
        # every non-root node has exactly one parent edge, so reaching all
        # ``size`` nodes from the root rules out both cycles and disconnection
        reached = 1
        stack = [self.root]
        children = self.children
        while stack:
            kids = children[stack.pop()]
            reached += len(kids)
            stack.extend(kids)
        require(reached == self.size, "tree is not connected to its root")

    def _compute_depths(self) -> None:
        self.depth: Dict[int, float] = {self.root: 0.0}
        self.hop_depth: Dict[int, int] = {self.root: 0}
        stack = [self.root]
        while stack:
            u = stack.pop()
            for c in self.children[u]:
                self.depth[c] = self.depth[u] + self.edge_weight[c]
                self.hop_depth[c] = self.hop_depth[u] + 1
                stack.append(c)

    def _compute_dfs(self) -> None:
        """Iterative DFS assigning pre/post intervals and subtree sizes.

        The same pass fills :class:`TreeSlotArrays` (cached as
        ``_forwarding_slots``), so compiling this tree into a
        :class:`~repro.routing.forwarding.TreeBank` later needs no further
        per-node Python work.
        """
        self.dfs_in: Dict[int, int] = {}
        self.dfs_out: Dict[int, int] = {}
        self.subtree_size: Dict[int, int] = {}
        slots = TreeSlotArrays(self.size)
        counter = 0
        stack: List[Tuple[int, bool]] = [(self.root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                last = self.dfs_in[node]
                size = 1
                for c in self.children[node]:
                    last = max(last, self.dfs_out[c])
                    size += self.subtree_size[c]
                self.dfs_out[node] = last
                self.subtree_size[node] = size
                slots.dfs_out[self.dfs_in[node]] = last
            else:
                self.dfs_in[node] = counter
                slots.node_of_slot[counter] = node
                parent = self.parent.get(node)
                if parent is not None:
                    slots.parent_local[counter] = self.dfs_in[parent]
                counter += 1
                stack.append((node, True))
                for c in reversed(self.children[node]):
                    stack.append((c, False))
        self._forwarding_slots = slots

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    def contains(self, v: int) -> bool:
        """Whether graph node ``v`` belongs to the tree."""
        return v in self.index

    def radius(self) -> float:
        """Weighted eccentricity of the root: ``max_v depth(v)``."""
        return max(self.depth.values()) if self.depth else 0.0

    def max_edge(self) -> float:
        """Heaviest tree edge weight (0 for a single-node tree)."""
        return max(self.edge_weight.values()) if self.edge_weight else 0.0

    def total_weight(self) -> float:
        """Sum of tree edge weights."""
        return float(sum(self.edge_weight.values()))

    def nodes_by_depth(self) -> List[int]:
        """Nodes sorted by (weighted distance from root, node index).

        This is the ordering Lemma 4 uses to assign primary names.
        """
        return sorted(self.nodes, key=lambda v: (self.depth[v], v))

    def nodes_by_dfs(self) -> List[int]:
        """Nodes sorted by DFS-in number."""
        return sorted(self.nodes, key=lambda v: self.dfs_in[v])

    def is_ancestor(self, a: int, b: int) -> bool:
        """Whether ``a`` is an ancestor of ``b`` (every node is its own ancestor)."""
        return self.dfs_in[a] <= self.dfs_in[b] <= self.dfs_out[a]

    def child_toward(self, a: int, b: int) -> Optional[int]:
        """The child of ``a`` whose subtree contains ``b`` (None if ``a==b`` or unrelated)."""
        if a == b or not self.is_ancestor(a, b):
            return None
        for c in self.children[a]:
            if self.is_ancestor(c, b):
                return c
        return None

    def path_to_root(self, v: int) -> List[int]:
        """The node sequence from ``v`` up to the root (inclusive)."""
        out = [v]
        while out[-1] != self.root:
            out.append(self.parent[out[-1]])
        return out

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor of ``u`` and ``v``."""
        ancestors = set(self.path_to_root(u))
        x = v
        while x not in ancestors:
            x = self.parent[x]
        return x

    def path(self, u: int, v: int) -> List[int]:
        """The unique tree path from ``u`` to ``v`` (inclusive)."""
        a = self.lca(u, v)
        up = []
        x = u
        while x != a:
            up.append(x)
            x = self.parent[x]
        down = []
        x = v
        while x != a:
            down.append(x)
            x = self.parent[x]
        return up + [a] + list(reversed(down))

    def tree_distance(self, u: int, v: int) -> float:
        """Weighted length of the tree path between ``u`` and ``v``."""
        a = self.lca(u, v)
        return self.depth[u] + self.depth[v] - 2.0 * self.depth[a]

    def next_hop(self, u: int, v: int) -> int:
        """The tree neighbor of ``u`` on the tree path toward ``v``."""
        require(u != v, "next_hop requires distinct endpoints")
        if self.is_ancestor(u, v):
            child = self.child_toward(u, v)
            assert child is not None
            return child
        return self.parent[u]

    def tree_neighbors(self, u: int) -> List[Tuple[int, float]]:
        """Tree-adjacent nodes of ``u`` with edge weights (parent first)."""
        out: List[Tuple[int, float]] = []
        if u != self.root:
            out.append((self.parent[u], self.edge_weight[u]))
        for c in self.children[u]:
            out.append((c, self.edge_weight[c]))
        return out

    # ------------------------------------------------------------------ #
    # builders
    # ------------------------------------------------------------------ #
    @classmethod
    def single_node(cls, v: int) -> "Tree":
        """A tree containing only node ``v``."""
        return cls(root=v, parent={}, edge_weight={})

    @classmethod
    def from_parent_list(
        cls, root: int, parents: Sequence[int], weights: Sequence[float]
    ) -> "Tree":
        """Build from dense arrays ``parents[v]``/``weights[v]`` (-1 for non-members)."""
        parent: Dict[int, int] = {}
        edge_weight: Dict[int, float] = {}
        for v, p in enumerate(parents):
            if v == root or p < 0:
                continue
            parent[v] = int(p)
            edge_weight[v] = float(weights[v])
        return cls(root=root, parent=parent, edge_weight=edge_weight)

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(root={self.root}, size={self.size}, radius={self.radius():.3g})"
