"""Graph metrics used by the experiments: aspect ratio, diameter, density profiles."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle


def aspect_ratio(graph: WeightedGraph, oracle: Optional[DistanceOracle] = None) -> float:
    """Aspect ratio Δ = (max pairwise distance) / (min positive pairwise distance)."""
    oracle = oracle or DistanceOracle(graph)
    return oracle.aspect_ratio()


def weighted_diameter(graph: WeightedGraph, oracle: Optional[DistanceOracle] = None) -> float:
    """Largest finite pairwise distance."""
    oracle = oracle or DistanceOracle(graph)
    return oracle.diameter()


def ball_growth_profile(
    oracle: DistanceOracle, node: int, num_scales: Optional[int] = None
) -> List[int]:
    """``|B(node, d_min * 2^j)|`` for j = 0, 1, ... until the ball covers the component."""
    d_min = oracle.min_positive_distance()
    sizes: List[int] = []
    j = 0
    total_reachable = int(np.count_nonzero(np.isfinite(oracle.row(node))))
    while True:
        size = oracle.ball_size(node, d_min * (2.0 ** j))
        sizes.append(size)
        if size >= total_reachable:
            break
        if num_scales is not None and len(sizes) >= num_scales:
            break
        j += 1
    return sizes


def doubling_dimension_estimate(oracle: DistanceOracle, sample: Sequence[int]) -> float:
    """Crude doubling-dimension estimate: max over sampled nodes/scales of
    ``log2(|B(u, 2r)| / |B(u, r)|)``."""
    d_min = oracle.min_positive_distance()
    diam = oracle.diameter()
    if diam <= 0:
        return 0.0
    best = 0.0
    scales = max(1, int(math.ceil(math.log2(max(diam / d_min, 2.0)))))
    for u in sample:
        for j in range(scales):
            r = d_min * (2.0 ** j)
            small = oracle.ball_size(u, r)
            big = oracle.ball_size(u, 2 * r)
            if small > 0 and big > small:
                best = max(best, math.log2(big / small))
    return best


@dataclass
class GraphSummary:
    """Headline statistics of a workload graph (used in experiment reports)."""

    n: int
    m: int
    min_weight: float
    max_weight: float
    diameter: float
    aspect_ratio: float
    max_degree: int
    avg_degree: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "m": self.m,
            "min_weight": self.min_weight,
            "max_weight": self.max_weight,
            "diameter": self.diameter,
            "aspect_ratio": self.aspect_ratio,
            "max_degree": self.max_degree,
            "avg_degree": self.avg_degree,
        }


def graph_summary(graph: WeightedGraph, oracle: Optional[DistanceOracle] = None) -> GraphSummary:
    """Compute a :class:`GraphSummary` for reporting."""
    oracle = oracle or DistanceOracle(graph)
    degrees = [graph.degree(v) for v in range(graph.n)]
    return GraphSummary(
        n=graph.n,
        m=graph.num_edges,
        min_weight=graph.min_weight() if graph.num_edges else 0.0,
        max_weight=graph.max_weight(),
        diameter=oracle.diameter(),
        aspect_ratio=oracle.aspect_ratio(),
        max_degree=max(degrees) if degrees else 0,
        avg_degree=float(np.mean(degrees)) if degrees else 0.0,
    )
