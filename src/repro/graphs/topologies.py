"""Real-world topology snapshots and internet-like generators.

Compact routing's stretch/space claims are only meaningful on the graph
families routers actually see — AS-level internet maps, ISP backbones, road
networks — so this module gives the experiment layer two input classes:

**Pinned snapshot loaders.**  Parsers for three standard wire formats:

* ``caida-aslinks`` — CAIDA AS-relationship lines ``<as1>|<as2>|<rel>``
  (provider–customer ``-1``, peer ``0``; ``#`` comments);
* ``rocketfuel-weights`` — Rocketfuel ISP maps in the inferred-IGP-weight
  format ``<node> <node> <weight>`` with free-form string node ids;
* ``dimacs-gr`` — the 9th DIMACS shortest-path challenge road-network
  format (``c`` comments, one ``p sp <n> <m>`` header, ``a <u> <v> <w>``
  arcs, 1-indexed, both arc directions listed).

Snapshots live in ``data/topologies/`` and are **pinned** by
``MANIFEST.json``: every entry records the file, its wire format, a sha256
checksum, upstream provenance, and the expected graph shape after loading.
:func:`load_topology` refuses a snapshot whose bytes do not hash to the
pinned checksum — an edited or truncated snapshot can never silently feed
an experiment.  The checked-in files are miniature, deterministically
generated stand-ins *in the upstream wire formats* (see
``tools/make_topology_snapshots.py``); drop in a full CAIDA/Rocketfuel/
DIMACS download next to them and pin its checksum to run the real thing —
the loaders are format-complete.

**Internet-like generators at scale.**  :func:`hyperbolic_graph` samples
the Krioukov et al. H² model (power-law degrees, strong clustering — the
geometry underlying internet topology), with angle-sorted candidate
pruning so edge enumeration does not touch all ``n²`` pairs;
:func:`powerlaw_cluster_graph` is the Holme–Kim clustered scale-free
family.  Both are registered as workload families
(:mod:`repro.experiments.workloads`), so benches can sweep them at any
``n``.

Loaded topologies keep only their largest connected component (the
standard reduction in measured-topology studies — stitching fake edges
into a measured AS graph would fabricate links), relabel nodes densely in
sorted-original-id order, and carry the usual adversarial random names
derived from the snapshot name, so repeated loads are bit-identical.
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import make_rng
from repro.utils.validation import require

#: repo-root-relative default snapshot directory
DEFAULT_DATA_DIR = os.path.join("data", "topologies")

#: recognized snapshot wire formats
TOPOLOGY_FORMATS = ("caida-aslinks", "rocketfuel-weights", "dimacs-gr")

RawEdge = Tuple[object, object, float]


# --------------------------------------------------------------------------- #
# wire-format parsers (raw ids -> edge triples)
# --------------------------------------------------------------------------- #
def _open_text(path: str):
    """Open a snapshot, transparently decompressing ``.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def parse_caida_aslinks(path: str) -> List[RawEdge]:
    """CAIDA AS-relationship lines ``as1|as2|rel``; relationship discarded.

    The AS-level graph is unweighted (one hop per AS link); provider/peer
    annotations matter for policy routing, not for the metric the schemes
    route over, so every link gets weight 1.
    """
    edges: List[RawEdge] = []
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            require(len(parts) >= 2, f"malformed as-rel line: {line!r}")
            a, b = int(parts[0]), int(parts[1])
            if a != b:
                edges.append((a, b, 1.0))
    return edges


def parse_rocketfuel_weights(path: str) -> List[RawEdge]:
    """Rocketfuel inferred-weight lines ``<node> <node> <weight>``.

    Node ids are free-form strings (Rocketfuel uses city/POP labels); the
    weight is the inferred IGP link weight.
    """
    edges: List[RawEdge] = []
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            require(len(parts) >= 3,
                    f"malformed rocketfuel weights line: {line!r}")
            u, v, w = parts[0], parts[1], float(parts[2])
            require(w > 0, f"non-positive link weight in {line!r}")
            if u != v:
                edges.append((u, v, w))
    return edges


def parse_dimacs_gr(path: str) -> List[RawEdge]:
    """DIMACS shortest-path ``.gr`` arcs (1-indexed, both directions listed)."""
    edges: List[RawEdge] = []
    declared: Optional[Tuple[int, int]] = None
    with _open_text(path) as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                require(len(parts) == 4 and parts[1] == "sp",
                        f"malformed problem line: {line!r}")
                declared = (int(parts[2]), int(parts[3]))
            elif parts[0] == "a":
                require(len(parts) == 4, f"malformed arc line: {line!r}")
                u, v, w = int(parts[1]), int(parts[2]), float(parts[3])
                require(w > 0, f"non-positive arc weight in {line!r}")
                if u != v:
                    edges.append((u, v, w))
    require(declared is not None, f"{path}: missing 'p sp <n> <m>' header")
    return edges


_PARSERS: Dict[str, Callable[[str], List[RawEdge]]] = {
    "caida-aslinks": parse_caida_aslinks,
    "rocketfuel-weights": parse_rocketfuel_weights,
    "dimacs-gr": parse_dimacs_gr,
}


# --------------------------------------------------------------------------- #
# raw edges -> WeightedGraph
# --------------------------------------------------------------------------- #
def _largest_component_graph(edges: List[RawEdge], name_seed: int) -> WeightedGraph:
    """Relabel raw ids densely, keep the largest component, attach names.

    Parallel links collapse to the minimum weight (the usable one).  Nodes
    are relabeled in sorted-original-id order so the dense index assignment
    is reproducible across loads; the adversarial random names derive from
    ``name_seed``, never from the topology.
    """
    require(len(edges) > 0, "snapshot contains no edges")
    ids = sorted({u for u, _, _ in edges} | {v for _, v, _ in edges},
                 key=lambda x: (str(type(x)), str(x)))
    index = {node: i for i, node in enumerate(ids)}
    n = len(ids)
    best: Dict[Tuple[int, int], float] = {}
    for u, v, w in edges:
        a, b = index[u], index[v]
        key = (a, b) if a < b else (b, a)
        prev = best.get(key)
        if prev is None or w < prev:
            best[key] = w
    # union-find for the largest component
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    for a, b in best:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    roots = np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)
    counts = np.bincount(roots, minlength=n)
    keep_root = int(np.argmax(counts))
    keep = np.flatnonzero(roots == keep_root)
    remap = np.full(n, -1, dtype=np.int64)
    remap[keep] = np.arange(keep.size, dtype=np.int64)
    final = [(int(remap[a]), int(remap[b]), w) for (a, b), w in best.items()
             if remap[a] >= 0 and remap[b] >= 0]
    return WeightedGraph(int(keep.size), final, seed=name_seed)


# --------------------------------------------------------------------------- #
# the pinned manifest
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TopologySnapshot:
    """One pinned snapshot: file, wire format, checksum, provenance."""

    name: str
    file: str
    format: str
    sha256: str
    upstream: str = ""
    snapshot_date: str = ""
    provenance: str = ""
    nodes: Optional[int] = None
    edges: Optional[int] = None


def data_dir(override: Optional[str] = None) -> str:
    """The snapshot directory: explicit > ``$REPRO_TOPOLOGY_DIR`` > default.

    The default resolves relative to the repository root (three levels above
    this file), so loaders work from any working directory.
    """
    if override:
        return override
    env = os.environ.get("REPRO_TOPOLOGY_DIR")
    if env:
        return env
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, DEFAULT_DATA_DIR)


def load_manifest(directory: Optional[str] = None) -> Dict[str, TopologySnapshot]:
    """Parse ``MANIFEST.json`` into snapshot records keyed by name."""
    directory = data_dir(directory)
    path = os.path.join(directory, "MANIFEST.json")
    require(os.path.exists(path), f"topology manifest not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    out: Dict[str, TopologySnapshot] = {}
    for name, entry in raw.items():
        require(entry.get("format") in TOPOLOGY_FORMATS,
                f"manifest entry {name!r} has unknown format "
                f"{entry.get('format')!r}")
        require(bool(entry.get("sha256")),
                f"manifest entry {name!r} is missing its sha256 pin")
        out[name] = TopologySnapshot(
            name=name,
            file=entry["file"],
            format=entry["format"],
            sha256=entry["sha256"],
            upstream=entry.get("upstream", ""),
            snapshot_date=entry.get("snapshot_date", ""),
            provenance=entry.get("provenance", ""),
            nodes=entry.get("nodes"),
            edges=entry.get("edges"),
        )
    return out


def topology_names(directory: Optional[str] = None) -> Tuple[str, ...]:
    """Names of every pinned snapshot (sorted)."""
    return tuple(sorted(load_manifest(directory)))


def sha256_of(path: str) -> str:
    """Streaming sha256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _name_seed(name: str) -> int:
    """Deterministic adversarial-name seed from the snapshot name."""
    return int.from_bytes(hashlib.sha256(name.encode()).digest()[:4], "big")


def load_topology(name: str, directory: Optional[str] = None,
                  verify: bool = True) -> WeightedGraph:
    """Load a pinned snapshot by manifest name.

    The file's sha256 must match the manifest pin (``verify=False`` skips
    the hash for throwaway local experiments — never in committed configs),
    and the loaded graph must match the manifest's expected node/edge
    counts when they are pinned too.
    """
    manifest = load_manifest(directory)
    require(name in manifest,
            f"unknown topology {name!r}; pinned snapshots: "
            f"{sorted(manifest)}")
    snap = manifest[name]
    path = os.path.join(data_dir(directory), snap.file)
    require(os.path.exists(path), f"snapshot file missing: {path}")
    if verify:
        actual = sha256_of(path)
        require(actual == snap.sha256,
                f"snapshot {name!r} failed its checksum pin: "
                f"expected {snap.sha256[:12]}..., got {actual[:12]}... — "
                f"the file was modified or truncated")
    edges = _PARSERS[snap.format](path)
    graph = _largest_component_graph(edges, _name_seed(name))
    if snap.nodes is not None:
        require(graph.n == snap.nodes,
                f"snapshot {name!r}: expected {snap.nodes} nodes after "
                f"largest-component reduction, got {graph.n}")
    if snap.edges is not None:
        require(graph.num_edges == snap.edges,
                f"snapshot {name!r}: expected {snap.edges} edges, "
                f"got {graph.num_edges}")
    return graph


# --------------------------------------------------------------------------- #
# internet-like generators at scale
# --------------------------------------------------------------------------- #
def hyperbolic_graph(n: int, avg_degree: float = 6.0, gamma: float = 2.5,
                     weights: str = "unit", wmin: float = 1.0,
                     wmax: float = 10.0,
                     seed: Optional[int] = None) -> WeightedGraph:
    """Krioukov et al. H² random hyperbolic graph (power law + clustering).

    Nodes are placed on a hyperbolic disk of radius ``R``: angles uniform,
    radii with density ``∝ sinh(α r)`` for ``α = (γ − 1) / 2`` (yielding a
    degree power law with exponent ``γ``), and two nodes are linked iff
    their hyperbolic distance is at most ``R``.  ``R`` is chosen from the
    Krioukov mean-degree approximation
    ``k̄ ≈ (2 α² / (π (α − ½)²)) · n · e^{−R/2}``.

    Edge enumeration sorts nodes by angle and, per node, only examines the
    angular window that can possibly satisfy ``d ≤ R`` given the node's
    radius (the window for a partner at the *smallest* radius) — near-linear
    work for γ > 2 instead of all ``n²`` pairs, with the exact ``cosh``
    distance test applied inside the window.

    The output is post-processed like every other generator (largest
    component stitched connected, adversarial names), so it drops into any
    workload slot.
    """
    require(n >= 2, "need at least two nodes")
    require(gamma > 2.0, "degree exponent must exceed 2 for a finite mean")
    require(avg_degree > 0, "average degree must be positive")
    rng = make_rng(seed)
    alpha = (gamma - 1.0) / 2.0
    prefactor = 2.0 * alpha ** 2 / (np.pi * (alpha - 0.5) ** 2)
    radius = 2.0 * np.log(max(prefactor * n / avg_degree, 1.001))

    theta = rng.uniform(0.0, 2.0 * np.pi, size=n)
    u = rng.uniform(0.0, 1.0, size=n)
    # inverse-CDF of the sinh density, numerically safe via cosh
    r = np.arccosh(1.0 + u * (np.cosh(alpha * radius) - 1.0)) / alpha

    order = np.argsort(theta, kind="stable")
    theta_s, r_s = theta[order], r[order]
    cosh_r, sinh_r = np.cosh(r_s), np.sinh(r_s)
    cosh_R = np.cosh(radius)
    r_min = float(r_s.min())
    # widest useful window per node: partner at r_min; cos Δθ solved from
    # cosh d = cosh r_u cosh r_min − sinh r_u sinh r_min cos Δθ = cosh R
    edges: List[Tuple[int, int, float]] = []
    two_pi = 2.0 * np.pi
    cosh_rmin, sinh_rmin = np.cosh(r_min), np.sinh(r_min)
    for i in range(n):
        denom = sinh_r[i] * sinh_rmin
        if denom <= 0:
            window = np.pi
        else:
            cos_bound = (cosh_r[i] * cosh_rmin - cosh_R) / denom
            window = np.pi if cos_bound <= -1.0 else (
                0.0 if cos_bound >= 1.0 else float(np.arccos(cos_bound)))
        # forward angular neighbors within the window (wrap-around aware);
        # each unordered pair is seen once from its lower-angle endpoint
        lo = theta_s[i]
        hi = lo + window
        j_end = int(np.searchsorted(theta_s, hi, side="right"))
        cand = np.arange(i + 1, j_end, dtype=np.int64)
        if hi > two_pi:
            wrap_end = int(np.searchsorted(theta_s, hi - two_pi, side="right"))
            wrap = np.arange(0, min(wrap_end, i), dtype=np.int64)
            cand = np.concatenate((cand, wrap))
        if cand.size == 0:
            continue
        dtheta = np.abs(theta_s[cand] - lo)
        dtheta = np.minimum(dtheta, two_pi - dtheta)
        cosh_d = cosh_r[i] * cosh_r[cand] \
            - sinh_r[i] * sinh_r[cand] * np.cos(dtheta)
        hits = cand[cosh_d <= cosh_R]
        for j in hits:
            edges.append((int(order[i]), int(order[j]), 1.0))

    import networkx as nx

    from repro.graphs.generators import _finalize

    nxg = nx.Graph()
    nxg.add_nodes_from(range(n))
    nxg.add_edges_from((a, b) for a, b, _ in edges)
    return _finalize(nxg, rng, weights, wmin, wmax)


def powerlaw_cluster_graph(n: int, attach: int = 2, triangle_p: float = 0.3,
                           weights: str = "uniform", wmin: float = 1.0,
                           wmax: float = 10.0,
                           seed: Optional[int] = None) -> WeightedGraph:
    """Holme–Kim clustered scale-free graph (BA growth + triad closure)."""
    require(n >= 3, "need at least three nodes")
    require(0.0 <= triangle_p <= 1.0, "triangle probability must be in [0, 1]")
    import networkx as nx

    from repro.graphs.generators import _finalize

    rng = make_rng(seed)
    m = max(1, min(int(attach), n - 1))
    nxg = nx.powerlaw_cluster_graph(n, m, triangle_p,
                                    seed=int(rng.integers(0, 2**31 - 1)))
    return _finalize(nxg, rng, weights, wmin, wmax)
