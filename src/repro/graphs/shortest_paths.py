"""Shortest paths, balls, and shortest-path trees.

Two engines are provided:

* a pure-Python binary-heap Dijkstra (:func:`dijkstra`) that also returns the
  predecessor array and supports a *cutoff* radius and a *restriction* to a
  node subset — both are needed when growing balls and building cluster trees
  inside induced subgraphs;
* a batch engine (:func:`all_pairs_distances`) built on
  :func:`scipy.sparse.csgraph.dijkstra`, used for the all-pairs distance
  matrix that drives the sparse/dense decomposition (profiling showed the
  APSP matrix is the dominant preprocessing cost, and the SciPy kernel is
  ~40x faster than the Python loop for the graph sizes used in the benches).

:class:`DistanceOracle` wraps the APSP matrix with the ball / nearest-set
queries (``B(u, r)`` and ``N(u, m, Z)``) that the paper's definitions use.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from repro.graphs.graph import WeightedGraph
from repro.graphs.trees import Tree
from repro.utils.validation import check_index, require


def dijkstra(
    graph: WeightedGraph,
    source: int,
    cutoff: Optional[float] = None,
    allowed: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths.

    Parameters
    ----------
    graph:
        The graph.
    source:
        Source node index.
    cutoff:
        If given, nodes farther than ``cutoff`` are left at ``inf``.
    allowed:
        If given, the search is restricted to this node subset (the source
        must belong to it); other nodes are treated as removed.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the distance from ``source`` (``inf`` if unreachable
        under the restrictions) and ``parent[v]`` the predecessor on a
        shortest path (``-1`` for the source and unreachable nodes).
    """
    check_index(source, graph.n, "source")
    dist = np.full(graph.n, np.inf)
    parent = np.full(graph.n, -1, dtype=np.int64)
    allowed_mask: Optional[np.ndarray] = None
    if allowed is not None:
        allowed_mask = np.zeros(graph.n, dtype=bool)
        for v in allowed:
            allowed_mask[v] = True
        require(allowed_mask[source], "source must be inside the allowed set")
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            if allowed_mask is not None and not allowed_mask[v]:
                continue
            nd = d + w
            if cutoff is not None and nd > cutoff + 1e-12:
                continue
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def single_source_distances(graph: WeightedGraph, source: int) -> np.ndarray:
    """Distances from one source using the SciPy kernel."""
    check_index(source, graph.n, "source")
    mat = graph.to_scipy_csr()
    return _scipy_dijkstra(mat, directed=False, indices=source)


def all_pairs_distances(graph: WeightedGraph) -> np.ndarray:
    """All-pairs shortest-path distance matrix (``inf`` across components)."""
    mat = graph.to_scipy_csr()
    if graph.num_edges == 0:
        out = np.full((graph.n, graph.n), np.inf)
        np.fill_diagonal(out, 0.0)
        return out
    return _scipy_dijkstra(mat, directed=False)


def multi_source_distances(graph: WeightedGraph, sources: Sequence[int]) -> np.ndarray:
    """Distance matrix restricted to the given source rows."""
    sources = list(sources)
    for s in sources:
        check_index(s, graph.n, "source")
    if not sources:
        return np.zeros((0, graph.n))
    mat = graph.to_scipy_csr()
    out = _scipy_dijkstra(mat, directed=False, indices=sources)
    return np.atleast_2d(out)


def shortest_path_tree(
    graph: WeightedGraph,
    root: int,
    members: Optional[Sequence[int]] = None,
    within: Optional[Sequence[int]] = None,
) -> Tree:
    """Shortest-path tree rooted at ``root``.

    Parameters
    ----------
    members:
        If given, the tree is pruned to the union of shortest paths from the
        root to these nodes (the root is always included).  This is how the
        paper's trees ``T(c)`` "span all nodes v such that c in S(v)": the
        tree contains the members plus the intermediate nodes on their
        shortest paths.
    within:
        If given, the shortest paths are computed inside the induced subgraph
        on this node set (used for cluster trees of the sparse cover).
    """
    dist, parent = dijkstra(graph, root, allowed=within)
    reachable = np.where(np.isfinite(dist))[0]
    if members is None:
        keep = set(int(v) for v in reachable)
    else:
        keep = {int(root)}
        for v in members:
            v = int(v)
            if not np.isfinite(dist[v]):
                continue
            while v != -1 and v not in keep:
                keep.add(v)
                v = int(parent[v])
    parent_map: Dict[int, int] = {}
    weight_map: Dict[int, float] = {}
    for v in keep:
        if v == root:
            continue
        p = int(parent[v])
        parent_map[v] = p
        weight_map[v] = graph.edge_weight(p, v)
    return Tree(root=int(root), parent=parent_map, edge_weight=weight_map)


class DistanceOracle:
    """All-pairs distances with the ball / nearest-set queries of the paper.

    The oracle pre-computes (or accepts) the full distance matrix and a
    per-source ordering of all nodes by (distance, node-index) — the paper's
    lexicographic tie-break for ``N(u, m, Z)``.
    """

    def __init__(self, graph: WeightedGraph, matrix: Optional[np.ndarray] = None) -> None:
        self.graph = graph
        self.matrix = all_pairs_distances(graph) if matrix is None else np.asarray(matrix, dtype=float)
        require(self.matrix.shape == (graph.n, graph.n),
                "distance matrix shape does not match the graph")
        # argsort is stable for equal keys, so sorting by distance with node
        # index as the implicit secondary key realizes the lexicographic
        # tie-break of Definition N(u, m, Z).
        self._order = np.argsort(self.matrix, axis=1, kind="stable")

    # -- plain distance queries ---------------------------------------- #
    def dist(self, u: int, v: int) -> float:
        """Shortest-path distance between ``u`` and ``v``."""
        return float(self.matrix[u, v])

    def row(self, u: int) -> np.ndarray:
        """All distances from ``u`` (a view into the matrix)."""
        return self.matrix[u]

    def eccentricity(self, u: int) -> float:
        """Largest finite distance from ``u``."""
        finite = self.matrix[u][np.isfinite(self.matrix[u])]
        return float(finite.max()) if finite.size else 0.0

    def diameter(self) -> float:
        """Largest finite pairwise distance."""
        finite = self.matrix[np.isfinite(self.matrix)]
        return float(finite.max()) if finite.size else 0.0

    def min_positive_distance(self) -> float:
        """Smallest nonzero pairwise distance (the paper normalizes this to 1)."""
        vals = self.matrix[np.isfinite(self.matrix) & (self.matrix > 0)]
        return float(vals.min()) if vals.size else 1.0

    def aspect_ratio(self) -> float:
        """Aspect ratio Δ = max distance / min positive distance."""
        d = self.diameter()
        m = self.min_positive_distance()
        return d / m if m > 0 else float("inf")

    # -- balls and nearest sets ----------------------------------------- #
    def ball(self, u: int, radius: float) -> List[int]:
        """``B(u, r)``: nodes within distance ``radius`` of ``u`` (inclusive)."""
        row = self.matrix[u]
        return [int(v) for v in np.where(row <= radius + 1e-12)[0]]

    def ball_size(self, u: int, radius: float) -> int:
        """``|B(u, r)|``."""
        return int(np.count_nonzero(self.matrix[u] <= radius + 1e-12))

    def nodes_by_distance(self, u: int) -> np.ndarray:
        """All nodes sorted by (distance from u, node index)."""
        return self._order[u]

    def nearest(self, u: int, m: int, candidates: Optional[Sequence[int]] = None) -> List[int]:
        """``N(u, m, Z)``: the ``m`` closest nodes of ``Z`` to ``u``.

        Ties are broken by node index (the lexicographic order of the paper).
        Unreachable nodes are never returned.  If fewer than ``m`` candidates
        are reachable, all of them are returned.
        """
        if m <= 0:
            return []
        order = self._order[u]
        if candidates is None:
            allowed = None
        else:
            allowed = np.zeros(self.graph.n, dtype=bool)
            for v in candidates:
                allowed[v] = True
        out: List[int] = []
        row = self.matrix[u]
        for v in order:
            v = int(v)
            if not np.isfinite(row[v]):
                break
            if allowed is not None and not allowed[v]:
                continue
            out.append(v)
            if len(out) == m:
                break
        return out

    def farthest_of(self, u: int, nodes: Sequence[int]) -> float:
        """Largest distance from ``u`` to any node in ``nodes`` (0 if empty)."""
        nodes = list(nodes)
        if not nodes:
            return 0.0
        return float(max(self.matrix[u, v] for v in nodes))
