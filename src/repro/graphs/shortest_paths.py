"""Shortest paths, balls, and shortest-path trees.

Two engines are provided:

* a pure-Python binary-heap Dijkstra (:func:`dijkstra`) that also returns the
  predecessor array and supports a *cutoff* radius and a *restriction* to a
  node subset — both are needed when growing balls and building cluster trees
  inside induced subgraphs;
* a batch engine (:func:`all_pairs_distances`) built on
  :func:`scipy.sparse.csgraph.dijkstra`, used for the all-pairs distance
  matrix that drives the sparse/dense decomposition (profiling showed the
  APSP matrix is the dominant preprocessing cost, and the SciPy kernel is
  ~40x faster than the Python loop for the graph sizes used in the benches).

:class:`DistanceOracle` answers the ball / nearest-set queries (``B(u, r)``
and ``N(u, m, Z)``) that the paper's definitions use.  Since the
distance-backend refactor it is a thin façade over a pluggable
:class:`repro.graphs.backends.DistanceBackend` — eager dense matrix, lazy
LRU-cached per-source rows, or landmark upper bounds — chosen automatically
from the graph size unless the caller picks one.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

from repro.graphs.backends import (
    BackendLike,
    DenseAPSPBackend,
    DistanceBackend,
    resolve_backend,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.trees import Tree
from repro.utils.validation import check_index, require


def dijkstra(
    graph: WeightedGraph,
    source: int,
    cutoff: Optional[float] = None,
    allowed: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Single-source shortest paths.

    Parameters
    ----------
    graph:
        The graph.
    source:
        Source node index.
    cutoff:
        If given, nodes farther than ``cutoff`` are left at ``inf``.
    allowed:
        If given, the search is restricted to this node subset (the source
        must belong to it); other nodes are treated as removed.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the distance from ``source`` (``inf`` if unreachable
        under the restrictions) and ``parent[v]`` the predecessor on a
        shortest path (``-1`` for the source and unreachable nodes).
    """
    check_index(source, graph.n, "source")
    dist = np.full(graph.n, np.inf)
    parent = np.full(graph.n, -1, dtype=np.int64)
    allowed_mask: Optional[np.ndarray] = None
    if allowed is not None:
        allowed_mask = np.zeros(graph.n, dtype=bool)
        for v in allowed:
            allowed_mask[v] = True
        require(allowed_mask[source], "source must be inside the allowed set")
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            if allowed_mask is not None and not allowed_mask[v]:
                continue
            nd = d + w
            if cutoff is not None and nd > cutoff + 1e-12:
                continue
            if nd < dist[v] - 1e-15:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return dist, parent


def single_source_distances(graph: WeightedGraph, source: int) -> np.ndarray:
    """Distances from one source using the SciPy kernel."""
    check_index(source, graph.n, "source")
    mat = graph.to_scipy_csr()
    return _scipy_dijkstra(mat, directed=False, indices=source)


def all_pairs_distances(graph: WeightedGraph) -> np.ndarray:
    """All-pairs shortest-path distance matrix (``inf`` across components)."""
    mat = graph.to_scipy_csr()
    if graph.num_edges == 0:
        out = np.full((graph.n, graph.n), np.inf)
        np.fill_diagonal(out, 0.0)
        return out
    return _scipy_dijkstra(mat, directed=False)


def multi_source_distances(graph: WeightedGraph, sources: Sequence[int]) -> np.ndarray:
    """Distance matrix restricted to the given source rows."""
    sources = list(sources)
    for s in sources:
        check_index(s, graph.n, "source")
    if not sources:
        return np.zeros((0, graph.n))
    mat = graph.to_scipy_csr()
    out = _scipy_dijkstra(mat, directed=False, indices=sources)
    return np.atleast_2d(out)


def shortest_path_tree(
    graph: WeightedGraph,
    root: int,
    members: Optional[Sequence[int]] = None,
    within: Optional[Sequence[int]] = None,
) -> Tree:
    """Shortest-path tree rooted at ``root``.

    Parameters
    ----------
    members:
        If given, the tree is pruned to the union of shortest paths from the
        root to these nodes (the root is always included).  This is how the
        paper's trees ``T(c)`` "span all nodes v such that c in S(v)": the
        tree contains the members plus the intermediate nodes on their
        shortest paths.
    within:
        If given, the shortest paths are computed inside the induced subgraph
        on this node set (used for cluster trees of the sparse cover).
    """
    if within is None and graph.num_edges > 0:
        # unrestricted case: the SciPy kernel returns distances and
        # predecessors in one call, ~40x faster than the Python heap for the
        # tree fan-outs of the sparse strategy and the baselines
        check_index(root, graph.n, "root")
        dist, parent = _scipy_dijkstra(graph.to_scipy_csr(), directed=False,
                                       indices=root, return_predecessors=True)
        parent = np.where(parent < 0, -1, parent).astype(np.int64)
    else:
        dist, parent = dijkstra(graph, root, allowed=within)
    reachable = np.where(np.isfinite(dist))[0]
    if members is None:
        keep = set(int(v) for v in reachable)
    else:
        keep = {int(root)}
        for v in members:
            v = int(v)
            if not np.isfinite(dist[v]):
                continue
            while v != -1 and v not in keep:
                keep.add(v)
                v = int(parent[v])
    parent_map: Dict[int, int] = {}
    weight_map: Dict[int, float] = {}
    for v in keep:
        if v == root:
            continue
        p = int(parent[v])
        parent_map[v] = p
        weight_map[v] = graph.edge_weight(p, v)
    return Tree(root=int(root), parent=parent_map, edge_weight=weight_map)


def exact_distance_oracle(graph: WeightedGraph,
                          oracle: Optional["DistanceOracle"] = None) -> "DistanceOracle":
    """The oracle a routing-scheme construction may use: exact distances only.

    Every scheme (and scheme building block) funnels its default-oracle
    creation through here, so an approximate backend — whether passed
    explicitly or forced globally via ``REPRO_DISTANCE_BACKEND=landmark`` —
    is rejected instead of silently producing wrong tables and stretch.
    """
    if oracle is None:
        oracle = DistanceOracle(graph)
    require(oracle.exact,
            f"routing-scheme construction needs exact distances; the "
            f"{oracle.backend_name!r} backend is approximate (unset "
            f"REPRO_DISTANCE_BACKEND or pass an exact oracle)")
    return oracle


class DistanceOracle:
    """Ball / nearest-set queries of the paper over a pluggable distance store.

    The oracle owns a :class:`DistanceBackend` and derives every query
    (``B(u, r)``, ``N(u, m, Z)``, pair batches, global stats) from the
    backend's row / order primitives.  The per-source ordering of all nodes by
    (distance, node-index) realizes the paper's lexicographic tie-break for
    ``N(u, m, Z)`` identically under every exact backend.

    Parameters
    ----------
    graph:
        The graph.
    matrix:
        Optional pre-computed APSP matrix; forces the dense backend
        (backwards-compatible with the pre-refactor constructor).
    backend:
        A backend instance, a name (``"dense"``, ``"lazy"``, ``"landmark"``,
        ``"auto"``), or ``None`` for automatic selection by graph size
        (see ``REPRO_DISTANCE_BACKEND`` / ``REPRO_DENSE_NODE_LIMIT``).
    """

    def __init__(self, graph: WeightedGraph, matrix: Optional[np.ndarray] = None,
                 backend: BackendLike = None) -> None:
        self.graph = graph
        if matrix is not None:
            require(backend is None or backend == "dense",
                    "an explicit matrix implies the dense backend")
            self.backend: DistanceBackend = DenseAPSPBackend(graph, matrix=matrix)
        else:
            self.backend = resolve_backend(graph, backend)

    # -- backend introspection ------------------------------------------ #
    @property
    def backend_name(self) -> str:
        """Name of the active backend (``dense`` / ``lazy`` / ``landmark``)."""
        return self.backend.name

    @property
    def exact(self) -> bool:
        """Whether distances are exact shortest-path distances."""
        return self.backend.exact

    @property
    def matrix(self) -> np.ndarray:
        """The full APSP matrix — only available on the dense backend.

        Code that needs whole-matrix access should prefer the streaming
        ``rows`` / ``iter_row_blocks`` API, which works under every backend.
        """
        dense = self.backend
        if isinstance(dense, DenseAPSPBackend):
            return dense.matrix
        raise AttributeError(
            f"the {self.backend_name!r} backend does not materialize the full "
            "matrix; use rows()/iter_row_blocks() or build the oracle with "
            "backend='dense'")

    def nbytes(self) -> int:
        """Resident memory of the distance store (approximate)."""
        return self.backend.nbytes()

    def invalidate(self) -> None:
        """Explicitly drop cached distances (pass-through to the backend).

        Normally unnecessary: backends watch ``graph.version`` and self-heal
        on the next query after any mutation through the ``WeightedGraph``
        API.  This hook exists for callers that mutate the topology through a
        side channel the version counter cannot see.
        """
        self.backend.invalidate()

    # -- plain distance queries ---------------------------------------- #
    def dist(self, u: int, v: int) -> float:
        """Shortest-path distance between ``u`` and ``v``."""
        return self.backend.dist(u, v)

    def row(self, u: int) -> np.ndarray:
        """All distances from ``u`` (read-only; do not mutate)."""
        return self.backend.row(u)

    def rows(self, sources: Sequence[int]) -> np.ndarray:
        """Stacked distance rows for ``sources``, shape ``(len, n)``."""
        return self.backend.rows(sources)

    def prefetch(self, sources: Sequence[int]) -> None:
        """Hint that the rows of ``sources`` are about to be queried (batched fill)."""
        self.backend.prefetch(sources)

    def block_rows(self) -> int:
        """Preferred chunk size for streaming row access under this backend."""
        return self.backend.preferred_block()

    def iter_row_blocks(self, block: Optional[int] = None) -> Iterator[Tuple[List[int], np.ndarray]]:
        """Stream ``(source_indices, row_block)`` over all sources in order.

        The canonical way to run a whole-metric computation without holding
        O(n²) memory under the lazy backend.  The default block size matches
        the backends' chunking so streamed requests stay cache-aligned.
        """
        if block is None:
            block = self.block_rows()
        n = self.graph.n
        for start in range(0, n, block):
            chunk = list(range(start, min(start + block, n)))
            yield chunk, self.backend.rows(chunk)

    def iter_prefetched_chunks(self, items: Sequence, source=None) -> Iterator[List]:
        """Stream ``items`` in backend-sized chunks, prefetching rows per chunk.

        ``source`` maps an item to the node index whose row the loop body will
        query (identity by default).  This is the shared shape of every
        "prefetch then consume" loop in the layers above ``graphs/``; sizing
        the chunks here guarantees a prefetch is never truncated below the
        chunk it serves.
        """
        items = list(items)
        block = self.block_rows()
        for start in range(0, len(items), block):
            chunk = items[start:start + block]
            if source is None:
                self.prefetch(chunk)
            else:
                self.prefetch(sorted({source(item) for item in chunk}))
            yield chunk

    def pair_distances(self, sources: Sequence[int], targets: Sequence[int]) -> np.ndarray:
        """Vectorized ``d(sources[i], targets[i])`` for parallel index arrays."""
        us = np.asarray(list(sources), dtype=np.int64)
        vs = np.asarray(list(targets), dtype=np.int64)
        require(us.shape == vs.shape, "sources and targets must have equal length")
        if us.size == 0:
            return np.zeros(0)
        dense = self.backend
        if isinstance(dense, DenseAPSPBackend):
            return dense.matrix[us, vs]
        out = np.empty(us.size)
        # group the batch into per-source runs once (O(B log B)) instead of
        # rescanning the whole source array per unique source
        order = np.argsort(us, kind="stable")
        us_sorted = us[order]
        run_starts = np.flatnonzero(
            np.concatenate(([True], us_sorted[1:] != us_sorted[:-1])))
        run_ends = np.concatenate((run_starts[1:], [us.size]))
        runs = list(zip(us_sorted[run_starts].tolist(),
                        run_starts.tolist(), run_ends.tolist()))
        for chunk in self.iter_prefetched_chunks(runs, source=lambda run: run[0]):
            for s, start, end in chunk:
                indices = order[start:end]
                out[indices] = self.backend.row(int(s))[vs[indices]]
        return out

    def eccentricity(self, u: int) -> float:
        """Largest finite distance from ``u``."""
        row = self.backend.row(u)
        finite = row[np.isfinite(row)]
        return float(finite.max()) if finite.size else 0.0

    def diameter(self) -> float:
        """Largest finite pairwise distance."""
        return self.backend.stats().diameter

    def min_positive_distance(self) -> float:
        """Smallest nonzero pairwise distance (the paper normalizes this to 1)."""
        return self.backend.stats().min_positive

    def aspect_ratio(self) -> float:
        """Aspect ratio Δ = max distance / min positive distance."""
        return self.backend.stats().aspect_ratio

    # -- balls and nearest sets ----------------------------------------- #
    def ball_indices(self, u: int, radius: float) -> np.ndarray:
        """``B(u, r)`` as a sorted index array (zero-copy hot-path variant)."""
        row = self.backend.row(u)
        return np.where(row <= radius + 1e-12)[0]

    def ball(self, u: int, radius: float) -> List[int]:
        """``B(u, r)``: nodes within distance ``radius`` of ``u`` (inclusive)."""
        return [int(v) for v in self.ball_indices(u, radius)]

    def ball_size(self, u: int, radius: float) -> int:
        """``|B(u, r)|``."""
        return int(np.count_nonzero(self.backend.row(u) <= radius + 1e-12))

    def nodes_by_distance(self, u: int) -> np.ndarray:
        """All nodes sorted by (distance from u, node index)."""
        return self.backend.order(u)

    def nearest(self, u: int, m: int, candidates: Optional[Sequence[int]] = None) -> List[int]:
        """``N(u, m, Z)``: the ``m`` closest nodes of ``Z`` to ``u``.

        Ties are broken by node index (the lexicographic order of the paper).
        Unreachable nodes are never returned.  If fewer than ``m`` candidates
        are reachable, all of them are returned.
        """
        if m <= 0:
            return []
        row = self.backend.row(u)
        if candidates is None:
            # the order array puts unreachable nodes last, so the m closest
            # reachable nodes are simply its finite prefix
            order = self.backend.order(u)
            reachable = int(np.count_nonzero(np.isfinite(row)))
            return [int(v) for v in order[:min(m, reachable)]]
        cand = np.unique(np.asarray(list(candidates), dtype=np.int64))
        if cand.size == 0:
            return []
        dists = row[cand]
        finite = np.isfinite(dists)
        cand, dists = cand[finite], dists[finite]
        # lexsort's last key is primary: sort by distance, then node index
        # (cand is sorted, realizing the paper's lexicographic tie-break)
        ranked = cand[np.lexsort((cand, dists))]
        return [int(v) for v in ranked[:m]]

    def nearest_member(self, members: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """For every node, its closest member of ``members`` plus the distance.

        Returns ``(ids, dists)`` of length ``n``.  Ties are broken by member
        node index (the paper's lexicographic rule): members are sorted here,
        so ``argmin``'s first-occurrence rule picks the smallest id — callers
        don't need to maintain the sortedness invariant themselves.  This is
        the batched sibling of ``nearest(u, 1, members)`` used by the
        landmark/pivot selections of the baselines.
        """
        members_arr = np.asarray(sorted(set(int(v) for v in members)), dtype=np.int64)
        require(members_arr.size > 0, "nearest_member needs at least one member")
        n = self.graph.n
        columns = np.arange(n)
        # chunk-wise running argmin keeps memory at O(block · n) even for
        # member sets of size ~n; strict '<' preserves the lexicographic
        # tie-break because chunks ascend by member id
        best_ids = np.full(n, int(members_arr[0]), dtype=np.int64)
        best_dists = np.full(n, np.inf)
        for chunk in self.iter_prefetched_chunks(members_arr):
            chunk_arr = np.asarray(chunk, dtype=np.int64)
            rows = self.backend.rows(chunk_arr)
            local_best = np.argmin(rows, axis=0)
            local_dists = rows[local_best, columns]
            better = local_dists < best_dists
            best_ids[better] = chunk_arr[local_best[better]]
            best_dists[better] = local_dists[better]
        return best_ids, best_dists

    def farthest_of(self, u: int, nodes: Sequence[int]) -> float:
        """Largest distance from ``u`` to any node in ``nodes`` (0 if empty)."""
        nodes = list(nodes)
        if not nodes:
            return 0.0
        row = self.backend.row(u)
        return float(max(row[v] for v in nodes))
