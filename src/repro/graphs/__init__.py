"""Graph substrate: weighted graphs, shortest paths, rooted trees, generators.

Everything in the routing library is expressed over :class:`WeightedGraph`
(an undirected, positively-weighted graph whose nodes additionally carry
*arbitrary names*, as required by the name-independent routing model) and
:class:`Tree` (a rooted spanning structure extracted from a graph).
"""

from repro.graphs.graph import WeightedGraph
from repro.graphs.trees import Tree
from repro.graphs.backends import (
    BACKEND_NAMES,
    DenseAPSPBackend,
    DistanceBackend,
    LandmarkApproxBackend,
    LazyDijkstraBackend,
    resolve_backend,
)
from repro.graphs.shortest_paths import (
    dijkstra,
    all_pairs_distances,
    shortest_path_tree,
    DistanceOracle,
)

__all__ = [
    "WeightedGraph",
    "Tree",
    "dijkstra",
    "all_pairs_distances",
    "shortest_path_tree",
    "DistanceOracle",
    "DistanceBackend",
    "DenseAPSPBackend",
    "LazyDijkstraBackend",
    "LandmarkApproxBackend",
    "resolve_backend",
    "BACKEND_NAMES",
]
