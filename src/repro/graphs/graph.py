"""Weighted undirected graph with arbitrary node names.

The paper's model is a weighted undirected graph ``G = (V, E, w)`` with
``n = |V|`` nodes, positive edge weights, and — because the schemes are
*name-independent* — an arbitrary unique name attached to every node that the
scheme designer does not control.  :class:`WeightedGraph` captures exactly
that: nodes are dense indices ``0..n-1`` used internally by algorithms, and
``names[v]`` is the externally visible identifier that routing requests use.

The adjacency structure is stored both as Python adjacency lists (convenient
for Dijkstra and hop-by-hop simulation) and lazily as a
:class:`scipy.sparse.csr_matrix` (for batch shortest-path computations).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_index, require

Edge = Tuple[int, int, float]


class WeightedGraph:
    """Undirected graph with positive edge weights and arbitrary node names.

    Parameters
    ----------
    n:
        Number of nodes; nodes are indexed ``0..n-1``.
    edges:
        Iterable of ``(u, v, weight)`` triples.  Parallel edges are collapsed
        to the minimum weight; self-loops are rejected.
    names:
        Optional sequence of ``n`` unique, hashable node names.  When omitted,
        adversarial-looking random 60-bit integers are generated (the
        name-independent model forbids topology-aware names, so random names
        are the honest default).
    seed:
        Seed for generated names (ignored when ``names`` is given).
    """

    __slots__ = (
        "n",
        "_adj",
        "_names",
        "_names_view",
        "_name_to_index",
        "_csr",
        "_component_ids",
        "_num_edges",
        "_min_weight",
        "_max_weight",
        "_version",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        names: Optional[Sequence[object]] = None,
        seed: Optional[int] = None,
    ) -> None:
        require(n >= 1, f"graph must have at least one node, got n={n}")
        self.n = int(n)
        self._adj: List[Dict[int, float]] = [dict() for _ in range(self.n)]
        self._num_edges = 0
        self._min_weight = float("inf")
        self._max_weight = 0.0
        for u, v, w in edges:
            self._add_edge(int(u), int(v), float(w))
        self._csr: Optional[sp.csr_matrix] = None
        if names is not None:
            names = list(names)
            require(len(names) == self.n,
                    f"expected {self.n} names, got {len(names)}")
            require(len(set(names)) == self.n, "node names must be unique")
            self._names = names
        else:
            rng = make_rng(seed)
            # 60-bit integers: unique w.h.p.; regenerate on the rare collision.
            while True:
                candidate = [int(x) for x in rng.integers(1, 2**60, size=self.n)]
                if len(set(candidate)) == self.n:
                    self._names = candidate
                    break
        self._names_view = tuple(self._names)
        self._name_to_index = {name: i for i, name in enumerate(self._names)}
        self._component_ids: Optional[np.ndarray] = None
        self._version = 0

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _add_edge(self, u: int, v: int, w: float) -> None:
        check_index(u, self.n, "u")
        check_index(v, self.n, "v")
        require(u != v, f"self-loop on node {u} is not allowed")
        require(w > 0 and np.isfinite(w), f"edge weight must be positive and finite, got {w}")
        if v in self._adj[u]:
            # Collapse parallel edges to the cheapest one.
            w = min(w, self._adj[u][v])
        else:
            self._num_edges += 1
        self._adj[u][v] = w
        self._adj[v][u] = w
        self._min_weight = min(self._min_weight, w)
        self._max_weight = max(self._max_weight, w)

    def _invalidate_caches(self) -> None:
        """Drop every derived view and advance the mutation version.

        The CSR view and the cached component ids are rebuilt lazily on next
        access, so connectivity queries (and the pair sampler built on them)
        stay correct after mutation.  Distance backends watch :attr:`version`
        and drop their own row caches on the next query, so a live
        ``DistanceOracle`` self-heals too.
        """
        self._csr = None
        self._component_ids = None
        self._version += 1

    def _recompute_weight_range(self) -> None:
        self._min_weight = float("inf")
        self._max_weight = 0.0
        for _, _, w in self.edges():
            self._min_weight = min(self._min_weight, w)
            self._max_weight = max(self._max_weight, w)

    @property
    def version(self) -> int:
        """Monotone mutation counter; bumps on every topology/weight change."""
        return self._version

    def add_edge(self, u: int, v: int, w: float) -> None:
        """Insert a new edge (or relax a parallel one), invalidating caches."""
        self._add_edge(int(u), int(v), float(w))
        self._invalidate_caches()

    def remove_edge(self, u: int, v: int) -> float:
        """Delete the edge ``{u, v}`` and return its weight (raises if absent)."""
        u, v = int(u), int(v)
        w = self.edge_weight(u, v)
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        if w <= self._min_weight or w >= self._max_weight:
            self._recompute_weight_range()
        self._invalidate_caches()
        return w

    def set_edge_weight(self, u: int, v: int, w: float) -> float:
        """Overwrite the weight of an existing edge; returns the old weight.

        Unlike :meth:`add_edge` this does not collapse to the minimum — weight
        *increases* (congestion, degradation events) are applied verbatim.
        """
        u, v = int(u), int(v)
        w = float(w)
        old = self.edge_weight(u, v)
        require(w > 0 and np.isfinite(w),
                f"edge weight must be positive and finite, got {w}")
        self._adj[u][v] = w
        self._adj[v][u] = w
        if old <= self._min_weight or old >= self._max_weight:
            self._recompute_weight_range()
        else:
            self._min_weight = min(self._min_weight, w)
            self._max_weight = max(self._max_weight, w)
        self._invalidate_caches()
        return old

    def detach_node(self, u: int) -> List[Tuple[int, float]]:
        """Remove every edge incident to ``u`` (node failure).

        The node itself stays in the graph (as an isolated node keeping its
        name and index); the removed ``(neighbor, weight)`` pairs are returned
        so a later recovery can re-attach them.
        """
        check_index(u, self.n, "u")
        removed = sorted(self._adj[u].items())
        for v, _ in removed:
            del self._adj[v][u]
        self._adj[u].clear()
        self._num_edges -= len(removed)
        if removed:
            self._recompute_weight_range()
        self._invalidate_caches()
        return removed

    def apply_events(self, events: Iterable[object]) -> List[object]:
        """Apply a batch of mutation events in order; returns their records.

        Each event must expose ``apply(graph)`` (duck-typed, so this module
        stays below :mod:`repro.dynamics` in the layering) and is applied
        exactly once; whatever record ``apply`` returns is collected.  See
        :func:`repro.dynamics.events.apply_events` for the high-level wrapper
        that packages the records into a ``GraphDelta`` for scheme repair.
        """
        return [event.apply(self) for event in events]

    @classmethod
    def from_networkx(cls, g, weight: str = "weight",
                      names: Optional[Sequence[object]] = None,
                      seed: Optional[int] = None) -> "WeightedGraph":
        """Build from a :mod:`networkx` graph (nodes are relabelled 0..n-1)."""
        nodes = list(g.nodes())
        index = {node: i for i, node in enumerate(nodes)}
        edges = []
        for a, b, data in g.edges(data=True):
            w = float(data.get(weight, 1.0))
            edges.append((index[a], index[b], w))
        return cls(len(nodes), edges, names=names, seed=seed)

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (node attribute ``name``)."""
        import networkx as nx

        g = nx.Graph()
        for v in range(self.n):
            g.add_node(v, name=self._names[v])
        for u, v, w in self.edges():
            g.add_edge(u, v, weight=w)
        return g

    def copy_with_weights(self, weight_fn) -> "WeightedGraph":
        """Return a copy whose edge weights are ``weight_fn(u, v, old_weight)``."""
        edges = [(u, v, float(weight_fn(u, v, w))) for u, v, w in self.edges()]
        return WeightedGraph(self.n, edges, names=list(self._names))

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return self._num_edges

    @property
    def names(self) -> List[object]:
        """The list of node names, indexed by node index (defensive copy)."""
        return list(self._names)

    def names_view(self) -> Tuple[object, ...]:
        """Zero-copy immutable view of the names, for hot paths.

        The ``names`` property copies the full list on every access; routing
        and evaluation loops that touch a name per hop use this view instead.
        """
        return self._names_view

    def name_at(self, v: int) -> object:
        """Name of node ``v`` without the bounds re-check (trusted hot path)."""
        return self._names[v]

    def name_of(self, v: int) -> object:
        """Name of node ``v``."""
        check_index(v, self.n, "v")
        return self._names[v]

    def index_of(self, name: object) -> int:
        """Node index of ``name`` (raises ``KeyError`` for unknown names)."""
        return self._name_to_index[name]

    def has_name(self, name: object) -> bool:
        """Whether ``name`` belongs to some node."""
        return name in self._name_to_index

    def neighbors(self, u: int) -> List[Tuple[int, float]]:
        """List of ``(neighbor, weight)`` pairs of node ``u``."""
        check_index(u, self.n, "u")
        return list(self._adj[u].items())

    def neighbor_indices(self, u: int) -> List[int]:
        """Neighbors of ``u`` in a fixed (port) order."""
        check_index(u, self.n, "u")
        return sorted(self._adj[u].keys())

    def degree(self, u: int) -> int:
        """Degree of node ``u``."""
        check_index(u, self.n, "u")
        return len(self._adj[u])

    def max_degree(self) -> int:
        """Maximum degree over all nodes."""
        return max(len(a) for a in self._adj)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists."""
        check_index(u, self.n, "u")
        check_index(v, self.n, "v")
        return v in self._adj[u]

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}`` (raises if absent)."""
        if not self.has_edge(u, v):
            raise ValidationError(f"no edge between {u} and {v}")
        return self._adj[u][v]

    def edges(self) -> Iterator[Edge]:
        """Iterate over edges once each as ``(u, v, weight)`` with ``u < v``."""
        for u in range(self.n):
            for v, w in self._adj[u].items():
                if u < v:
                    yield (u, v, w)

    def min_weight(self) -> float:
        """Smallest edge weight (``inf`` for an edgeless graph)."""
        return self._min_weight

    def max_weight(self) -> float:
        """Largest edge weight (0 for an edgeless graph)."""
        return self._max_weight

    def total_weight(self) -> float:
        """Sum of all edge weights."""
        return float(sum(w for _, _, w in self.edges()))

    # ------------------------------------------------------------------ #
    # matrix / structural views
    # ------------------------------------------------------------------ #
    def to_scipy_csr(self) -> sp.csr_matrix:
        """Symmetric CSR adjacency matrix (cached)."""
        if self._csr is None:
            rows, cols, vals = [], [], []
            for u, v, w in self.edges():
                rows.extend((u, v))
                cols.extend((v, u))
                vals.extend((w, w))
            self._csr = sp.csr_matrix(
                (vals, (rows, cols)), shape=(self.n, self.n), dtype=np.float64
            )
        return self._csr

    def subgraph(self, nodes: Sequence[int]) -> Tuple["WeightedGraph", List[int]]:
        """Induced subgraph on ``nodes``.

        Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
        index of subgraph node ``i``.  Node names are carried over, so routing
        by name keeps working inside the subgraph.
        """
        nodes = sorted(set(int(v) for v in nodes))
        require(len(nodes) >= 1, "subgraph needs at least one node")
        for v in nodes:
            check_index(v, self.n, "node")
        local = {v: i for i, v in enumerate(nodes)}
        edges = []
        for u in nodes:
            for v, w in self._adj[u].items():
                if v in local and u < v:
                    edges.append((local[u], local[v], w))
        names = [self._names[v] for v in nodes]
        return WeightedGraph(len(nodes), edges, names=names), nodes

    def connected_components(self) -> List[List[int]]:
        """Connected components as lists of node indices (largest first)."""
        seen = np.zeros(self.n, dtype=bool)
        components: List[List[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            stack = [start]
            seen[start] = True
            comp = []
            while stack:
                u = stack.pop()
                comp.append(u)
                for v in self._adj[u]:
                    if not seen[v]:
                        seen[v] = True
                        stack.append(v)
            components.append(sorted(comp))
        components.sort(key=len, reverse=True)
        return components

    def component_ids(self) -> np.ndarray:
        """Connected-component id of every node (cached).

        Ids are assigned so that two nodes are connected iff their ids are
        equal; the vectorized pair sampler tests connectivity with one array
        comparison instead of a distance query per candidate pair.
        """
        if self._component_ids is None:
            ids = np.full(self.n, -1, dtype=np.int64)
            for index, component in enumerate(self.connected_components()):
                for v in component:
                    ids[v] = index
            self._component_ids = ids
        return self._component_ids

    def is_connected(self) -> bool:
        """Whether the graph is connected."""
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self.n}, m={self._num_edges})"
