"""Experiment E1 — Theorem 1's space–stretch trade-off.

For k = 1..K the AGM scheme is built on each workload graph; the bench
reports, per (graph, k): measured max/avg stretch, max table bits, and the
theoretical references ``O(k)`` stretch and ``k^2 n^{1/k} log^3 n`` /
``k^2 n^{3/k} log^3 n`` space so the shape can be compared.

The body lives in :func:`repro.experiments.matrix.kinds.run_tradeoff`
(kind ``"tradeoff"``, config ``configs/e1_tradeoff.json``); this module is
the historical entry point kept as a shim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import run_tradeoff
from repro.experiments.reporting import format_table

__all__ = ["run", "main"]


def run(quick: bool = True, seed: int = 0, ks: Optional[Sequence[int]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E1 and return its result table."""
    return run_tradeoff(quick=quick, seed=seed, ks=ks, num_pairs=num_pairs)


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows, columns=result.metadata["columns"],
        title="E1: Theorem 1 space-stretch trade-off (AGM scheme)"))


if __name__ == "__main__":  # pragma: no cover
    main()
