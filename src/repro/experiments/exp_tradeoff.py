"""Experiment E1 — Theorem 1's space–stretch trade-off.

For k = 1..K the AGM scheme is built on each workload graph; the bench
reports, per (graph, k): measured max/avg stretch, max table bits, and the
theoretical references ``O(k)`` stretch and ``k^2 n^{1/k} log^3 n`` /
``k^2 n^{3/k} log^3 n`` space so the shape can be compared.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import lemma11_table_bits, theorem1_table_bits
from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult, run_matrix
from repro.experiments.reporting import format_table
from repro.experiments.workloads import standard_suite


def run(quick: bool = True, seed: int = 0, ks: Optional[Sequence[int]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E1 and return its result table."""
    ks = list(ks) if ks is not None else ([1, 2, 3] if quick else [1, 2, 3, 4, 5])
    num_pairs = num_pairs or (60 if quick else 300)
    graphs = [(spec.name, spec.build(quick=quick)) for spec in standard_suite(quick)]
    params = AGMParams.experiment()
    result = run_matrix(
        "E1-theorem1-tradeoff",
        schemes=["agm"],
        graphs=graphs,
        ks=ks,
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs={"agm": {"params": params}},
    )
    for row in result.rows:
        n, k = int(row["n"]), int(row["k"])
        row["stretch_bound_O(k)"] = 8 * k + 4
        row["bits_bound_thm1"] = theorem1_table_bits(n, k)
        row["bits_bound_lemma11"] = lemma11_table_bits(n, k)
    result.metadata["params"] = "AGMParams.experiment()"
    return result


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows,
        columns=["graph", "n", "k", "max_stretch", "avg_stretch", "stretch_bound_O(k)",
                 "max_table_bits", "bits_bound_thm1", "failures", "fallback_uses"],
        title="E1: Theorem 1 space-stretch trade-off (AGM scheme)"))


if __name__ == "__main__":  # pragma: no cover
    main()
