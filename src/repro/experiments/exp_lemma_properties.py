"""Experiments E5/E6 — empirical verification of the structural lemmas.

The paper's Figures 1 and 2 illustrate the two containment lemmas that make
the decomposition work; this experiment checks them exhaustively on workload
graphs:

* **Lemma 2** (dense neighborhoods): if level ``i`` is dense for ``u`` then
  every ``v ∈ F(u,i) = B(u, 2^{a(u,i)-1})`` has ``a(u,i) ∈ R(v)``;
* **Lemma 3** (sparse neighborhoods): if level ``i`` is sparse for ``u`` then
  every ``v ∈ E(u,i) = B(u, 2^{a(u,i+1)}/6)`` has ``c(u,i) ∈ S(v)``;
* **Claims 1–2**: hit / load properties of the sampled landmark hierarchy.

The result rows report the number of (u, i, v) triples checked and how many
violated the containment (expected: zero for Lemma 2, which is deterministic,
and zero or a tiny w.h.p. failure count for Lemma 3 / the claims).
"""

from __future__ import annotations

from typing import Optional

from repro.core.decomposition import NeighborhoodDecomposition
from repro.core.landmarks import LandmarkHierarchy
from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult
from repro.experiments.reporting import format_table
from repro.experiments.workloads import standard_suite
from repro.graphs.shortest_paths import DistanceOracle


def check_lemma2(decomposition: NeighborhoodDecomposition) -> dict:
    """Count (u, i, v) triples violating Lemma 2."""
    checked = 0
    violations = 0
    for u in range(decomposition.n):
        for i in range(decomposition.k + 1):
            if not decomposition.is_dense(u, i):
                continue
            a_ui = decomposition.range(u, i)
            for v in decomposition.f_ball(u, i):
                checked += 1
                if a_ui not in decomposition.extended_range_set(v):
                    violations += 1
    return {"checked": checked, "violations": violations}


def check_lemma3(decomposition: NeighborhoodDecomposition,
                 landmarks: LandmarkHierarchy) -> dict:
    """Count (u, i, v) triples violating Lemma 3."""
    checked = 0
    violations = 0
    for u in range(decomposition.n):
        for i in range(decomposition.k + 1):
            if decomposition.is_dense(u, i):
                continue
            center = landmarks.center(u, i)
            for v in decomposition.e_ball(u, i):
                checked += 1
                if center not in landmarks.nearby_union(v):
                    violations += 1
    return {"checked": checked, "violations": violations}


def run(quick: bool = True, seed: int = 0, k: int = 3,
        params: Optional[AGMParams] = None) -> ExperimentResult:
    """Run E5/E6 and return the per-graph violation counts."""
    params = params or AGMParams.paper()
    suite = standard_suite(quick)[:2] if quick else standard_suite(quick)
    result = ExperimentResult(name="E5-E6-lemma-properties")
    for spec in suite:
        graph = spec.build(quick=quick)
        oracle = DistanceOracle(graph)
        decomposition = NeighborhoodDecomposition(graph, k, oracle=oracle, params=params)
        landmarks = LandmarkHierarchy(graph, k, oracle=oracle,
                                      decomposition=decomposition, params=params,
                                      seed=seed)
        lemma2 = check_lemma2(decomposition)
        lemma3 = check_lemma3(decomposition, landmarks)
        claims = landmarks.verify_claims(sample_nodes=range(0, graph.n, max(graph.n // 16, 1)))
        result.add_row(
            graph=spec.name, n=graph.n, k=k,
            lemma2_checked=lemma2["checked"], lemma2_violations=lemma2["violations"],
            lemma3_checked=lemma3["checked"], lemma3_violations=lemma3["violations"],
            claim1_holds=claims["claim1"], claim2_holds=claims["claim2"],
        )
    return result


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(result.rows,
                       title="E5/E6: Lemma 2 / Lemma 3 / Claims 1-2 verification"))


if __name__ == "__main__":  # pragma: no cover
    main()
