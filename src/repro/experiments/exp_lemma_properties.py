"""Experiments E5/E6 — empirical verification of the structural lemmas.

The paper's Figures 1 and 2 illustrate the two containment lemmas that make
the decomposition work; this experiment checks them exhaustively on workload
graphs:

* **Lemma 2** (dense neighborhoods): if level ``i`` is dense for ``u`` then
  every ``v ∈ F(u,i) = B(u, 2^{a(u,i)-1})`` has ``a(u,i) ∈ R(v)``;
* **Lemma 3** (sparse neighborhoods): if level ``i`` is sparse for ``u`` then
  every ``v ∈ E(u,i) = B(u, 2^{a(u,i+1)}/6)`` has ``c(u,i) ∈ S(v)``;
* **Claims 1–2**: hit / load properties of the sampled landmark hierarchy.

The result rows report the number of (u, i, v) triples checked and how many
violated the containment (expected: zero for Lemma 2, which is deterministic,
and zero or a tiny w.h.p. failure count for Lemma 3 / the claims).

The body (and the ``check_lemma2`` / ``check_lemma3`` counters, re-exported
here) lives in :mod:`repro.experiments.matrix.kinds` (kind
``"lemma-properties"``, config ``configs/e5_lemma_properties.json``); this
module is the historical entry point kept as a shim.
"""

from __future__ import annotations

from typing import Optional

from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import (  # noqa: F401 - re-exports
    check_lemma2,
    check_lemma3,
    run_lemma_properties,
)
from repro.experiments.reporting import format_table

__all__ = ["run", "main", "check_lemma2", "check_lemma3"]


def run(quick: bool = True, seed: int = 0, k: int = 3,
        params: Optional[AGMParams] = None) -> ExperimentResult:
    """Run E5/E6 and return the per-graph violation counts."""
    return run_lemma_properties(quick=quick, seed=seed, k=k, params=params)


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(result.rows,
                       title="E5/E6: Lemma 2 / Lemma 3 / Claims 1-2 verification"))


if __name__ == "__main__":  # pragma: no cover
    main()
