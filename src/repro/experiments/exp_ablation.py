"""Experiment E12 — ablation of the decomposition's two design constants.

The construction hinges on two constants fixed in Definition 2 and Lemma 3:

* the **dense gap** (3): a level is dense when the population multiplies
  within at most 3 radius doublings — larger gaps classify more levels as
  dense (more cover trees, cheaper sparse searches), smaller gaps push work
  onto the sparse strategy;
* the **sparse shrink** (6): the sparse guarantee ball is
  ``E(u,i) = B(u, 2^{a(u,i+1)}/6)`` — smaller divisors promise more coverage
  per level (fewer phases reach the destination) but weaken the containment
  argument of Lemma 3, larger divisors are safer but push discovery to later,
  more expensive levels.

This ablation sweeps both constants around the paper's values and measures
stretch, table size and how often the safety fallback fires, demonstrating
that the published constants sit in the sane region (correctness never
degrades, stretch moves modestly).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult, evaluate_scheme_on_graph
from repro.experiments.reporting import format_table
from repro.experiments.workloads import standard_suite
from repro.graphs.shortest_paths import DistanceOracle


def run(quick: bool = True, seed: int = 0, k: int = 2,
        dense_gaps: Optional[Sequence[int]] = None,
        sparse_shrinks: Optional[Sequence[float]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E12 and return one row per (dense_gap, sparse_shrink) setting."""
    dense_gaps = list(dense_gaps) if dense_gaps is not None else [1, 3, 5]
    sparse_shrinks = list(sparse_shrinks) if sparse_shrinks is not None else [3.0, 6.0, 12.0]
    num_pairs = num_pairs or (40 if quick else 200)
    spec = standard_suite(quick)[0]
    graph = spec.build(quick=quick)
    oracle = DistanceOracle(graph)
    result = ExperimentResult(name="E12-ablation")
    for gap in dense_gaps:
        for shrink in sparse_shrinks:
            params = AGMParams.experiment().with_overrides(dense_gap=gap,
                                                           sparse_shrink=shrink)
            row = evaluate_scheme_on_graph("agm", graph, k, num_pairs=num_pairs,
                                           seed=seed, oracle=oracle,
                                           scheme_kwargs={"params": params})
            row["dense_gap"] = gap
            row["sparse_shrink"] = shrink
            row["graph"] = spec.name
            result.add_row(**row)
    return result


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows,
        columns=["dense_gap", "sparse_shrink", "max_stretch", "avg_stretch",
                 "max_table_bits", "failures", "fallback_uses"],
        title="E12: ablation of the dense-gap and sparse-shrink constants"))


if __name__ == "__main__":  # pragma: no cover
    main()
