"""Experiment E12 — ablation of the decomposition's two design constants.

The construction hinges on two constants fixed in Definition 2 and Lemma 3:

* the **dense gap** (3): a level is dense when the population multiplies
  within at most 3 radius doublings — larger gaps classify more levels as
  dense (more cover trees, cheaper sparse searches), smaller gaps push work
  onto the sparse strategy;
* the **sparse shrink** (6): the sparse guarantee ball is
  ``E(u,i) = B(u, 2^{a(u,i+1)}/6)`` — smaller divisors promise more coverage
  per level (fewer phases reach the destination) but weaken the containment
  argument of Lemma 3, larger divisors are safer but push discovery to later,
  more expensive levels.

This ablation sweeps both constants around the paper's values and measures
stretch, table size and how often the safety fallback fires, demonstrating
that the published constants sit in the sane region (correctness never
degrades, stretch moves modestly).

The body lives in :func:`repro.experiments.matrix.kinds.run_ablation`
(kind ``"ablation"``, config ``configs/e12_ablation.json``); this module is
the historical entry point kept as a shim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import run_ablation
from repro.experiments.reporting import format_table

__all__ = ["run", "main"]


def run(quick: bool = True, seed: int = 0, k: int = 2,
        dense_gaps: Optional[Sequence[int]] = None,
        sparse_shrinks: Optional[Sequence[float]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E12 and return one row per (dense_gap, sparse_shrink) setting."""
    return run_ablation(quick=quick, seed=seed, k=k, dense_gaps=dense_gaps,
                        sparse_shrinks=sparse_shrinks, num_pairs=num_pairs)


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows, columns=result.metadata["columns"],
        title="E12: ablation of the dense-gap and sparse-shrink constants"))


if __name__ == "__main__":  # pragma: no cover
    main()
