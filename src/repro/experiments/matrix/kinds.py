"""The experiment bodies the matrix runner can execute, keyed by kind name.

The six historical ``exp_*`` modules each carried one of these bodies plus
its own ad-hoc argument plumbing; the bodies now live here (one function per
kind, same row-for-row behavior) and the ``exp_*`` entry points are thin
shims over them.  Three general kinds join them:

``grid``
    schemes x graphs x k through :func:`repro.experiments.harness.run_matrix`
    — pair-sampled stretch/space measurement on any graph source, including
    the pinned real-topology snapshots.
``traffic``
    The same grid streamed under a seeded traffic model
    (:func:`run_traffic_matrix`) with a packet budget.
``live``
    The live-network timeline (:func:`run_live_matrix`): churn scenario +
    traffic model + repair on one clock, one row per epoch — the kind the
    adversarial scenario configs (flash crowd, hotspot storm,
    partition-under-load) run through.

Every kind has the same shape: ``fn(quick=..., seed=..., **params) ->
ExperimentResult``.  ``params`` arrive straight from a config file, so the
helpers below also translate the JSON-friendly spellings — graph sources,
``{"quick": a, "full": b}`` size pairs, ``"50k"`` counts, and AGM parameter
presets by name (``{"agm": {"params": "experiment"}}``).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.analysis import growth_ratio, lemma11_table_bits, theorem1_table_bits
from repro.core.params import AGMParams
from repro.experiments.harness import (
    ExperimentResult,
    evaluate_scheme_on_graph,
    run_live_matrix,
    run_matrix,
    run_traffic_matrix,
)
from repro.experiments.matrix.spec import parse_count, pick_size
from repro.experiments.workloads import (
    aspect_ratio_suite,
    make_workload,
    standard_suite,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle

__all__ = [
    "KINDS",
    "KIND_NAMES",
    "resolve_graph_sources",
    "graph_factory_from_source",
    "resolve_scheme_kwargs",
    "run_tradeoff",
    "run_comparison",
    "run_scale_free",
    "run_stretch_growth",
    "run_ablation",
    "run_lemma_properties",
    "run_grid",
    "run_traffic_grid",
    "run_live_timeline",
    "check_lemma2",
    "check_lemma3",
    "ALL_SCHEMES",
]

ALL_SCHEMES = ["shortest-path", "cowen", "thorup-zwick", "awerbuch-peleg",
               "exponential", "agm"]


# ---------------------------------------------------------------------------
# config-value resolution helpers


def _resolve_params_value(value: Any) -> AGMParams:
    """An ``AGMParams`` from a preset name, override mapping, or instance."""
    if isinstance(value, AGMParams):
        return value
    if isinstance(value, str):
        preset = getattr(AGMParams, value, None)
        if preset is None or not callable(preset):
            raise ValueError(f"unknown AGMParams preset {value!r} "
                             "(use 'experiment' or 'paper')")
        return preset()
    if isinstance(value, Mapping):
        overrides = dict(value)
        base_name = overrides.pop("base", "experiment")
        base = _resolve_params_value(base_name)
        return base.with_overrides(**overrides) if overrides else base
    raise ValueError(f"cannot resolve AGMParams from {value!r}")


def resolve_scheme_kwargs(
        raw: Optional[Mapping[str, Mapping[str, Any]]]) -> Dict[str, dict]:
    """Per-scheme constructor kwargs with config spellings expanded.

    The only translated key is ``params``: a preset name string
    (``"experiment"``, ``"paper"``) or an override mapping
    (``{"base": "experiment", "dense_gap": 5}``) becomes the
    :class:`AGMParams` instance the factory expects.
    """
    resolved: Dict[str, dict] = {}
    for scheme, kwargs in (raw or {}).items():
        kwargs = dict(kwargs)
        if "params" in kwargs:
            kwargs["params"] = _resolve_params_value(kwargs["params"])
        resolved[scheme] = kwargs
    return resolved


def _build_source(source: Any, quick: bool,
                  seed_offset: int) -> List[Tuple[str, WeightedGraph]]:
    """One graph source entry → ``(label, graph)`` pairs.

    Accepted spellings::

        "topology:caida-as-mini"                  # pinned snapshot, verbatim
        "suite:standard"                          # the standard workload suite
        {"suite": "standard", "limit": 2}
        {"topology": "road-mini", "label": "road"}
        {"family": "hyperbolic", "n": {"quick": 300, "full": 3000}, "seed": 7}

    Generated families honour ``seed_offset`` (the run seed), so a seed
    sweep re-draws them; topology snapshots are byte-pinned and ignore it.
    """
    if isinstance(source, str):
        if source.startswith("topology:"):
            source = {"topology": source.split(":", 1)[1]}
        elif source.startswith("suite:"):
            source = {"suite": source.split(":", 1)[1]}
        else:
            raise ValueError(f"string graph source {source!r} must be "
                             "'topology:<name>' or 'suite:<name>'")
    if not isinstance(source, Mapping):
        raise ValueError(f"graph source must be a string or mapping, got {source!r}")
    source = dict(source)
    if "suite" in source:
        suite_name = source.pop("suite")
        limit = source.pop("limit", None)
        if source:
            raise ValueError(f"suite source: unknown keys {sorted(source)}")
        if suite_name != "standard":
            raise ValueError(f"unknown suite {suite_name!r} (only 'standard')")
        specs = standard_suite(quick)
        if limit is not None:
            specs = specs[:int(limit)]
        return [(spec.name, spec.build(quick=quick, seed_offset=seed_offset))
                for spec in specs]
    if "topology" in source:
        name = source.pop("topology")
        label = source.pop("label", name)
        if source:
            raise ValueError(f"topology source: unknown keys {sorted(source)}")
        return [(label, make_workload(f"topology:{name}", 0))]
    if "family" in source:
        family = source.pop("family")
        n = pick_size(source.pop("n", None), quick, where=f"{family}: n")
        if n is None:
            raise ValueError(f"family source {family!r} needs 'n'")
        seed = int(source.pop("seed", 0)) + int(seed_offset)
        label = source.pop("label", family)
        if source:
            raise ValueError(f"family source: unknown keys {sorted(source)}")
        return [(label, make_workload(family, int(n), seed=seed))]
    raise ValueError(f"graph source needs 'suite', 'topology' or 'family': {source!r}")


def resolve_graph_sources(sources: Any, quick: bool,
                          seed_offset: int = 0) -> List[Tuple[str, WeightedGraph]]:
    """A config's graph list → the ``(label, graph)`` pairs the harness takes."""
    if isinstance(sources, (str, Mapping)):
        sources = [sources]
    out: List[Tuple[str, WeightedGraph]] = []
    for source in sources:
        out.extend(_build_source(source, quick, seed_offset))
    if not out:
        raise ValueError("graph sources resolved to an empty list")
    return out


def graph_factory_from_source(source: Any, quick: bool,
                              seed_offset: int = 0) -> Callable[[], WeightedGraph]:
    """A zero-arg factory for kinds that mutate their graph (live churn).

    Each call re-resolves the source, so every scheme's timeline gets its
    own instance — topology snapshots re-parse from the pinned file,
    generated families re-draw from the same seed.
    """
    def factory() -> WeightedGraph:
        built = _build_source(source, quick, seed_offset)
        if len(built) != 1:
            raise ValueError(f"live graph source must resolve to one graph, "
                             f"got {len(built)}")
        return built[0][1]
    return factory


# ---------------------------------------------------------------------------
# the six historical experiment bodies (E1, E2, E3, E4, E12, E5/E6)


def run_tradeoff(quick: bool = True, seed: int = 0,
                 ks: Optional[Sequence[int]] = None,
                 num_pairs: Optional[int] = None) -> ExperimentResult:
    """E1 — Theorem 1's space–stretch trade-off for the AGM scheme."""
    ks = list(ks) if ks is not None else ([1, 2, 3] if quick else [1, 2, 3, 4, 5])
    num_pairs = num_pairs or (60 if quick else 300)
    graphs = [(spec.name, spec.build(quick=quick, seed_offset=seed))
              for spec in standard_suite(quick)]
    params = AGMParams.experiment()
    result = run_matrix(
        "E1-theorem1-tradeoff",
        schemes=["agm"],
        graphs=graphs,
        ks=ks,
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs={"agm": {"params": params}},
    )
    for row in result.rows:
        n, k = int(row["n"]), int(row["k"])
        row["stretch_bound_O(k)"] = 8 * k + 4
        row["bits_bound_thm1"] = theorem1_table_bits(n, k)
        row["bits_bound_lemma11"] = lemma11_table_bits(n, k)
    result.metadata["params"] = "AGMParams.experiment()"
    result.metadata["columns"] = [
        "graph", "n", "k", "max_stretch", "avg_stretch", "stretch_bound_O(k)",
        "max_table_bits", "bits_bound_thm1", "failures", "fallback_uses"]
    return result


def run_comparison(quick: bool = True, seed: int = 0, k: int = 3,
                   schemes: Optional[Sequence[str]] = None,
                   num_pairs: Optional[int] = None) -> ExperimentResult:
    """E2 — the Section 1.3 comparison of all six routing schemes."""
    schemes = list(schemes) if schemes is not None else list(ALL_SCHEMES)
    num_pairs = num_pairs or (60 if quick else 300)
    suite = standard_suite(quick)[:2] if quick else standard_suite(quick)
    graphs = [(spec.name, spec.build(quick=quick, seed_offset=seed))
              for spec in suite]
    result = run_matrix(
        "E2-scheme-comparison",
        schemes=schemes,
        graphs=graphs,
        ks=[k],
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs={"agm": {"params": AGMParams.experiment()}},
    )
    result.metadata["columns"] = [
        "graph", "scheme", "k", "max_stretch", "avg_stretch",
        "max_table_bits", "avg_table_bits", "max_label_bits", "failures"]
    return result


def run_scale_free(quick: bool = True, seed: int = 0, k: int = 2,
                   deltas: Optional[Sequence[float]] = None,
                   num_pairs: Optional[int] = None) -> ExperimentResult:
    """E3 — table size vs aspect ratio (the scale-free claim)."""
    if deltas is None:
        deltas = [1e2, 1e4, 1e6] if quick else [1e2, 1e4, 1e6, 1e9, 1e12]
    n = 48 if quick else 96
    num_pairs = num_pairs or (40 if quick else 200)
    result = ExperimentResult(name="E3-scale-free")
    for target_delta, graph in aspect_ratio_suite(list(deltas), n=n, seed=seed + 21):
        oracle = DistanceOracle(graph)
        measured_delta = oracle.aspect_ratio()
        for scheme in ("agm", "awerbuch-peleg"):
            kwargs = {"params": AGMParams.experiment()} if scheme == "agm" else {}
            row = evaluate_scheme_on_graph(scheme, graph, k, num_pairs=num_pairs,
                                           seed=seed, oracle=oracle, scheme_kwargs=kwargs)
            row["target_delta"] = target_delta
            row["measured_delta"] = measured_delta
            result.add_row(**row)
    result.metadata["columns"] = [
        "scheme", "target_delta", "measured_delta", "max_table_bits",
        "avg_table_bits", "max_stretch", "failures"]
    return result


def run_stretch_growth(quick: bool = True, seed: int = 0,
                       ks: Optional[Sequence[int]] = None,
                       num_pairs: Optional[int] = None) -> ExperimentResult:
    """E4 — stretch growth in k: linear (AGM) vs exponential (prior family)."""
    ks = list(ks) if ks is not None else ([1, 2, 3] if quick else [1, 2, 3, 4, 5, 6])
    num_pairs = num_pairs or (50 if quick else 250)
    spec = standard_suite(quick)[0]
    graphs = [(spec.name, spec.build(quick=quick, seed_offset=seed))]
    result = run_matrix(
        "E4-stretch-growth",
        schemes=["agm", "exponential"],
        graphs=graphs,
        ks=ks,
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs={"agm": {"params": AGMParams.experiment()}},
    )
    for scheme in ("agm", "exponential"):
        rows = sorted(result.filter(scheme=scheme), key=lambda r: r["k"])
        ratios = growth_ratio([float(r["avg_stretch"]) for r in rows])
        result.metadata[f"{scheme}_avg_stretch_growth_ratios"] = ratios
    result.metadata["columns"] = [
        "scheme", "k", "max_stretch", "avg_stretch", "max_table_bits", "failures"]
    return result


def run_ablation(quick: bool = True, seed: int = 0, k: int = 2,
                 dense_gaps: Optional[Sequence[int]] = None,
                 sparse_shrinks: Optional[Sequence[float]] = None,
                 num_pairs: Optional[int] = None) -> ExperimentResult:
    """E12 — ablation of the dense-gap and sparse-shrink constants."""
    dense_gaps = list(dense_gaps) if dense_gaps is not None else [1, 3, 5]
    sparse_shrinks = list(sparse_shrinks) if sparse_shrinks is not None else [3.0, 6.0, 12.0]
    num_pairs = num_pairs or (40 if quick else 200)
    spec = standard_suite(quick)[0]
    graph = spec.build(quick=quick, seed_offset=seed)
    oracle = DistanceOracle(graph)
    result = ExperimentResult(name="E12-ablation")
    for gap in dense_gaps:
        for shrink in sparse_shrinks:
            params = AGMParams.experiment().with_overrides(dense_gap=gap,
                                                           sparse_shrink=shrink)
            row = evaluate_scheme_on_graph("agm", graph, k, num_pairs=num_pairs,
                                           seed=seed, oracle=oracle,
                                           scheme_kwargs={"params": params})
            row["dense_gap"] = gap
            row["sparse_shrink"] = shrink
            row["graph"] = spec.name
            result.add_row(**row)
    result.metadata["columns"] = [
        "dense_gap", "sparse_shrink", "max_stretch", "avg_stretch",
        "max_table_bits", "failures", "fallback_uses"]
    return result


def check_lemma2(decomposition) -> dict:
    """Count (u, i, v) triples violating Lemma 2."""
    checked = 0
    violations = 0
    for u in range(decomposition.n):
        for i in range(decomposition.k + 1):
            if not decomposition.is_dense(u, i):
                continue
            a_ui = decomposition.range(u, i)
            for v in decomposition.f_ball(u, i):
                checked += 1
                if a_ui not in decomposition.extended_range_set(v):
                    violations += 1
    return {"checked": checked, "violations": violations}


def check_lemma3(decomposition, landmarks) -> dict:
    """Count (u, i, v) triples violating Lemma 3."""
    checked = 0
    violations = 0
    for u in range(decomposition.n):
        for i in range(decomposition.k + 1):
            if decomposition.is_dense(u, i):
                continue
            center = landmarks.center(u, i)
            for v in decomposition.e_ball(u, i):
                checked += 1
                if center not in landmarks.nearby_union(v):
                    violations += 1
    return {"checked": checked, "violations": violations}


def run_lemma_properties(quick: bool = True, seed: int = 0, k: int = 3,
                         params: Optional[AGMParams] = None) -> ExperimentResult:
    """E5/E6 — empirical verification of Lemmas 2–3 and Claims 1–2."""
    from repro.core.decomposition import NeighborhoodDecomposition
    from repro.core.landmarks import LandmarkHierarchy

    params = _resolve_params_value(params) if params is not None else AGMParams.paper()
    suite = standard_suite(quick)[:2] if quick else standard_suite(quick)
    result = ExperimentResult(name="E5-E6-lemma-properties")
    for spec in suite:
        graph = spec.build(quick=quick, seed_offset=seed)
        oracle = DistanceOracle(graph)
        decomposition = NeighborhoodDecomposition(graph, k, oracle=oracle, params=params)
        landmarks = LandmarkHierarchy(graph, k, oracle=oracle,
                                      decomposition=decomposition, params=params,
                                      seed=seed)
        lemma2 = check_lemma2(decomposition)
        lemma3 = check_lemma3(decomposition, landmarks)
        claims = landmarks.verify_claims(sample_nodes=range(0, graph.n, max(graph.n // 16, 1)))
        result.add_row(
            graph=spec.name, n=graph.n, k=k,
            lemma2_checked=lemma2["checked"], lemma2_violations=lemma2["violations"],
            lemma3_checked=lemma3["checked"], lemma3_violations=lemma3["violations"],
            claim1_holds=claims["claim1"], claim2_holds=claims["claim2"],
        )
    return result


# ---------------------------------------------------------------------------
# the general matrix kinds (graph source x scheme grid x traffic x scenario)


def run_grid(quick: bool = True, seed: int = 0, *,
             graphs: Any, schemes: Sequence[str], ks: Sequence[int] = (2,),
             num_pairs: Any = None,
             scheme_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
             engine: str = "auto", parallel: Optional[int] = None,
             backend: Optional[str] = None,
             name: str = "grid") -> ExperimentResult:
    """schemes x graph sources x k, pair-sampled (the run_matrix kind)."""
    num_pairs = parse_count(pick_size(num_pairs, quick, where="num_pairs")
                            or (60 if quick else 300), where="num_pairs")
    result = run_matrix(
        name,
        schemes=list(schemes),
        graphs=resolve_graph_sources(graphs, quick, seed_offset=seed),
        ks=[int(k) for k in ks],
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs=resolve_scheme_kwargs(scheme_kwargs),
        parallel=parallel,
        backend=backend,
        engine=engine,
    )
    result.metadata["columns"] = [
        "graph", "scheme", "k", "max_stretch", "avg_stretch",
        "max_table_bits", "avg_table_bits", "max_label_bits", "failures"]
    return result


def run_traffic_grid(quick: bool = True, seed: int = 0, *,
                     graphs: Any, schemes: Sequence[str], ks: Sequence[int] = (2,),
                     model: str = "zipf",
                     model_kwargs: Optional[Mapping[str, Any]] = None,
                     packets: Any = None, shards: int = 1,
                     batch_size: Optional[int] = None,
                     scheme_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
                     engine: str = "auto", backend: Optional[str] = None,
                     name: str = "traffic") -> ExperimentResult:
    """The grid streamed under a traffic model with a packet budget."""
    from repro.traffic.engine import DEFAULT_BATCH_SIZE

    packets = parse_count(pick_size(packets, quick, where="packets")
                          or (20_000 if quick else 200_000), where="packets")
    result = run_traffic_matrix(
        name,
        schemes=list(schemes),
        graphs=resolve_graph_sources(graphs, quick, seed_offset=seed),
        ks=[int(k) for k in ks],
        model=model,
        packets=packets,
        shards=int(shards),
        batch_size=int(batch_size) if batch_size else DEFAULT_BATCH_SIZE,
        seed=seed,
        scheme_kwargs=resolve_scheme_kwargs(scheme_kwargs),
        model_kwargs=dict(model_kwargs or {}),
        backend=backend,
        engine=engine,
    )
    result.metadata["columns"] = [
        "graph", "scheme", "k", "delivered", "failures", "avg_stretch",
        "p95_stretch", "max_stretch", "pps"]
    return result


def run_live_timeline(quick: bool = True, seed: int = 0, *,
                      graph: Any, schemes: Sequence[str],
                      scenario: str = "flap-heavy",
                      scenario_kwargs: Optional[Mapping[str, Any]] = None,
                      k: int = 2, epochs: Any = None,
                      epoch_packets: Any = None, stale_packets: Any = None,
                      model: str = "zipf",
                      model_kwargs: Optional[Mapping[str, Any]] = None,
                      scheme_kwargs: Optional[Mapping[str, Mapping[str, Any]]] = None,
                      shards: int = 1, engine: str = "lockstep",
                      scoring: str = "exact", repair: str = "maintain",
                      verify_determinism: bool = False,
                      name: str = "live") -> ExperimentResult:
    """The live-network timeline kind: churn scenario x traffic x repair.

    This is where the adversarial scenario configs run: a pinned topology
    snapshot (or generated family) under flash crowds, hotspot storms or
    partition-under-load, every scheme seeing the identical event sequence.
    """
    epochs = int(pick_size(epochs, quick, where="epochs") or (4 if quick else 8))
    epoch_packets = parse_count(
        pick_size(epoch_packets, quick, where="epoch_packets")
        or (4_096 if quick else 100_000), where="epoch_packets")
    stale_packets = parse_count(
        pick_size(stale_packets, quick, where="stale_packets") or 2_048,
        where="stale_packets")
    result = run_live_matrix(
        name,
        schemes=list(schemes),
        graph_factory=graph_factory_from_source(graph, quick, seed_offset=seed),
        scenario=scenario,
        scenario_kwargs=dict(scenario_kwargs) if scenario_kwargs else None,
        k=int(k),
        epochs=epochs,
        epoch_packets=epoch_packets,
        stale_packets=stale_packets,
        model=model,
        shards=int(shards),
        seed=seed,
        scheme_kwargs=resolve_scheme_kwargs(scheme_kwargs),
        model_kwargs=dict(model_kwargs or {}),
        engine=engine,
        scoring=scoring,
        repair=repair,
        verify_determinism=verify_determinism,
    )
    result.metadata["columns"] = [
        "scheme", "epoch", "events", "delivery_rate", "stale_loss",
        "avg_stretch", "max_stretch", "rebuilt_trees"]
    return result


KINDS: Dict[str, Callable[..., ExperimentResult]] = {
    "tradeoff": run_tradeoff,
    "comparison": run_comparison,
    "scale-free": run_scale_free,
    "stretch-growth": run_stretch_growth,
    "ablation": run_ablation,
    "lemma-properties": run_lemma_properties,
    "grid": run_grid,
    "traffic": run_traffic_grid,
    "live": run_live_timeline,
}

KIND_NAMES = tuple(sorted(KINDS))
