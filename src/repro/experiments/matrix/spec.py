"""Declarative experiment specs: config files resolved into runnable grids.

A spec is a small mapping — loaded from JSON always, or TOML where the
stdlib ``tomllib`` exists (3.11+; the CI fast-unit matrix still includes
3.10, so every *committed* config is JSON) — with four meaningful keys:

``name``
    Result-directory stem; also the merged table's title.
``kind``
    Which experiment body to run — one of
    :data:`repro.experiments.matrix.kinds.KIND_NAMES`.  The six historical
    ``exp_*`` entry points are kinds (``comparison``, ``tradeoff``, ...);
    ``grid`` / ``traffic`` / ``live`` are the general matrix kinds that
    compose a graph source x scheme grid x traffic model x churn scenario.
``seeds``
    Run seeds; the runner materializes one result directory per seed and
    merges the tables.  Threaded all the way into the graph draw via
    ``WorkloadSpec.build(seed_offset=seed)`` — a seed sweep really re-draws
    the workload now instead of re-measuring one pinned graph.
``params``
    Keyword arguments for the kind body, verbatim except for the documented
    conveniences (``{"quick": a, "full": b}`` size pairs, count strings like
    ``"50k"``, and AGM parameter presets by name).

Everything else (``description``, ``quick``) is optional.  Specs are
deliberately dumb data: resolution of graph sources, scheme kwargs and
packet budgets happens in :mod:`repro.experiments.matrix.kinds` at run
time, so one config runs at quick and full sizes without edits.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "MatrixSpec",
    "load_spec",
    "spec_from_mapping",
    "spec_fingerprint",
    "parse_count",
    "pick_size",
]

_TOP_LEVEL_KEYS = {"name", "kind", "seeds", "quick", "params", "description"}


@dataclass(frozen=True)
class MatrixSpec:
    """One validated experiment config."""

    name: str
    kind: str
    seeds: Tuple[int, ...] = (0,)
    quick: Optional[bool] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""
    source: Optional[str] = None

    def resolved_quick(self, override: Optional[bool] = None) -> bool:
        """The quick/full mode for a run: CLI override > spec > quick."""
        if override is not None:
            return bool(override)
        if self.quick is not None:
            return bool(self.quick)
        return True


def _load_mapping(path: Path) -> Dict[str, Any]:
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # pragma: no cover - 3.10 fallback path
            raise RuntimeError(
                f"{path.name}: TOML configs need the stdlib 'tomllib' "
                "(Python 3.11+); re-save the config as JSON to run it here"
            ) from exc
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def spec_from_mapping(data: Mapping[str, Any],
                      source: Optional[str] = None) -> MatrixSpec:
    """Validate a raw mapping into a :class:`MatrixSpec`."""
    from repro.experiments.matrix.kinds import KIND_NAMES

    where = source or "<mapping>"
    if not isinstance(data, Mapping):
        raise ValueError(f"{where}: config must be a mapping, got {type(data).__name__}")
    unknown = set(data) - _TOP_LEVEL_KEYS
    if unknown:
        raise ValueError(f"{where}: unknown top-level keys {sorted(unknown)}; "
                         f"allowed: {sorted(_TOP_LEVEL_KEYS)}")
    for key in ("name", "kind"):
        if not isinstance(data.get(key), str) or not data.get(key):
            raise ValueError(f"{where}: required key {key!r} missing or not a string")
    kind = data["kind"]
    if kind not in KIND_NAMES:
        raise ValueError(f"{where}: unknown kind {kind!r}; "
                         f"choose from {sorted(KIND_NAMES)}")
    seeds_raw = data.get("seeds", [0])
    if isinstance(seeds_raw, (int, float)):
        seeds_raw = [seeds_raw]
    if (not isinstance(seeds_raw, Sequence) or isinstance(seeds_raw, (str, bytes))
            or not seeds_raw or not all(isinstance(s, int) for s in seeds_raw)):
        raise ValueError(f"{where}: 'seeds' must be a non-empty list of ints")
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(f"{where}: 'params' must be a mapping")
    quick = data.get("quick")
    if quick is not None and not isinstance(quick, bool):
        raise ValueError(f"{where}: 'quick' must be a boolean when present")
    return MatrixSpec(
        name=data["name"],
        kind=kind,
        seeds=tuple(int(s) for s in seeds_raw),
        quick=quick,
        params=dict(params),
        description=str(data.get("description", "")),
        source=source,
    )


def load_spec(path: Union[str, Path]) -> MatrixSpec:
    """Load and validate a config file (.json always; .toml on 3.11+)."""
    path = Path(path)
    return spec_from_mapping(_load_mapping(path), source=str(path))


def _canonical(value: Any) -> Any:
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def spec_fingerprint(spec: MatrixSpec, quick: bool) -> str:
    """Identity of one seed's work: name, kind, params and the size mode.

    The seed list is deliberately excluded — adding seeds to a config must
    not invalidate the per-seed results already on disk (that is what makes
    runs resumable); the seed itself is in the result directory name.
    """
    payload = json.dumps(
        {"name": spec.name, "kind": spec.kind, "quick": bool(quick),
         "params": _canonical(spec.params)},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def parse_count(value: Union[int, str], where: str = "count") -> int:
    """``20000``, ``"20k"``, ``"1.5M"`` → an int packet/pair budget."""
    if isinstance(value, bool):
        raise ValueError(f"{where}: expected a count, got a boolean")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value == int(value):
        return int(value)
    if isinstance(value, str):
        text = value.strip().lower().replace("_", "")
        scale = 1
        if text.endswith("k"):
            scale, text = 1_000, text[:-1]
        elif text.endswith("m"):
            scale, text = 1_000_000, text[:-1]
        try:
            return int(float(text) * scale)
        except ValueError:
            pass
    raise ValueError(f"{where}: cannot parse count {value!r} "
                     "(use an int or strings like '50k', '2M')")


def pick_size(value: Any, quick: bool, where: str = "size") -> Any:
    """Resolve a ``{"quick": a, "full": b}`` pair (or a plain value)."""
    if isinstance(value, Mapping):
        keys = set(value)
        if keys <= {"quick", "full"} and keys:
            chosen = value.get("quick" if quick else "full")
            if chosen is None:
                chosen = value.get("full" if quick else "quick")
            return chosen
        raise ValueError(f"{where}: size mapping must use keys 'quick'/'full', "
                         f"got {sorted(keys)}")
    return value
