"""CLI: ``python -m repro.experiments.matrix <config.json> [...]``.

Runs each config through the resumable matrix runner and prints the merged
table.  ``--full`` switches every spec to its full sizes, ``--force``
re-runs seeds whose results are already on disk, ``--out`` relocates the
result tree (default ``results/`` under the current directory).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.matrix.runner import run_config


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.matrix",
        description="Run config-driven experiment matrices.")
    parser.add_argument("configs", nargs="+", metavar="CONFIG",
                        help="spec files (.json always; .toml on Python 3.11+)")
    parser.add_argument("--out", default="results",
                        help="output root for per-seed result directories")
    parser.add_argument("--quick", dest="quick", action="store_true",
                        default=None, help="force quick sizes")
    parser.add_argument("--full", dest="quick", action="store_false",
                        help="force full sizes")
    parser.add_argument("--force", action="store_true",
                        help="re-run seeds even when a matching result exists")
    args = parser.parse_args(argv)

    for path in args.configs:
        report = run_config(path, out_dir=args.out, quick=args.quick,
                            force=args.force)
        print(report.table())
        resumed = sorted(report.resumed_seeds)
        ran = sorted(report.ran_seeds)
        print(f"[{report.spec.name}] seeds ran={ran} resumed={resumed} "
              f"-> {report.out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
