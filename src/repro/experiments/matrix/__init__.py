"""Config-driven experiment matrix.

Declarative specs (JSON, or TOML on 3.11+) name a ``kind`` — one of the six
historical experiment bodies or the general ``grid`` / ``traffic`` /
``live`` matrix kinds — plus its parameters and a seed list; the runner
materializes one result directory per seed (resumable: finished seeds are
loaded, not re-run) and merges the tables.  Committed configs live in
``configs/``; ``python -m repro.experiments.matrix configs/<name>.json``
runs one from the command line.
"""

from repro.experiments.matrix.kinds import KIND_NAMES, KINDS
from repro.experiments.matrix.runner import (
    TIMING_COLUMNS,
    MatrixRunReport,
    run_config,
    run_spec,
    strip_timing,
)
from repro.experiments.matrix.spec import MatrixSpec, load_spec, spec_from_mapping

__all__ = [
    "KINDS",
    "KIND_NAMES",
    "TIMING_COLUMNS",
    "MatrixSpec",
    "MatrixRunReport",
    "load_spec",
    "spec_from_mapping",
    "run_config",
    "run_spec",
    "strip_timing",
]
