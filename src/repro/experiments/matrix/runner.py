"""Resolve a spec into per-seed result directories and a merged report.

Layout under the output root::

    <out>/<spec.name>/
        seed-<s>/result.json     one per seed: rows + metadata + fingerprint
        merged.json              all seeds' rows with a ``run_seed`` column
        merged.csv               the same rows as CSV
        report.md                the merged table rendered for humans

Runs are resumable: a ``result.json`` whose fingerprint matches the spec's
current ``(name, kind, params, quick)`` identity is loaded instead of
re-run, so interrupting a ten-seed sweep and restarting it only pays for
the missing seeds — and adding seeds to a config never invalidates the ones
already on disk.  ``force=True`` ignores (and overwrites) everything.

Timing columns (``build_seconds``, ``pps``, ...) are environment noise, not
measurements; :data:`TIMING_COLUMNS` names them so comparisons — including
the bit-identical shim-vs-matrix test — can strip them in one place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import KINDS
from repro.experiments.matrix.spec import MatrixSpec, load_spec, spec_fingerprint
from repro.experiments.reporting import format_table, results_to_csv

__all__ = [
    "TIMING_COLUMNS",
    "MatrixRunReport",
    "run_spec",
    "run_config",
    "strip_timing",
]

#: Row fields that measure wall time or throughput, never routing quality —
#: excluded from any "same result?" comparison across runs or machines.
TIMING_COLUMNS = frozenset({
    "build_seconds", "scalar_seconds", "lockstep_seconds", "seconds", "pps",
    "repair_seconds", "recompile_seconds", "stale_seconds", "epoch_seconds",
})


def strip_timing(rows: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Rows minus the timing/throughput columns (incl. profile_* stages)."""
    return [{k: v for k, v in row.items()
             if k not in TIMING_COLUMNS and not k.startswith("profile_")}
            for row in rows]


def _sanitize(value: Any) -> Any:
    """Make a result JSON-serializable without importing numpy types here.

    Scalars with ``.item()`` (numpy) unwrap; arrays with ``.tolist()``
    flatten; mappings/sequences recurse; anything else that ``json`` cannot
    take becomes ``repr`` text (metadata sometimes carries live objects —
    scheme instances, AGMParams — that only need to be human-legible).
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return _sanitize(value.item())
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        try:
            return _sanitize(value.tolist())
        except (TypeError, ValueError):
            pass
    return repr(value)


@dataclass
class MatrixRunReport:
    """What one :func:`run_spec` call did, and where the artifacts landed."""

    spec: MatrixSpec
    quick: bool
    out_dir: Path
    merged: ExperimentResult
    per_seed: Dict[int, ExperimentResult] = field(default_factory=dict)
    resumed_seeds: List[int] = field(default_factory=list)
    ran_seeds: List[int] = field(default_factory=list)

    @property
    def rows(self) -> List[Dict[str, Any]]:
        return self.merged.rows

    def table(self) -> str:
        """The merged table rendered with the kind's preferred columns."""
        columns = self.merged.metadata.get("columns")
        if columns:
            columns = list(columns)
            if len(self.spec.seeds) > 1 and "run_seed" not in columns:
                columns = ["run_seed"] + columns
            columns = [c for c in columns
                       if any(c in row for row in self.merged.rows)] or None
        return format_table(self.merged.rows, columns=columns,
                            title=f"{self.spec.name} [{self.spec.kind}]"
                                  f" ({'quick' if self.quick else 'full'})")


def _seed_dir(root: Path, seed: int) -> Path:
    return root / f"seed-{seed}"


def _load_seed_result(path: Path, fingerprint: str) -> Optional[ExperimentResult]:
    """A prior seed's result, if it exists and matches the current spec."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    if payload.get("fingerprint") != fingerprint or payload.get("status") != "ok":
        return None
    return ExperimentResult(name=payload.get("result_name", path.parent.name),
                            rows=payload.get("rows", []),
                            metadata=payload.get("metadata", {}))


def run_spec(spec: MatrixSpec,
             out_dir: Union[str, Path] = "results",
             quick: Optional[bool] = None,
             force: bool = False) -> MatrixRunReport:
    """Run every seed of ``spec``, resuming finished ones, and merge."""
    quick = spec.resolved_quick(quick)
    fingerprint = spec_fingerprint(spec, quick)
    root = Path(out_dir) / spec.name
    root.mkdir(parents=True, exist_ok=True)
    kind_fn = KINDS[spec.kind]

    report = MatrixRunReport(spec=spec, quick=quick, out_dir=root,
                             merged=ExperimentResult(name=spec.name))
    for seed in spec.seeds:
        seed_dir = _seed_dir(root, seed)
        result_path = seed_dir / "result.json"
        result = None if force else _load_seed_result(result_path, fingerprint)
        if result is None:
            result = kind_fn(quick=quick, seed=seed, **dict(spec.params))
            seed_dir.mkdir(parents=True, exist_ok=True)
            payload = {
                "status": "ok",
                "fingerprint": fingerprint,
                "spec_name": spec.name,
                "kind": spec.kind,
                "seed": seed,
                "quick": quick,
                "result_name": result.name,
                "rows": _sanitize(result.rows),
                "metadata": _sanitize(result.metadata),
            }
            tmp_path = result_path.with_suffix(".json.tmp")
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=1, sort_keys=True)
                handle.write("\n")
            tmp_path.replace(result_path)  # atomic: never a torn result.json
            report.ran_seeds.append(seed)
        else:
            report.resumed_seeds.append(seed)
        report.per_seed[seed] = result
        for row in result.rows:
            merged_row = dict(row)
            merged_row["run_seed"] = seed
            report.merged.add_row(**merged_row)

    # merged metadata: the kinds' display columns plus provenance
    first = report.per_seed[spec.seeds[0]]
    report.merged.metadata.update(_sanitize(first.metadata))
    report.merged.metadata.update(
        kind=spec.kind, quick=quick, seeds=list(spec.seeds),
        fingerprint=fingerprint)

    merged_payload = {
        "spec_name": spec.name,
        "kind": spec.kind,
        "quick": quick,
        "seeds": list(spec.seeds),
        "fingerprint": fingerprint,
        "rows": _sanitize(report.merged.rows),
        "metadata": _sanitize(report.merged.metadata),
    }
    with open(root / "merged.json", "w", encoding="utf-8") as handle:
        json.dump(merged_payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    with open(root / "merged.csv", "w", encoding="utf-8") as handle:
        handle.write(results_to_csv(merged_payload["rows"]))
    with open(root / "report.md", "w", encoding="utf-8") as handle:
        handle.write(report.table() + "\n")
    return report


def run_config(path: Union[str, Path],
               out_dir: Union[str, Path] = "results",
               quick: Optional[bool] = None,
               force: bool = False) -> MatrixRunReport:
    """Load a config file and run it — the one-call entry point."""
    return run_spec(load_spec(path), out_dir=out_dir, quick=quick, force=force)
