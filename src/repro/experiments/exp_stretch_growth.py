"""Experiment E4 — stretch growth in k: linear (AGM) vs exponential (prior scale-free schemes).

The abstract claims an "exponential improvement from O(2^k) to asymptotically
optimal O(k)".  This experiment sweeps k and reports the measured maximum and
average stretch of the AGM scheme next to the random-sampling baseline that
represents the prior scale-free family, plus the successive growth ratios
(a linear curve has ratios tending to 1, an exponential one stays near 2).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.analysis import growth_ratio
from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult, run_matrix
from repro.experiments.reporting import format_series, format_table
from repro.experiments.workloads import standard_suite


def run(quick: bool = True, seed: int = 0, ks: Optional[Sequence[int]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E4 and return its result table."""
    ks = list(ks) if ks is not None else ([1, 2, 3] if quick else [1, 2, 3, 4, 5, 6])
    num_pairs = num_pairs or (50 if quick else 250)
    spec = standard_suite(quick)[0]
    graphs = [(spec.name, spec.build(quick=quick))]
    result = run_matrix(
        "E4-stretch-growth",
        schemes=["agm", "exponential"],
        graphs=graphs,
        ks=ks,
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs={"agm": {"params": AGMParams.experiment()}},
    )
    for scheme in ("agm", "exponential"):
        rows = sorted(result.filter(scheme=scheme), key=lambda r: r["k"])
        ratios = growth_ratio([float(r["avg_stretch"]) for r in rows])
        result.metadata[f"{scheme}_avg_stretch_growth_ratios"] = ratios
    return result


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows,
        columns=["scheme", "k", "max_stretch", "avg_stretch", "max_table_bits", "failures"],
        title="E4: stretch vs k (AGM linear vs prior exponential family)"))
    for scheme in ("agm", "exponential"):
        rows = sorted(result.filter(scheme=scheme), key=lambda r: r["k"])
        print(format_series([r["k"] for r in rows],
                            [float(r["max_stretch"]) for r in rows],
                            x_label="k", y_label="max stretch",
                            title=f"{scheme}: max stretch vs k"))


if __name__ == "__main__":  # pragma: no cover
    main()
