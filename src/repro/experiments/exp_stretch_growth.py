"""Experiment E4 — stretch growth in k: linear (AGM) vs exponential (prior scale-free schemes).

The abstract claims an "exponential improvement from O(2^k) to asymptotically
optimal O(k)".  This experiment sweeps k and reports the measured maximum and
average stretch of the AGM scheme next to the random-sampling baseline that
represents the prior scale-free family, plus the successive growth ratios
(a linear curve has ratios tending to 1, an exponential one stays near 2).

The body lives in :func:`repro.experiments.matrix.kinds.run_stretch_growth`
(kind ``"stretch-growth"``, config ``configs/e4_stretch_growth.json``); this
module is the historical entry point kept as a shim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import run_stretch_growth
from repro.experiments.reporting import format_series, format_table

__all__ = ["run", "main"]


def run(quick: bool = True, seed: int = 0, ks: Optional[Sequence[int]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E4 and return its result table."""
    return run_stretch_growth(quick=quick, seed=seed, ks=ks, num_pairs=num_pairs)


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows, columns=result.metadata["columns"],
        title="E4: stretch vs k (AGM linear vs prior exponential family)"))
    for scheme in ("agm", "exponential"):
        rows = sorted(result.filter(scheme=scheme), key=lambda r: r["k"])
        print(format_series([r["k"] for r in rows],
                            [float(r["max_stretch"]) for r in rows],
                            x_label="k", y_label="max stretch",
                            title=f"{scheme}: max stretch vs k"))


if __name__ == "__main__":  # pragma: no cover
    main()
