"""Plain-text reporting of experiment results (ASCII tables, series, CSV)."""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence


def _format_value(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format_value(row.get(c, "")) for c in columns] for row in rows]
    widths = [max(len(str(c)), *(len(r[i]) for r in cells)) for i, c in enumerate(columns)]
    out = io.StringIO()
    if title:
        out.write(f"# {title}\n")
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    out.write(header + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in cells:
        out.write(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)) + "\n")
    return out.getvalue()


def format_series(xs: Sequence[object], ys: Sequence[float], x_label: str, y_label: str,
                  title: Optional[str] = None, width: int = 40) -> str:
    """Render an (x, y) series as an ASCII bar chart (the library's "figures")."""
    out = io.StringIO()
    if title:
        out.write(f"# {title}\n")
    finite = [y for y in ys if y == y and y not in (float("inf"), float("-inf"))]
    top = max(finite) if finite else 1.0
    out.write(f"{x_label:>16} | {y_label}\n")
    for x, y in zip(xs, ys):
        bar = "#" * max(1, int(round(width * (y / top)))) if top > 0 else ""
        out.write(f"{_format_value(x):>16} | {bar} {_format_value(y)}\n")
    return out.getvalue()


#: default column order for traffic-matrix rows (see ``run_traffic_matrix``)
TRAFFIC_COLUMNS = (
    "graph", "scheme", "model", "engine", "shards", "packets", "pps",
    "delivered", "failures", "unreachable", "avg_stretch", "median_stretch",
    "p95_stretch", "p99_stretch", "max_stretch", "avg_hops", "p95_hops",
)


def traffic_table(rows: Sequence[Dict[str, object]],
                  title: Optional[str] = None) -> str:
    """Render traffic-matrix rows with the streamed-statistics column set.

    A thin curation over :func:`format_table`: traffic rows carry many more
    fields (P² diagnostics, hop quantiles, timing) than fit a terminal;
    this picks the headline ones in a stable order, keeping only columns at
    least one row actually has.
    """
    if not rows:
        return format_table(rows, title=title)
    columns = [c for c in TRAFFIC_COLUMNS if any(c in row for row in rows)]
    return format_table(rows, columns=columns, title=title or "traffic")


def results_to_csv(rows: Sequence[Dict[str, object]],
                   columns: Optional[Sequence[str]] = None) -> str:
    """Serialize rows to a CSV string (no external dependencies)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(str(c) for c in columns)]
    for row in rows:
        lines.append(",".join(_format_value(row.get(c, "")) for c in columns))
    return "\n".join(lines) + "\n"
