"""Experiment E3 — the scale-free claim.

Fixed topology, edge weights rescaled so the aspect ratio Δ spans ten orders
of magnitude.  The AGM scheme's per-node table size should stay flat (its
storage never depends on Δ), while the Awerbuch–Peleg-style hierarchical
scheme grows roughly linearly in ``log Δ`` because it keeps one cover per
scale.  This is the abstract's headline property ("storage and header sizes
are independent of the aspect ratio").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult, evaluate_scheme_on_graph
from repro.experiments.reporting import format_series, format_table
from repro.experiments.workloads import aspect_ratio_suite
from repro.graphs.metrics import aspect_ratio
from repro.graphs.shortest_paths import DistanceOracle


def run(quick: bool = True, seed: int = 0, k: int = 2,
        deltas: Optional[Sequence[float]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E3 and return its result table."""
    if deltas is None:
        deltas = [1e2, 1e4, 1e6] if quick else [1e2, 1e4, 1e6, 1e9, 1e12]
    n = 48 if quick else 96
    num_pairs = num_pairs or (40 if quick else 200)
    result = ExperimentResult(name="E3-scale-free")
    for target_delta, graph in aspect_ratio_suite(list(deltas), n=n, seed=seed + 21):
        oracle = DistanceOracle(graph)
        measured_delta = oracle.aspect_ratio()
        for scheme in ("agm", "awerbuch-peleg"):
            kwargs = {"params": AGMParams.experiment()} if scheme == "agm" else {}
            row = evaluate_scheme_on_graph(scheme, graph, k, num_pairs=num_pairs,
                                           seed=seed, oracle=oracle, scheme_kwargs=kwargs)
            row["target_delta"] = target_delta
            row["measured_delta"] = measured_delta
            result.add_row(**row)
    return result


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows,
        columns=["scheme", "target_delta", "measured_delta", "max_table_bits",
                 "avg_table_bits", "max_stretch", "failures"],
        title="E3: table size vs aspect ratio (scale-free claim)"))
    for scheme in ("agm", "awerbuch-peleg"):
        rows = result.filter(scheme=scheme)
        print(format_series(
            [r["target_delta"] for r in rows],
            [float(r["max_table_bits"]) for r in rows],
            x_label="aspect ratio", y_label="max table bits",
            title=f"{scheme}: space vs aspect ratio"))


if __name__ == "__main__":  # pragma: no cover
    main()
