"""Experiment E3 — the scale-free claim.

Fixed topology, edge weights rescaled so the aspect ratio Δ spans ten orders
of magnitude.  The AGM scheme's per-node table size should stay flat (its
storage never depends on Δ), while the Awerbuch–Peleg-style hierarchical
scheme grows roughly linearly in ``log Δ`` because it keeps one cover per
scale.  This is the abstract's headline property ("storage and header sizes
are independent of the aspect ratio").

The body lives in :func:`repro.experiments.matrix.kinds.run_scale_free`
(kind ``"scale-free"``, config ``configs/e3_scale_free.json``); this module
is the historical entry point kept as a shim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import run_scale_free
from repro.experiments.reporting import format_series, format_table

__all__ = ["run", "main"]


def run(quick: bool = True, seed: int = 0, k: int = 2,
        deltas: Optional[Sequence[float]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E3 and return its result table."""
    return run_scale_free(quick=quick, seed=seed, k=k, deltas=deltas,
                          num_pairs=num_pairs)


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows, columns=result.metadata["columns"],
        title="E3: table size vs aspect ratio (scale-free claim)"))
    for scheme in ("agm", "awerbuch-peleg"):
        rows = result.filter(scheme=scheme)
        print(format_series(
            [r["target_delta"] for r in rows],
            [float(r["max_table_bits"]) for r in rows],
            x_label="aspect ratio", y_label="max table bits",
            title=f"{scheme}: space vs aspect ratio"))


if __name__ == "__main__":  # pragma: no cover
    main()
