"""Experiment E2 — the Section 1.3 comparison of routing schemes.

One row per (graph, scheme): stretch and per-node table bits for the AGM
scheme and the five baselines, at a common ``k``.  The qualitative shape the
paper claims: shortest-path has stretch 1 but the largest tables; labeled
schemes (Cowen, Thorup–Zwick) have small stretch *and* small tables but need
topology-dependent addresses; among the name-independent schemes, the
hierarchical Awerbuch–Peleg approach matches AGM's stretch but not its
scale-freedom, and the older random-sampling schemes pay a much larger
stretch at comparable space.

The body lives in :func:`repro.experiments.matrix.kinds.run_comparison`
(kind ``"comparison"``); this module is the historical entry point, kept as
a shim so benches and tests share the config-driven code path.  The
committed config ``configs/e2_comparison.json`` reproduces this table
through the matrix runner bit for bit (asserted by
``tests/test_experiment_matrix.py``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.harness import ExperimentResult
from repro.experiments.matrix.kinds import ALL_SCHEMES, run_comparison
from repro.experiments.reporting import format_table

__all__ = ["ALL_SCHEMES", "run", "main"]


def run(quick: bool = True, seed: int = 0, k: int = 3,
        schemes: Optional[Sequence[str]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E2 and return its result table."""
    return run_comparison(quick=quick, seed=seed, k=k, schemes=schemes,
                          num_pairs=num_pairs)


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(result.rows, columns=result.metadata["columns"],
                       title="E2: scheme comparison (Section 1.3)"))


if __name__ == "__main__":  # pragma: no cover
    main()
