"""Experiment E2 — the Section 1.3 comparison of routing schemes.

One row per (graph, scheme): stretch and per-node table bits for the AGM
scheme and the five baselines, at a common ``k``.  The qualitative shape the
paper claims: shortest-path has stretch 1 but the largest tables; labeled
schemes (Cowen, Thorup–Zwick) have small stretch *and* small tables but need
topology-dependent addresses; among the name-independent schemes, the
hierarchical Awerbuch–Peleg approach matches AGM's stretch but not its
scale-freedom, and the older random-sampling schemes pay a much larger
stretch at comparable space.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.params import AGMParams
from repro.experiments.harness import ExperimentResult, run_matrix
from repro.experiments.reporting import format_table
from repro.experiments.workloads import standard_suite

ALL_SCHEMES = ["shortest-path", "cowen", "thorup-zwick", "awerbuch-peleg",
               "exponential", "agm"]


def run(quick: bool = True, seed: int = 0, k: int = 3,
        schemes: Optional[Sequence[str]] = None,
        num_pairs: Optional[int] = None) -> ExperimentResult:
    """Run E2 and return its result table."""
    schemes = list(schemes) if schemes is not None else list(ALL_SCHEMES)
    num_pairs = num_pairs or (60 if quick else 300)
    suite = standard_suite(quick)[:2] if quick else standard_suite(quick)
    graphs = [(spec.name, spec.build(quick=quick)) for spec in suite]
    result = run_matrix(
        "E2-scheme-comparison",
        schemes=schemes,
        graphs=graphs,
        ks=[k],
        num_pairs=num_pairs,
        seed=seed,
        scheme_kwargs={"agm": {"params": AGMParams.experiment()}},
    )
    return result


def main(quick: bool = True) -> None:  # pragma: no cover - CLI convenience
    result = run(quick=quick)
    print(format_table(
        result.rows,
        columns=["graph", "scheme", "k", "max_stretch", "avg_stretch",
                 "max_table_bits", "avg_table_bits", "max_label_bits", "failures"],
        title="E2: scheme comparison (Section 1.3)"))


if __name__ == "__main__":  # pragma: no cover
    main()
