"""Experiment harness: workloads, runner, reporting, and one module per experiment.

Each ``exp_*`` module exposes ``run(quick=True, seed=...) -> ExperimentResult``
so that the pytest-benchmark wrappers in ``benchmarks/`` and the runnable
examples can share the exact same code paths.
"""

from repro.experiments.harness import ExperimentResult, run_matrix, evaluate_scheme_on_graph
from repro.experiments.workloads import WorkloadSpec, standard_suite, make_workload
from repro.experiments.reporting import format_table, format_series, results_to_csv

__all__ = [
    "ExperimentResult",
    "run_matrix",
    "evaluate_scheme_on_graph",
    "WorkloadSpec",
    "standard_suite",
    "make_workload",
    "format_table",
    "format_series",
    "results_to_csv",
]
