"""Workload definitions shared by experiments, benches and examples.

A workload is a named, seeded graph instance.  The standard suite mirrors the
graph families listed in DESIGN.md's experiment index; every entry has a
``quick`` size (used in CI / default bench runs) and a ``full`` size (used
when the environment variable ``REPRO_BENCH_FULL`` is set).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.graphs.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_graph,
    random_geometric_graph,
    rescale_aspect_ratio,
    ring_of_cliques,
)
from repro.graphs.graph import WeightedGraph


def full_mode() -> bool:
    """Whether the benches should use the larger workload sizes."""
    return bool(os.environ.get("REPRO_BENCH_FULL"))


@dataclass(frozen=True)
class WorkloadSpec:
    """A named recipe producing a workload graph."""

    name: str
    family: str
    quick_n: int
    full_n: int
    seed: int = 0

    def build(self, quick: bool = True, seed: Optional[int] = None,
              seed_offset: int = 0) -> WeightedGraph:
        """Materialize the workload graph.

        ``seed`` replaces the spec's pinned seed outright; ``seed_offset``
        shifts it instead.  Experiment entry points thread their run seed
        through as an offset, so ``run(seed=0)`` (the default) reproduces
        the historical pinned graphs bit for bit while ``run(seed=s)``
        honestly varies the graph draw — previously the run seed was
        silently dropped here and every "seed sweep" re-measured one graph.
        """
        n = self.quick_n if quick else self.full_n
        base = self.seed if seed is None else seed
        return make_workload(self.family, n, seed=base + int(seed_offset))


_BUILDERS: Dict[str, Callable[[int, Optional[int]], WeightedGraph]] = {
    "geometric": lambda n, seed: random_geometric_graph(n, seed=seed),
    "erdos-renyi": lambda n, seed: erdos_renyi_graph(n, seed=seed),
    "grid": lambda n, seed: grid_graph(max(int(round(n ** 0.5)), 2),
                                       max(int(round(n ** 0.5)), 2), seed=seed),
    "barabasi-albert": lambda n, seed: barabasi_albert_graph(n, seed=seed),
    "ring-of-cliques": lambda n, seed: ring_of_cliques(max(n // 8, 3), 8, seed=seed),
    "hyperbolic": lambda n, seed: _topologies().hyperbolic_graph(n, seed=seed),
    "powerlaw-cluster":
        lambda n, seed: _topologies().powerlaw_cluster_graph(n, seed=seed),
}


def _topologies():
    """Lazy import: the topology module pulls in hashing/manifest machinery."""
    from repro.graphs import topologies

    return topologies


def make_workload(family: str, n: int, seed: Optional[int] = None) -> WeightedGraph:
    """Build a workload graph of the named family with roughly ``n`` nodes.

    Families prefixed ``topology:`` load a pinned real-world snapshot by
    manifest name (``topology:caida-as-mini``); the snapshot has a fixed
    size and byte-pinned contents, so ``n`` and ``seed`` are ignored — the
    honest way to put a measured topology in a slot that sweeps seeds.
    """
    if family.startswith("topology:"):
        return _topologies().load_topology(family.split(":", 1)[1])
    if family not in _BUILDERS:
        raise ValueError(f"unknown workload family {family!r}; choose from "
                         f"{sorted(_BUILDERS)} or 'topology:<name>'")
    return _BUILDERS[family](n, seed)


def workload_factory(family: str, n: int,
                     seed: Optional[int] = None) -> Callable[[], WeightedGraph]:
    """A zero-arg callable producing a fresh workload graph on every call.

    Churn runs (:func:`repro.dynamics.scenario.run_scenario_matrix`, the E15
    bench) mutate their graph in place, so each scenario needs its own
    instance; this is the composition point between the workload families and
    the dynamic scenarios.
    """
    return lambda: make_workload(family, n, seed=seed)


def traffic_suite(graph: WeightedGraph, seed: int = 0) -> List[tuple]:
    """One instance of every registered traffic model on ``graph``.

    Returns ``(model_name, TrafficModel)`` pairs with per-model derived
    seeds — the standard sweep benches and experiments iterate when they
    want routing quality *under load shape*, not just uniform pairs.  The
    model registry itself lives in :mod:`repro.traffic.models`; this helper
    is the workload-layer composition point, like :func:`workload_factory`
    is for churn scenarios.
    """
    from repro.traffic.models import TRAFFIC_MODEL_NAMES, make_traffic_model

    return [(name, make_traffic_model(name, graph, seed=seed + index))
            for index, name in enumerate(TRAFFIC_MODEL_NAMES)]


def standard_suite(quick: bool = True) -> List[WorkloadSpec]:
    """The graph suite used by experiments E1, E2 and E4."""
    specs = [
        WorkloadSpec("geometric", "geometric", quick_n=96, full_n=300, seed=11),
        WorkloadSpec("erdos-renyi", "erdos-renyi", quick_n=96, full_n=300, seed=12),
        WorkloadSpec("grid", "grid", quick_n=100, full_n=256, seed=13),
        WorkloadSpec("barabasi-albert", "barabasi-albert", quick_n=96, full_n=300, seed=14),
    ]
    return specs


def aspect_ratio_suite(deltas: Optional[List[float]] = None, n: int = 72,
                       seed: int = 21) -> List[tuple]:
    """Graphs with a fixed topology and increasing aspect ratio (experiment E3).

    Returns a list of ``(target_delta, graph)`` pairs.
    """
    if deltas is None:
        deltas = [1e2, 1e4, 1e6, 1e9, 1e12]
    base = random_geometric_graph(n, weights="unit", seed=seed)
    out = []
    for i, delta in enumerate(deltas):
        out.append((delta, rescale_aspect_ratio(base, delta, seed=seed + i + 1)))
    return out
