"""Experiment runner: schemes x graphs x k, with stretch and space measurements.

``run_matrix`` can fan the (scheme, graph, k) cells out over a thread pool
(``parallel=``): every cell of one graph shares that graph's distance oracle
(and therefore its backend's row cache), scheme construction and evaluation
are per-cell and independent, and the result rows come back in the same
deterministic order as the serial loop.

``run_traffic_matrix`` is the traffic sibling: every cell streams a seeded
traffic-model workload (uniform / Zipf / gravity / hotspot) through the
sharded engine in ``repro.traffic`` — millions of packets reduced to
streaming statistics instead of a few thousand stored walks.

``build_matrix`` is the construction sibling: it builds every (scheme, graph,
k) cell — no routing evaluation — timing preprocessing only.  Cells fan out
over worker threads and, inside each cell, the scheme's
:class:`~repro.construction.context.BuildContext` fans independent build
units (scales, cluster-tree chunks, cover exponents) over the same worker
budget.  Unit seeds always derive from unit indices, so parallel builds are
bit-identical to serial ones (asserted by ``tests/test_build_pipeline.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.construction.context import BuildContext
from repro.factory import build_scheme
from repro.graphs.backends import BackendLike
from repro.graphs.graph import WeightedGraph
from repro.graphs.metrics import graph_summary
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator
from repro.traffic.engine import DEFAULT_BATCH_SIZE, run_traffic
from repro.traffic.models import make_traffic_model


@dataclass
class ExperimentResult:
    """A flat table of measurement rows plus free-form metadata."""

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    def add_row(self, **fields) -> None:
        """Append one measurement row."""
        self.rows.append(dict(fields))

    def column(self, key: str) -> List[object]:
        """Extract one column across all rows."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria) -> List[Dict[str, object]]:
        """Rows matching all the given field values."""
        out = []
        for row in self.rows:
            if all(row.get(k) == v for k, v in criteria.items()):
                out.append(row)
        return out


def evaluate_scheme_on_graph(
    scheme_name: str,
    graph: WeightedGraph,
    k: int,
    num_pairs: int = 150,
    seed: int = 0,
    oracle: Optional[DistanceOracle] = None,
    scheme_kwargs: Optional[dict] = None,
    backend: BackendLike = None,
    engine: str = "auto",
) -> Dict[str, object]:
    """Build one scheme on one graph and measure stretch, space and build time."""
    oracle = oracle or DistanceOracle(graph, backend=backend)
    simulator = RoutingSimulator(graph, oracle=oracle)
    start = time.perf_counter()
    scheme = build_scheme(scheme_name, graph, k=k, seed=seed, oracle=oracle,
                          **(scheme_kwargs or {}))
    build_seconds = time.perf_counter() - start
    report = simulator.evaluate(scheme, num_pairs=num_pairs, seed=seed + 1,
                                engine=engine)
    row: Dict[str, object] = {
        "scheme": scheme_name,
        "engine": report.engine,
        "k": k,
        "n": graph.n,
        "m": graph.num_edges,
        "max_stretch": report.max_stretch,
        "avg_stretch": report.avg_stretch,
        "median_stretch": report.median_stretch,
        "p95_stretch": report.p95_stretch,
        "failures": report.failures,
        "max_table_bits": report.max_table_bits,
        "avg_table_bits": report.avg_table_bits,
        "max_label_bits": report.max_label_bits,
        "header_bits": report.max_header_bits,
        "build_seconds": build_seconds,
    }
    if hasattr(scheme, "fallback_uses"):
        row["fallback_uses"] = scheme.fallback_uses
    return row


def run_matrix(
    name: str,
    schemes: Sequence[str],
    graphs: Sequence[tuple],
    ks: Sequence[int],
    num_pairs: int = 150,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    parallel: Optional[int] = None,
    backend: BackendLike = None,
    engine: str = "auto",
) -> ExperimentResult:
    """Run every (scheme, graph, k) combination.

    Parameters
    ----------
    graphs:
        Sequence of ``(graph_label, WeightedGraph)`` pairs.
    scheme_kwargs:
        Optional per-scheme extra constructor arguments.
    parallel:
        If given and > 1, fan the cells out over this many worker threads.
        Cells of the same graph share one distance oracle/backend; rows are
        returned in the same order as the serial loop and each cell keeps its
        own seed, so results are identical either way.
    backend:
        Distance-backend spec forwarded to each graph's shared oracle
        (``"dense"``, ``"lazy"``, ``None`` for automatic selection).
    engine:
        Evaluation engine per cell (``"auto"`` = lockstep over compiled
        forwarding tables where available, scalar otherwise).  Routes and
        stretch are identical under either engine.
    """
    result = ExperimentResult(name=name)
    graphs = list(graphs)  # may be a one-shot iterable; iterated per mode below

    def run_cell(graph_label, graph, k, scheme_name, oracle, summary):
        kwargs = (scheme_kwargs or {}).get(scheme_name, {})
        row = evaluate_scheme_on_graph(
            scheme_name, graph, k, num_pairs=num_pairs, seed=seed,
            oracle=oracle, scheme_kwargs=kwargs, engine=engine)
        row["graph"] = graph_label
        row["aspect_ratio"] = summary.aspect_ratio
        return row

    if parallel and parallel > 1 and len(graphs) * len(ks) * len(schemes) > 1:
        # interleaved cells need every graph's shared oracle alive at once
        oracles = [DistanceOracle(graph, backend=backend) for _, graph in graphs]
        summaries = [graph_summary(graph, oracle)
                     for (_, graph), oracle in zip(graphs, oracles)]
        cells = [(label, graph, k, scheme_name, oracles[index], summaries[index])
                 for index, (label, graph) in enumerate(graphs)
                 for k in ks
                 for scheme_name in schemes]
        with ThreadPoolExecutor(max_workers=int(parallel)) as pool:
            rows = list(pool.map(lambda cell: run_cell(*cell), cells))
    else:
        # serial: scope one oracle per graph so its distance store is
        # released before the next graph starts
        rows = []
        for graph_label, graph in graphs:
            oracle = DistanceOracle(graph, backend=backend)
            summary = graph_summary(graph, oracle)
            for k in ks:
                for scheme_name in schemes:
                    rows.append(run_cell(graph_label, graph, k, scheme_name,
                                         oracle, summary))
    for row in rows:
        result.add_row(**row)
    return result


def run_traffic_matrix(
    name: str,
    schemes: Sequence[str],
    graphs: Sequence[tuple],
    ks: Sequence[int],
    model: str = "zipf",
    packets: int = 100_000,
    shards: int = 1,
    batch_size: int = DEFAULT_BATCH_SIZE,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    model_kwargs: Optional[dict] = None,
    backend: BackendLike = None,
    engine: str = "auto",
    processes: Optional[bool] = None,
    profile: bool = False,
    service: bool = False,
) -> ExperimentResult:
    """Route ``packets`` packets of model traffic through every (scheme, graph, k).

    The traffic sibling of :func:`run_matrix`: instead of a few thousand
    uniformly sampled pairs evaluated with per-pair bookkeeping, each cell
    streams a seeded :mod:`repro.traffic.models` workload — millions of
    packets if asked — through :func:`repro.traffic.engine.run_traffic`,
    reducing every batch into streaming statistics (count/sum/max, mergeable
    quantile histograms, P² sketches) so memory stays O(shards), not
    O(packets).

    Parameters
    ----------
    model:
        Traffic model name (``"uniform"``, ``"zipf"``, ``"gravity"``,
        ``"hotspot"``); ``model_kwargs`` are forwarded to its constructor.
        One model instance is built per graph with a per-graph derived seed,
        so batches are reproducible cell to cell.
    packets / shards / batch_size:
        Stream volume, round-robin shard count (``shards > 1`` forks worker
        processes over the shared, spawn-once compiled forwarding program
        unless ``processes=False``), and streaming granularity.
    engine:
        ``"auto"`` / ``"lockstep"`` / ``"scalar"`` — identical streamed
        statistics either way (the determinism suite asserts it).
    backend:
        Distance-backend spec for each graph's shared scoring oracle.
    profile / service:
        Forwarded to :func:`repro.traffic.engine.run_traffic` — per-stage
        wall-time breakdown (lands in each row as ``profile_<stage>``
        columns) and the steady-state service-loop mode.

    Returns an :class:`ExperimentResult` whose rows mirror :func:`run_matrix`
    field names where the quantities coincide (``avg_stretch``,
    ``max_stretch``, ``median_stretch``, ``p95_stretch``, ``failures``,
    ``engine``) plus throughput (``pps``), delivery counters and the
    hop-count quantiles.
    """
    result = ExperimentResult(name=name)
    result.metadata.update(model=model, packets=packets, shards=shards,
                           batch_size=batch_size, engine=engine)
    for graph_index, (graph_label, graph) in enumerate(graphs):
        oracle = DistanceOracle(graph, backend=backend)
        traffic = make_traffic_model(model, graph, seed=seed * 1000 + graph_index,
                                     **(model_kwargs or {}))
        for k in ks:
            for scheme_name in schemes:
                kwargs = (scheme_kwargs or {}).get(scheme_name, {})
                start = time.perf_counter()
                scheme = build_scheme(scheme_name, graph, k=k, seed=seed,
                                      oracle=oracle, **kwargs)
                build_seconds = time.perf_counter() - start
                report = run_traffic(scheme, traffic, packets, shards=shards,
                                     batch_size=batch_size, engine=engine,
                                     oracle=oracle, processes=processes,
                                     profile=profile, service=service)
                row = report.as_row()
                row.update(graph=graph_label, k=k, n=graph.n,
                           m=graph.num_edges,
                           build_seconds=build_seconds)
                if report.profile:
                    row.update({f"profile_{stage}": round(seconds, 4)
                                for stage, seconds in sorted(report.profile.items())})
                result.add_row(**row)
    return result


def build_matrix(
    name: str,
    schemes: Sequence[str],
    graphs: Sequence[tuple],
    ks: Sequence[int],
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    parallel: Optional[int] = None,
    backend: BackendLike = None,
    keep_instances: bool = False,
) -> ExperimentResult:
    """Build every (scheme, graph, k) combination, timing construction only.

    The construction sibling of :func:`run_matrix`.  Cells of one graph share
    that graph's distance oracle; each cell builds through a
    :class:`BuildContext` carrying the ``parallel`` worker budget, so
    independent scales / cluster chunks / cover exponents inside one scheme
    fan out too.  Per-unit seeds derive from unit indices, never from
    execution order — parallel builds are bit-identical to serial ones.

    Parameters
    ----------
    graphs:
        Sequence of ``(graph_label, WeightedGraph)`` pairs.
    scheme_kwargs:
        Optional per-scheme extra constructor arguments.
    parallel:
        Worker threads for the cell fan-out and the within-cell unit fan-out
        (``None``/``0``/``1`` = fully serial).
    backend:
        Distance-backend spec for each graph's shared oracle (``None`` = the
        scheme's own automatic selection by graph size).
    keep_instances:
        When true, the built scheme instances are returned in
        ``result.metadata["instances"]`` keyed by ``(graph_label, scheme, k)``.

    Returns
    -------
    ExperimentResult with one row per cell: ``build_seconds`` plus the
    instance's headline space/header facts.
    """
    result = ExperimentResult(name=name)
    graphs = list(graphs)
    instances: Dict[tuple, object] = {}
    # one worker budget: when the cells themselves fan out, each cell builds
    # serially inside (otherwise parallel cells × parallel units would spawn
    # up to parallel² threads)
    fan_cells = bool(parallel and parallel > 1
                     and len(graphs) * len(ks) * len(schemes) > 1)
    inner_parallel = None if fan_cells else parallel

    def build_cell(cell):
        graph_label, graph, k, scheme_name, oracle = cell
        kwargs = dict((scheme_kwargs or {}).get(scheme_name, {}))
        context = BuildContext(graph, oracle=oracle, seed=seed,
                               parallel=inner_parallel)
        start = time.perf_counter()
        scheme = build_scheme(scheme_name, graph, k=k, seed=seed, oracle=oracle,
                              context=context, **kwargs)
        build_seconds = time.perf_counter() - start
        row = {
            "graph": graph_label,
            "scheme": scheme_name,
            "k": k,
            "n": graph.n,
            "m": graph.num_edges,
            "build_seconds": build_seconds,
            "max_table_bits": scheme.max_table_bits(),
            "avg_table_bits": scheme.avg_table_bits(),
            "header_bits": scheme.header_bits(),
        }
        return row, scheme

    oracles = {id(graph): DistanceOracle(graph, backend=backend)
               for _, graph in graphs}
    cells = [(label, graph, k, scheme_name, oracles[id(graph)])
             for label, graph in graphs
             for k in ks
             for scheme_name in schemes]
    if fan_cells:
        with ThreadPoolExecutor(max_workers=int(parallel)) as pool:
            built = list(pool.map(build_cell, cells))
    else:
        built = [build_cell(cell) for cell in cells]
    for cell, (row, scheme) in zip(cells, built):
        result.add_row(**row)
        if keep_instances:
            instances[(cell[0], cell[3], cell[2])] = scheme
    if keep_instances:
        result.metadata["instances"] = instances
    return result


def run_live_matrix(
    name: str,
    schemes: Sequence[str],
    graph_factory,
    scenario: str = "flap-heavy",
    k: int = 2,
    epochs: int = 5,
    epoch_packets: int = 100_000,
    stale_packets: int = 4096,
    model: str = "zipf",
    batch_size: int = DEFAULT_BATCH_SIZE,
    shards: int = 1,
    seed: int = 0,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    model_kwargs: Optional[dict] = None,
    scenario_kwargs: Optional[dict] = None,
    backend: BackendLike = None,
    engine: str = "lockstep",
    processes: Optional[bool] = None,
    scoring: str = "exact",
    sample_per_batch: int = 8,
    num_landmarks: int = 16,
    repair: str = "maintain",
    verify_determinism: bool = False,
) -> ExperimentResult:
    """Run the live-network timeline for every scheme; one row per epoch.

    The live sibling of :func:`run_traffic_matrix`: each scheme gets its own
    fresh copy of the graph (``graph_factory()`` — churn mutates it in
    place), its own fresh scenario instance made from ``scenario`` (scenario
    objects are stateful; ``scenario_kwargs`` are forwarded to the named
    scenario's constructor), and the *same* ``seed`` — so every scheme sees
    the identical event sequence, staleness-window probes and traffic
    batches, and the per-epoch rows are directly comparable across schemes.

    Rows carry the union of :meth:`repro.live.EpochRecord.as_row` fields:
    the epoch number, churn/repair accounting (``events``,
    ``repair_strategy``, ``repair_seconds``, ``rebuilt_trees``, ...),
    staleness-window loss (``stale_delivery``, ``stale_loss``), the SLA
    delivery rate and the traffic engine's streamed delivery/stretch/hop
    statistics.  Timeline-level summaries (exact cross-epoch merges plus
    worst-epoch figures) land in ``result.metadata["timelines"]``.
    """
    # local import: repro.live pulls in dynamics.scenario, which imports
    # this module — importing it lazily keeps the package graph acyclic
    from repro.dynamics.scenario import make_scenario
    from repro.live import LiveSimulator

    result = ExperimentResult(name=name)
    result.metadata.update(scenario=scenario, model=model, k=k,
                           epochs=epochs, epoch_packets=epoch_packets,
                           stale_packets=stale_packets, seed=seed,
                           engine=engine, repair=repair, scoring=scoring)
    timelines: Dict[str, dict] = {}
    for scheme_name in schemes:
        graph = graph_factory()
        oracle = DistanceOracle(graph, backend=backend)
        kwargs = (scheme_kwargs or {}).get(scheme_name, {})
        start = time.perf_counter()
        scheme = build_scheme(scheme_name, graph, k=k, seed=seed,
                              oracle=oracle, **kwargs)
        build_seconds = time.perf_counter() - start
        # a fresh scenario per scheme: scenario objects carry plan state
        # (partition regions, flap schedules), so sharing one across
        # timelines would leak one scheme's plan into the next
        scenario_for_scheme = (make_scenario(scenario, **scenario_kwargs)
                               if scenario_kwargs and isinstance(scenario, str)
                               else scenario)
        simulator = LiveSimulator(
            scheme, scenario_for_scheme, oracle=oracle, model=model,
            model_kwargs=model_kwargs, epochs=epochs,
            epoch_packets=epoch_packets, batch_size=batch_size,
            stale_packets=stale_packets, shards=shards,
            processes=processes, engine=engine, scoring=scoring,
            sample_per_batch=sample_per_batch, num_landmarks=num_landmarks,
            repair=repair, seed=seed,
            verify_determinism=verify_determinism)
        timeline = simulator.run()
        for row in timeline.rows():
            row.update(scenario=timeline.scenario, n=graph.n, k=k,
                       build_seconds=round(build_seconds, 4))
            result.add_row(**row)
        timelines[scheme_name] = timeline.summary()
    result.metadata["timelines"] = timelines
    return result
