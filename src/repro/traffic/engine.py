"""The sharded traffic engine: millions of packets over compiled forwarding.

This is the layer that turns the lockstep batch engine
(:func:`repro.routing.forwarding.run_lockstep`) into a traffic system.  A run
is a stream of batch-indexed packet batches from a
:class:`~repro.traffic.models.TrafficModel`; each batch is routed, its walks
verified hop-by-hop against the live graph (one CSR gather), scored against
exact shortest-path distances, and reduced into
:class:`~repro.traffic.stats.TrafficStats`.  Nothing per-packet survives a
batch — memory is O(batch + shards · digests), not O(packets).

Sharding
--------
Batches are partitioned round-robin by index: shard ``i`` of ``S`` streams
batches ``i, i + S, i + 2S, ...``.  Because traffic models regenerate any
batch from ``(seed, batch_index)`` alone, workers receive **no packet data**
— each regenerates exactly its own batches.  With ``processes=True`` the
shards run as forked worker processes sharing the parent's compiled
:class:`ForwardingProgram`, graph CSR and distance-oracle pages copy-on-write
(the program is built **once**, before the fork); each worker returns one
small :class:`TrafficStats` which the parent merges.  With
``processes=False`` the same shard partition runs sequentially in-process —
the merge path is identical, which is what the determinism suite exercises.

Every merged statistic except the P² diagnostics is bit-identical for any
shard count and either engine (see ``traffic.stats``); a coverage check
asserts the merged shards streamed exactly the batch set ``0..B-1``.

Set ``REPRO_TRAFFIC_PROCESSES=0`` to globally disable worker processes
(sandboxes/CI runners where fork is unavailable or undesirable).
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.forwarding import run_lockstep
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.routing.simulator import (
    InvalidRouteError,
    gather_hop_costs,
    resolve_engine_spec,
    verify_lockstep_walks,
)
from repro.traffic.models import TrafficModel
from repro.traffic.stats import TrafficStats
from repro.utils.validation import require

#: default packets per batch (the streaming granularity)
DEFAULT_BATCH_SIZE = 8192

#: default batches per service-loop epoch (one stats flush per epoch)
DEFAULT_EPOCH_BATCHES = 16

#: memory budget for pinned hot-destination distance rows (bytes)
HOT_ROW_BYTES = 256 << 20

#: hard cap on pinned hot rows regardless of graph size
HOT_ROW_CAP = 4096

#: the simulator's engine-spec resolution, shared so both layers agree
resolve_traffic_engine = resolve_engine_spec

#: run-scoped extras inherited by forked shard workers (fork copies parent
#: memory, so anything placed here before the fork is visible in every
#: worker without widening :func:`stream_shard`'s public signature)
_RUN_CONTEXT: Dict[str, object] = {}


class _HotRowCache:
    """Pinned distance rows for the traffic model's hot destinations.

    Under skewed traffic most packets score against a small destination
    head (``model.hot_destinations()``).  This cache pins those rows as one
    contiguous ``(k, n)`` matrix, so per-batch scoring is a single fancy
    gather ``rows[rank[dst], src]`` instead of a per-source group-and-read
    through the oracle.  Distances come from :meth:`DistanceOracle.rows` —
    the exact arrays the oracle would serve — so scores are bit-identical
    with and without the cache.  Rows are capped by a memory budget; misses
    (and every row past the cap) fall back to the oracle unchanged.
    """

    __slots__ = ("rank", "rows")

    def __init__(self, oracle: DistanceOracle, hot: np.ndarray, n: int) -> None:
        hot = np.unique(np.asarray(hot, dtype=np.int64))
        cap = min(HOT_ROW_CAP, max(int(HOT_ROW_BYTES // max(8 * n, 1)), 1))
        hot = hot[:cap]
        self.rank = np.full(n, -1, dtype=np.int64)
        self.rank[hot] = np.arange(hot.size, dtype=np.int64)
        self.rows = np.ascontiguousarray(oracle.rows(hot))

    def pair_distances(self, oracle: DistanceOracle, dst: np.ndarray,
                       src: np.ndarray) -> np.ndarray:
        """``d(dst[i], src[i])`` with hot rows served from the pinned matrix."""
        rank = self.rank[dst]
        hit = rank >= 0
        if hit.all():
            return self.rows[rank, src]
        out = np.empty(dst.size)
        out[hit] = self.rows[rank[hit], src[hit]]
        miss = ~hit
        oracle.prefetch(np.unique(dst[miss]))
        out[miss] = oracle.pair_distances(dst[miss], src[miss])
        return out


def hot_row_cache_for(oracle: DistanceOracle, hot: np.ndarray,
                      graph: WeightedGraph) -> _HotRowCache:
    """The pinned hot-row cache for ``(oracle, hot set)``, memoized per oracle.

    Epoch-structured drivers (the live timeline, scenario runners) call
    :func:`run_traffic` once per epoch with a freshly seeded model whose hot
    set usually has not moved; rebuilding the pinned ``(k, n)`` matrix every
    epoch re-gathers megabytes of rows for nothing.  The cache is memoized
    on the oracle itself, keyed by ``(graph.version, hot-set bytes)``:

    * **churn invalidates** — any graph mutation bumps ``graph.version``,
      so stale distance rows can never score a post-repair epoch;
    * **hot-set migration invalidates** — a flash crowd moving the Zipf
      head (or a storm re-aiming its hotspots) changes the fingerprint, so
      rows pinned for the *old* crowd are dropped, not silently reused for
      destinations they never covered.

    The memo survives the shared-memory arena: ``SharedArena.close``
    restores the adopted ``rows`` attribute to the original in-process
    array before unlinking the block.
    """
    hot = np.unique(np.asarray(hot, dtype=np.int64))
    key = (graph.version, hot.tobytes())
    memo = getattr(oracle, "_traffic_hot_memo", None)
    if memo is not None and memo[0] == key:
        return memo[1]
    oracle.prefetch(hot)
    cache = _HotRowCache(oracle, hot, graph.n)
    oracle._traffic_hot_memo = (key, cache)
    return cache


class _BatchBuffers:
    """Warm per-shard scratch reused across service-loop batches.

    Steady-state service shards route the same batch size forever; the
    buffers keep the per-batch stretch scratch allocated once per shard
    instead of once per batch.  Values folded into stats are copies
    (``stretch[measured]`` is a fancy-index copy), so reuse never aliases
    anything a later batch could clobber.
    """

    __slots__ = ("capacity", "stretch")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self.stretch = np.ones(self.capacity)


def num_batches(packets: int, batch_size: int) -> int:
    """Number of batches a run of ``packets`` splits into."""
    require(packets > 0, "need at least one packet")
    require(batch_size > 0, "batch size must be positive")
    return int(math.ceil(packets / batch_size))


def batch_size_of(batch_index: int, packets: int, batch_size: int) -> int:
    """Size of batch ``batch_index`` (the last batch may be partial).

    Depends only on ``(packets, batch_size, batch_index)`` so every shard —
    and every shard *count* — agrees on the exact packet set.
    """
    return int(min(batch_size, packets - batch_index * batch_size))


def _tick(timings: Optional[Dict[str, float]]) -> float:
    """Stage-timer read (0.0 when profiling is off — avoids clock calls)."""
    return time.perf_counter() if timings is not None else 0.0


def _lap(timings: Optional[Dict[str, float]], stage: str, t0: float) -> None:
    """Accumulate wall seconds since ``t0`` under ``stage``."""
    if timings is not None:
        timings[stage] = timings.get(stage, 0.0) + (time.perf_counter() - t0)


def _route_batch_lockstep(program, graph: WeightedGraph, src: np.ndarray,
                          dst: np.ndarray,
                          timings: Optional[Dict[str, float]] = None,
                          ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Route one batch through the lockstep engine; verify; reduce.

    Returns ``(found, costs, hops)`` — the walks themselves are dropped once
    the CSR gather has certified every hop and accumulated the true costs.
    ``timings`` accumulates per-stage seconds (``plan``/``step`` from the
    engine, ``verify`` here).
    """
    outcome = run_lockstep(program, src, dst, materialize=False,
                           timings=timings)
    t0 = _tick(timings)
    costs = verify_lockstep_walks(graph, outcome, src.size, dst)
    real = outcome.hop_heads != outcome.hop_tails
    hops = np.bincount(outcome.hop_index[real], minlength=src.size)
    _lap(timings, "verify", t0)
    return outcome.found, costs, hops


def _route_batch_scalar(scheme, graph: WeightedGraph, src: np.ndarray,
                        dst: np.ndarray,
                        timings: Optional[Dict[str, float]] = None,
                        ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference engine: per-packet ``route()``, identical reductions."""
    t0 = _tick(timings)
    names = graph.names_view()
    found = np.empty(src.size, dtype=bool)
    idx_parts: List[int] = []
    head_parts: List[int] = []
    tail_parts: List[int] = []
    for i, (u, v) in enumerate(zip(src.tolist(), dst.tolist())):
        result = scheme.route(u, names[v])
        found[i] = result.found
        path = result.path
        require(len(path) >= 1 and path[0] == u,
                f"scalar route for ({u}, {v}) does not start at its source")
        if result.found and path[-1] != v:
            raise InvalidRouteError(
                f"scheme reports 'found' but walk ends at {path[-1]}, "
                f"destination is {v}")
        for a, b in zip(path, path[1:]):
            idx_parts.append(i)
            head_parts.append(a)
            tail_parts.append(b)
    _lap(timings, "step", t0)
    t0 = _tick(timings)
    idx = np.asarray(idx_parts, dtype=np.int64)
    heads = np.asarray(head_parts, dtype=np.int64)
    tails = np.asarray(tail_parts, dtype=np.int64)
    costs = gather_hop_costs(graph, idx, heads, tails, src.size)
    real = heads != tails
    hops = np.bincount(idx[real], minlength=src.size)
    _lap(timings, "verify", t0)
    return found, costs, hops


def _route_and_score(scheme, program, oracle: DistanceOracle, engine: str,
                     src: np.ndarray, dst: np.ndarray,
                     cache: Optional[_HotRowCache] = None,
                     buffers: Optional[_BatchBuffers] = None,
                     timings: Optional[Dict[str, float]] = None,
                     scorer=None, batch_index: int = 0):
    """Route one batch, verify it, and score it.

    The shared per-batch body of :func:`stream_shard` and
    :func:`run_traffic_exact` — one place owns the scoring rule, so the
    exact reference always certifies the same quantity the streaming engine
    reduces.  Returns ``(found, hops, finite, measured, stretch, errors)``
    where ``stretch`` is 1.0 outside the ``measured`` mask and for
    zero-distance trivial pairs, and ``errors`` is the approximate modes'
    per-batch certificate sample (``None`` under exact scoring).

    Under exact scoring (``scorer=None``) every delivered reachable packet
    is measured against an exact distance row: ``cache`` serves hot
    destination rows without touching the oracle; ``buffers`` (service
    loop) reuses the stretch scratch across batches; both are exact.  A
    :mod:`repro.traffic.scoring` scorer replaces the distance-row scoring
    with its own rule (component reachability + sampled / landmark-bounded
    stretch) — delivery accounting stays exact either way.
    """
    graph = scheme.graph
    if engine == "lockstep":
        found, costs, hops = _route_batch_lockstep(program, graph, src, dst,
                                                   timings=timings)
    else:
        found, costs, hops = _route_batch_scalar(scheme, graph, src, dst,
                                                 timings=timings)
    t0 = _tick(timings)
    if scorer is not None:
        score = scorer.score(batch_index, src, dst, costs, found)
        _lap(timings, "score", t0)
        return (found, hops, score.finite, score.measured, score.stretch,
                score.error_values)
    if cache is not None:
        shortest = cache.pair_distances(oracle, dst, src)
    else:
        oracle.prefetch(np.unique(dst))
        shortest = oracle.pair_distances(dst, src)   # symmetric: dst rows reused
    finite = np.isfinite(shortest)
    measured = found & finite
    if buffers is not None and src.size <= buffers.capacity:
        stretch = buffers.stretch[:src.size]
        stretch.fill(1.0)
    else:
        stretch = np.ones(src.size)
    np.divide(costs, shortest, out=stretch, where=measured & (shortest > 0))
    _lap(timings, "score", t0)
    return found, hops, finite, measured, stretch, None


def stream_shard(scheme: RoutingSchemeInstance, model: TrafficModel,
                 packets: int, batch_size: int = DEFAULT_BATCH_SIZE,
                 engine: str = "lockstep", shard: int = 0, shards: int = 1,
                 oracle: Optional[DistanceOracle] = None,
                 profile_out: Optional[Dict[str, float]] = None,
                 service: bool = False,
                 epoch_batches: Optional[int] = None) -> TrafficStats:
    """Stream one shard's batches (``shard, shard + shards, ...``) to stats.

    This is the worker body of the sharded driver and the whole driver when
    ``shards == 1``.  Per batch: regenerate the packets, route them, verify
    every hop, score stretch against exact distances (hot destination rows
    served from the run's pinned cache; the rest prefetched per batch), and
    fold the reductions into the stats.

    ``service=True`` switches to the steady-state service loop: the shard
    keeps one warm set of batch buffers and flushes its statistics through a
    fresh per-epoch :class:`TrafficStats` every ``epoch_batches`` batches,
    merging epochs into the shard total.  Because epochs partition the
    shard's batch sequence in index order and ``TrafficStats`` merges are
    exact, every official statistic is bit-identical to batch mode (the P²
    diagnostics become epoch-weighted averages — documented as
    order-dependent).  ``profile_out``, when given, is filled with
    accumulated per-stage wall seconds (plan/step/verify/score/reduce).
    """
    graph = scheme.graph
    oracle = oracle or DistanceOracle(graph)
    engine = resolve_traffic_engine(scheme, engine)
    program = scheme.compiled_forwarding() if engine == "lockstep" else None
    cache = _RUN_CONTEXT.get("hot_cache")
    scorer = _RUN_CONTEXT.get("scorer")
    timings: Optional[Dict[str, float]] = {} if profile_out is not None else None
    total = num_batches(packets, batch_size)
    my_batches = range(shard, total, shards)

    def run_batches(indices, into: TrafficStats,
                    buffers: Optional[_BatchBuffers] = None) -> None:
        for b in indices:
            size = batch_size_of(b, packets, batch_size)
            src, dst = model.batch(b, size)
            found, hops, finite, measured, stretch, errors = _route_and_score(
                scheme, program, oracle, engine, src, dst,
                cache=cache, buffers=buffers, timings=timings,
                scorer=scorer, batch_index=b)
            t0 = _tick(timings)
            into.update_batch(
                b,
                stretch_values=stretch[measured],
                hop_values=hops,
                packets=size,
                delivered=int(np.count_nonzero(found)),
                failures=int(np.count_nonzero(~found & finite)),
                unreachable=int(np.count_nonzero(~finite)),
                error_values=errors,
            )
            _lap(timings, "reduce", t0)

    bounded = bool(getattr(scorer, "bounded", False))
    stats = TrafficStats(bounded=bounded)
    if service:
        epoch = int(epoch_batches or DEFAULT_EPOCH_BATCHES)
        require(epoch >= 1, "an epoch must cover at least one batch")
        buffers = _BatchBuffers(batch_size)
        pending = list(my_batches)
        for lo in range(0, len(pending), epoch):
            epoch_stats = TrafficStats(bounded=bounded)
            run_batches(pending[lo:lo + epoch], epoch_stats, buffers)
            stats.merge(epoch_stats)
    else:
        run_batches(my_batches, stats)
    if profile_out is not None and timings:
        for stage, seconds in timings.items():
            profile_out[stage] = profile_out.get(stage, 0.0) + seconds
    return stats


@dataclass
class TrafficReport:
    """Outcome of one traffic run: throughput facts + streamed statistics."""

    scheme: str
    model: str
    engine: str
    packets: int
    shards: int
    batch_size: int
    processes: bool
    seconds: float
    stats: TrafficStats
    #: per-stage wall seconds (plan/step/verify/score/reduce) summed across
    #: shards; only filled when the run requested ``profile=True``
    profile: Optional[Dict[str, float]] = None
    #: whether the run used the steady-state service loop
    service: bool = False
    #: whether program arrays / hot rows were published via shared memory
    shared_memory: bool = False
    #: stretch scoring mode ("exact" / "sampled" / "landmark")
    scoring: str = "exact"

    @property
    def pps(self) -> float:
        """End-to-end routed packets per second (including verification)."""
        return self.packets / self.seconds if self.seconds > 0 else float("inf")

    def summary(self, include_p2: bool = True) -> Dict[str, float]:
        """The streamed statistics (see :meth:`TrafficStats.summary`)."""
        return self.stats.summary(include_p2=include_p2)

    def as_row(self) -> Dict[str, object]:
        """Flat row for :class:`~repro.experiments.harness.ExperimentResult`.

        Field names mirror ``run_matrix`` rows where the quantities coincide
        (``avg_stretch``, ``max_stretch``, ``median_stretch``,
        ``p95_stretch``, ``failures``, ``engine``) so traffic rows drop into
        the existing reporting/table helpers unchanged.  Under a *bounding*
        scorer (landmark mode) the stretch columns instead carry the
        ``stretch_upper`` prefix — ``avg_stretch_upper``,
        ``stretch_upper_p99``, ... — plus the ``avg/max_score_error``
        certificate-slack fields, so a certified bound can never be read as
        an exact measurement.
        """
        s = self.summary()
        p = self.stats.stretch_prefix
        row: Dict[str, object] = {
            "scheme": self.scheme,
            "model": self.model,
            "engine": self.engine,
            "scoring": self.scoring,
            "packets": self.packets,
            "shards": self.shards,
            "processes": self.processes,
            "seconds": round(self.seconds, 4),
            "pps": round(self.pps, 1),
            "delivered": int(s["delivered"]),
            "failures": int(s["failures"]),
            "unreachable": int(s["unreachable"]),
        }
        if self.stats.bounded:
            row.update({
                f"avg_{p}": s[f"avg_{p}"],
                f"max_{p}": s[f"max_{p}"],
                f"{p}_p50": s[f"{p}_p50"],
                f"{p}_p95": s[f"{p}_p95"],
                f"{p}_p99": s[f"{p}_p99"],
            })
        else:
            row.update({
                "avg_stretch": s["avg_stretch"],
                "max_stretch": s["max_stretch"],
                "median_stretch": s["stretch_p50"],
                "p95_stretch": s["stretch_p95"],
                "p99_stretch": s["stretch_p99"],
                "p2_median_stretch": s["stretch_p2_p50"],
                "p2_p95_stretch": s["stretch_p2_p95"],
            })
        for key in ("avg_score_error", "max_score_error", f"{p}_stderr"):
            if key in s:
                row[key] = s[key]
        row.update({
            "avg_hops": s["avg_hops"],
            "max_hops": s["max_hops"],
            "median_hops": s["hops_p50"],
            "p95_hops": s["hops_p95"],
        })
        return row


def processes_enabled() -> bool:
    """Whether worker processes may be used on this platform/configuration."""
    if os.environ.get("REPRO_TRAFFIC_PROCESSES", "") == "0":
        return False
    if not hasattr(os, "fork"):
        return False
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork start method
        return False
    return True


def _run_sharded_processes(scheme, model, packets, batch_size, engine, shards,
                           oracle, profile: bool = False,
                           service: bool = False,
                           epoch_batches: Optional[int] = None,
                           ) -> Tuple[TrafficStats, Optional[Dict[str, float]]]:
    """Fork one worker per shard; merge their stats (and stage profiles).

    The compiled program / CSR / oracle pages are shared copy-on-write with
    the parent (fork start method — no pickling of the program, ever), and
    arrays the caller published through a :class:`~repro.traffic.shm.SharedArena`
    are true shared memory.  A worker failure surfaces as a raised
    :class:`RuntimeError` with the worker's traceback text.
    """
    import multiprocessing
    import queue as queue_module

    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()

    def worker(shard_id: int) -> None:
        try:
            # only non-default extras are forwarded, so tests stubbing
            # stream_shard with its original signature keep working
            extra: Dict[str, object] = {}
            prof: Optional[Dict[str, float]] = None
            if profile:
                prof = {}
                extra["profile_out"] = prof
            if service:
                extra["service"] = True
                extra["epoch_batches"] = epoch_batches
            stats = stream_shard(scheme, model, packets, batch_size=batch_size,
                                 engine=engine, shard=shard_id, shards=shards,
                                 oracle=oracle, **extra)
            queue.put((shard_id, stats, None, prof))
        except BaseException as exc:  # noqa: BLE001 - reported to the parent
            import traceback

            queue.put((shard_id, None, traceback.format_exc() or repr(exc),
                       None))

    procs = [ctx.Process(target=worker, args=(shard_id,), daemon=True)
             for shard_id in range(shards)]
    for proc in procs:
        proc.start()
    per_shard: Dict[int, TrafficStats] = {}
    per_shard_prof: Dict[int, Optional[Dict[str, float]]] = {}
    failures: List[str] = []
    while len(per_shard) + len(failures) < shards:
        try:
            shard_id, stats, error, prof = queue.get(timeout=1.0)
        except queue_module.Empty:
            # a worker killed by the kernel (OOM, segfault) never reaches
            # queue.put — without this liveness check the parent would block
            # on the queue forever
            if all(proc.exitcode is not None for proc in procs):
                try:
                    shard_id, stats, error, prof = queue.get(timeout=2.0)  # last flush
                except queue_module.Empty:
                    exits = [(proc.pid, proc.exitcode) for proc in procs]
                    raise RuntimeError(
                        f"traffic worker(s) exited without reporting "
                        f"(pid, exitcode): {exits}") from None
            else:
                continue
        if error is not None:
            failures.append(f"shard {shard_id}:\n{error}")
        else:
            per_shard[shard_id] = stats
            per_shard_prof[shard_id] = prof
    for proc in procs:
        proc.join()
    if failures:
        raise RuntimeError("traffic worker(s) failed:\n" + "\n".join(failures))
    # merge in shard-id order, not queue-arrival order: the P² diagnostics
    # fold weighted floats, so a fixed order keeps repeated runs bit-identical
    merged: Optional[TrafficStats] = None
    for shard_id in sorted(per_shard):
        if merged is None:
            merged = per_shard[shard_id]
        else:
            merged.merge(per_shard[shard_id])
    assert merged is not None
    merged_prof: Optional[Dict[str, float]] = None
    if profile:
        merged_prof = {}
        for shard_id in sorted(per_shard_prof):
            for stage, seconds in (per_shard_prof[shard_id] or {}).items():
                merged_prof[stage] = merged_prof.get(stage, 0.0) + seconds
    return merged, merged_prof


def run_traffic(scheme: RoutingSchemeInstance, model: TrafficModel,
                packets: int, shards: int = 1,
                batch_size: int = DEFAULT_BATCH_SIZE, engine: str = "auto",
                oracle: Optional[DistanceOracle] = None,
                processes: Optional[bool] = None, profile: bool = False,
                service: bool = False, epoch_batches: Optional[int] = None,
                shared_memory: Optional[bool] = None,
                scoring: object = "exact") -> TrafficReport:
    """Route ``packets`` packets of ``model`` traffic through ``scheme``.

    Parameters
    ----------
    shards:
        Number of round-robin batch shards.  With ``processes=True`` (the
        default when ``shards > 1`` and fork is available) each shard is a
        forked worker over the shared, spawn-once compiled program; with
        ``processes=False`` the shards stream sequentially in-process —
        identical partition and merge, no concurrency (testing/debug).
    engine:
        ``"auto"`` / ``"lockstep"`` / ``"scalar"`` — same meaning as the
        simulator's evaluation engines; the streamed statistics are
        identical under either engine.
    oracle:
        Shared distance oracle for exact stretch scoring (defaults to
        backend auto-selection by graph size).
    profile:
        Collect per-stage wall seconds (plan/step/verify/score/reduce),
        summed across shards, into ``report.profile``.
    service / epoch_batches:
        Steady-state service loop: shards reuse warm batch buffers and
        flush statistics through per-epoch :class:`TrafficStats` merges
        every ``epoch_batches`` batches.  Official statistics are
        bit-identical to batch mode (see :func:`stream_shard`).
    shared_memory:
        Publish the compiled program's arrays and the pinned hot
        destination-distance rows into ``multiprocessing.shared_memory``
        for the duration of the run (zero-copy across forked shards).
        Defaults to on exactly when worker processes are used; the
        ``REPRO_TRAFFIC_SHM=0`` kill-switch overrides everything.
    scoring:
        Stretch scoring mode: ``"exact"`` (the default — every delivered
        packet scored against an exact distance row), ``"sampled"`` or
        ``"landmark"`` (see :mod:`repro.traffic.scoring`), or a prebuilt
        scorer instance.  The approximate modes never materialize exact
        rows beyond their seeded per-batch sample — this is what makes
        million-packet evaluation possible at n=100k — and keep the
        delivery/failure/unreachable counters exact.

    Returns a :class:`TrafficReport`; raises if any routed walk fails hop
    verification or the merged shards did not cover every batch exactly once.
    """
    require(shards >= 1, "need at least one shard")
    graph = scheme.graph
    oracle = oracle or DistanceOracle(graph)
    engine = resolve_traffic_engine(scheme, engine)
    program = scheme.compiled_forwarding() if engine == "lockstep" else None
    graph.to_scipy_csr()               # warm the shared CSR cache, pre-fork
    graph.component_ids()
    if isinstance(scoring, str):
        from repro.traffic.scoring import make_scorer

        scorer = make_scorer(scoring, graph, oracle,
                             seed=getattr(model, "seed", 0))
    else:
        scorer = scoring
    scoring_mode = "exact" if scorer is None else scorer.mode
    hot = model.hot_destinations()
    hot_cache: Optional[_HotRowCache] = None
    if hot is not None and np.asarray(hot).size:
        if scorer is None:
            # fill the hot destinations' distance rows once, pre-fork: under
            # a lazy backend every shard scores against the same concentrated
            # destination set, and pages filled after the fork are per-worker
            # (copy-on-write has diverged), so a cold oracle would re-run the
            # identical Dijkstras in every worker.  Then pin the rows as one
            # contiguous matrix so hot-batch scoring is a single gather —
            # memoized per oracle and invalidated by churn (graph.version)
            # or hot-set migration (fingerprint), so epoch drivers reuse it.
            # Approximate scoring modes skip this: one exact Dijkstra per hot
            # destination is the exact cost those modes exist to avoid.
            hot_cache = hot_row_cache_for(oracle, np.asarray(hot), graph)
        if program is not None:
            # warm each sorted table's per-destination column cache on the
            # hot set pre-fork so forked shards inherit (and, under shared
            # memory, share) the dense columns instead of building them
            # once per worker
            for table in program.tables:
                table.batch_view(np.asarray(hot, dtype=np.int64))
    use_processes = processes if processes is not None else shards > 1
    use_processes = bool(use_processes) and shards > 1 and processes_enabled()

    arena = None
    use_shm = bool(shared_memory) if shared_memory is not None else use_processes
    if use_shm:
        from repro.traffic.shm import SharedArena, shm_enabled

        if shm_enabled():
            arena = SharedArena()
            if program is not None:
                arena.publish_program(program)
            if hot_cache is not None:
                arena.adopt(hot_cache, "rows")
        else:
            use_shm = False

    prof: Optional[Dict[str, float]] = {} if profile else None
    _RUN_CONTEXT["hot_cache"] = hot_cache
    _RUN_CONTEXT["scorer"] = scorer
    start = time.perf_counter()
    try:
        if use_processes:
            stats, worker_prof = _run_sharded_processes(
                scheme, model, packets, batch_size, engine, shards, oracle,
                profile=profile, service=service, epoch_batches=epoch_batches)
            if prof is not None and worker_prof:
                prof.update(worker_prof)
        else:
            stats = stream_shard(scheme, model, packets, batch_size=batch_size,
                                 engine=engine, shard=0, shards=shards,
                                 oracle=oracle, profile_out=prof,
                                 service=service, epoch_batches=epoch_batches)
            for shard in range(1, shards):
                stats.merge(stream_shard(scheme, model, packets,
                                         batch_size=batch_size, engine=engine,
                                         shard=shard, shards=shards,
                                         oracle=oracle, profile_out=prof,
                                         service=service,
                                         epoch_batches=epoch_batches))
    finally:
        _RUN_CONTEXT.pop("hot_cache", None)
        _RUN_CONTEXT.pop("scorer", None)
        if arena is not None:
            arena.close()
    seconds = time.perf_counter() - start

    expected = set(range(num_batches(packets, batch_size)))
    require(stats.batches == expected,
            f"shard merge did not cover every batch exactly once "
            f"(missing {sorted(expected - stats.batches)[:4]})")
    require(stats.packets == packets, "merged packet count mismatch")
    return TrafficReport(
        scheme=scheme.scheme_name, model=model.name, engine=engine,
        packets=packets, shards=shards, batch_size=batch_size,
        processes=use_processes, seconds=seconds, stats=stats,
        profile=prof, service=bool(service),
        shared_memory=arena is not None, scoring=scoring_mode)


def run_traffic_exact(scheme: RoutingSchemeInstance, model: TrafficModel,
                      packets: int, batch_size: int = DEFAULT_BATCH_SIZE,
                      engine: str = "auto",
                      oracle: Optional[DistanceOracle] = None) -> Dict[str, np.ndarray]:
    """Exact per-packet reference for sketch-accuracy checks (O(packets) memory).

    Routes the same batch stream as :func:`run_traffic` but **keeps** the
    per-packet stretch and hop arrays, so tests and the E16 parity stage can
    compare streamed quantiles against ground truth.  Never use this at
    traffic scale — that is the whole point of the streaming engine.
    """
    graph = scheme.graph
    oracle = oracle or DistanceOracle(graph)
    engine = resolve_traffic_engine(scheme, engine)
    program = scheme.compiled_forwarding() if engine == "lockstep" else None
    stretch_parts: List[np.ndarray] = []
    hop_parts: List[np.ndarray] = []
    found_parts: List[np.ndarray] = []
    finite_parts: List[np.ndarray] = []
    for b in range(num_batches(packets, batch_size)):
        size = batch_size_of(b, packets, batch_size)
        src, dst = model.batch(b, size)
        found, hops, finite, measured, stretch, _ = _route_and_score(
            scheme, program, oracle, engine, src, dst)
        stretch_parts.append(stretch[measured])
        hop_parts.append(hops)
        found_parts.append(found)
        finite_parts.append(finite)
    return {
        "stretch": np.concatenate(stretch_parts),
        "hops": np.concatenate(hop_parts),
        "found": np.concatenate(found_parts),
        "finite": np.concatenate(finite_parts),
    }
