"""Seeded traffic models: who talks to whom, as index arrays.

A traffic model turns a graph into an endless, deterministic stream of
(source, destination) packet batches.  Batches are addressed by *index*:
``model.batch(b, size)`` derives its generator from ``(seed, b)`` alone, so

* the same seed reproduces bit-identical batches in any order,
* a sharded driver can hand batch ``b`` to any worker without shipping
  arrays — every shard regenerates exactly the packets it was assigned,
* statistics keyed by batch index are partition-independent.

Every model conditions its pairs on graph connectivity (source and
destination always share a component, and differ), because the evaluation
layer measures stretch against finite shortest-path distances.  The models:

* :class:`UniformTraffic` — the legacy regime: both endpoints uniform.
* :class:`ZipfTraffic` — Zipf-popular destinations (rank-``r`` destination
  drawn with probability ∝ ``1/(r+1)^s`` over a seeded popularity
  permutation, optionally truncated to a hot ``support`` set).  The skewed
  regime compact-routing schemes were designed for.
* :class:`GravityTraffic` — gravity/locality flows: endpoints drawn by
  degree-mass, a ``locality`` fraction of packets staying inside the
  source's ``hops``-hop neighborhood.
* :class:`HotspotTraffic` — adversarial concentration: a small hotspot set
  absorbs a fixed fraction of all packets (placement by top degree, low
  degree, or seeded random).

All draws are vectorized; per-batch cost is O(size) array work over
structures precomputed once at model construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import require

#: derivation namespaces so init-time and batch-time streams never collide
_INIT_KEY = 0
_BATCH_KEY = 1


class _ComponentIndex:
    """Connectivity scaffolding shared by every model.

    Nodes grouped by component (sorted by node id inside each group), the
    position of each node inside its group, and the *eligible* node set —
    members of components with at least two nodes, the only nodes that can
    ever be an endpoint of a valid packet.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        comp = graph.component_ids()
        sizes = np.bincount(comp)
        order = np.argsort(comp, kind="stable")       # groups nodes per component
        self.comp = comp
        self.sorted_nodes = order.astype(np.int64)
        self.start = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
        self.count = sizes.astype(np.int64)
        pos = np.empty(graph.n, dtype=np.int64)
        pos[order] = np.arange(graph.n, dtype=np.int64)
        self.pos = pos                                 # global slot in sorted_nodes
        self.eligible = np.flatnonzero(sizes[comp] >= 2).astype(np.int64)
        require(self.eligible.size > 0,
                "traffic needs at least one connected pair of distinct nodes")

    def uniform_nodes(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` endpoints uniform over the eligible nodes."""
        return self.eligible[rng.integers(0, self.eligible.size, size=size)]

    def partner_uniform(self, rng: np.random.Generator,
                        nodes: np.ndarray) -> np.ndarray:
        """A uniform partner in each node's component, excluding the node."""
        comps = self.comp[nodes]
        counts = self.count[comps]
        local = rng.integers(0, counts - 1)            # slot among the others
        own = self.pos[nodes] - self.start[comps]
        local += local >= own                          # skip the node itself
        return self.sorted_nodes[self.start[comps] + local]

    def weighted_cdf(self, masses: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(eligible nodes, cumulative mass) for global inverse-CDF draws."""
        weights = np.asarray(masses, dtype=float)[self.eligible]
        require(bool((weights >= 0).all()), "endpoint masses must be non-negative")
        cum = np.cumsum(weights)
        require(cum[-1] > 0, "endpoint masses must not all be zero")
        return self.eligible, cum


def _draw_cdf(rng: np.random.Generator, nodes: np.ndarray, cum: np.ndarray,
              size: int) -> np.ndarray:
    """``size`` inverse-CDF draws from a (nodes, cumulative-mass) table."""
    u = rng.random(size) * cum[-1]
    return nodes[np.searchsorted(cum, u, side="right")]


class TrafficModel:
    """Base class: seeded, batch-indexed pair generation over one graph.

    ``seed`` drives the per-batch packet draws.  ``structure_seed``
    (defaulting to ``seed``) drives the one-time structure — popularity
    permutations, hotspot placement — separately, so a driver can re-seed
    the packet stream every epoch while *pinning* the hot set, or migrate
    the hot set mid-run while keeping the stream cadence: the two axes the
    adversarial scenarios (flash crowds, hotspot storms) steer
    independently.
    """

    name = "abstract"

    def __init__(self, graph: WeightedGraph, seed: SeedLike = 0,
                 structure_seed: Optional[SeedLike] = None) -> None:
        self.graph = graph
        self.seed = seed
        self.structure_seed = seed if structure_seed is None else structure_seed
        self.index = _ComponentIndex(graph)

    def _init_rng(self) -> np.random.Generator:
        """Generator for one-time structure (popularity permutations etc.)."""
        return derive_rng(self.structure_seed, _INIT_KEY)

    def batch(self, batch_index: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Packet batch ``batch_index``: parallel (sources, destinations).

        Content depends only on the model configuration, the seed, the batch
        index and the size — never on which batches were generated before or
        on which shard asks.
        """
        require(batch_index >= 0, "batch index must be non-negative")
        require(size > 0, "batch size must be positive")
        rng = derive_rng(self.seed, _BATCH_KEY, batch_index)
        src, dst = self._draw(rng, int(size))
        return src.astype(np.int64), dst.astype(np.int64)

    def _draw(self, rng: np.random.Generator,
              size: int) -> Tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def hot_destinations(self) -> np.ndarray:
        """Destinations likely to dominate this model's traffic (always an array).

        The sharded engine prefetches these nodes' distance rows **before**
        forking workers (and publishes them as the zero-copy shared-memory
        hot-row cache), so under a lazy backend the (identical) Dijkstra
        fills run once in the parent and reach every worker instead of being
        recomputed per shard.  The contract is uniform across all bundled
        models: every model returns an int64 index array — *empty* when the
        model has no concentrated destination set — so single-vs-sharded
        comparisons run at equal cache state for every model (asserted by
        the conformance suite).
        """
        return np.zeros(0, dtype=np.int64)

    def describe(self) -> Dict[str, object]:
        """Model parameters for reports/benches."""
        return {"model": self.name, "n": self.graph.n}


class UniformTraffic(TrafficModel):
    """Both endpoints uniform over connected pairs (the legacy regime)."""

    name = "uniform"

    def _draw(self, rng, size):
        src = self.index.uniform_nodes(rng, size)
        dst = self.index.partner_uniform(rng, src)
        return src, dst

    def hot_destinations(self):
        """Explicitly empty: uniform traffic has no concentrated destinations."""
        return np.zeros(0, dtype=np.int64)


class ZipfTraffic(TrafficModel):
    """Zipf-skewed destination popularity, uniform sources.

    A seeded permutation of the eligible nodes assigns popularity ranks;
    rank ``r`` receives weight ``1 / (r + 1) ** exponent``.  ``support``
    truncates the distribution to the hottest ``support`` destinations —
    the knob that keeps exact-stretch evaluation tractable at large ``n``
    (distance rows are needed only for destinations that actually occur).
    Sources are uniform among the destination's component peers.
    """

    name = "zipf"

    def __init__(self, graph: WeightedGraph, seed: SeedLike = 0,
                 exponent: float = 1.1, support: Optional[int] = None,
                 structure_seed: Optional[SeedLike] = None) -> None:
        super().__init__(graph, seed, structure_seed=structure_seed)
        require(exponent > 0, "zipf exponent must be positive")
        self.exponent = float(exponent)
        eligible = self.index.eligible
        popular = self._init_rng().permutation(eligible)
        if support is not None:
            require(support >= 1, "zipf support must be at least 1")
            popular = popular[:min(int(support), popular.size)]
        self.support = int(popular.size)
        weights = 1.0 / np.power(np.arange(1, popular.size + 1, dtype=float),
                                 self.exponent)
        self._popular = popular.astype(np.int64)
        self._cum = np.cumsum(weights)

    def _draw(self, rng, size):
        dst = _draw_cdf(rng, self._popular, self._cum, size)
        src = self.index.partner_uniform(rng, dst)
        return src, dst

    def hot_destinations(self):
        return self._popular

    def describe(self):
        out = super().describe()
        out.update(exponent=self.exponent, support=self.support)
        return out


class GravityTraffic(TrafficModel):
    """Gravity flows with locality: mass ∝ degree^alpha, local bias.

    Sources are drawn by degree-mass.  With probability ``locality`` the
    destination is uniform inside the source's ``hops``-hop neighborhood
    (capped at ``max_neighbors`` per node, computed once from boolean CSR
    powers); otherwise it is a degree-mass draw from the source's component
    (falling back to a uniform component peer when the global draw lands on
    the source itself).
    """

    name = "gravity"

    def __init__(self, graph: WeightedGraph, seed: SeedLike = 0,
                 alpha: float = 1.0, locality: float = 0.7, hops: int = 2,
                 max_neighbors: int = 64,
                 structure_seed: Optional[SeedLike] = None) -> None:
        super().__init__(graph, seed, structure_seed=structure_seed)
        require(0.0 <= locality <= 1.0, "locality must be in [0, 1]")
        require(hops >= 1, "neighborhood radius must be at least 1 hop")
        self.alpha = float(alpha)
        self.locality = float(locality)
        self.hops = int(hops)
        degrees = np.asarray([graph.degree(v) for v in range(graph.n)], dtype=float)
        self._mass = np.power(np.maximum(degrees, 0.0), self.alpha)
        self._nodes, self._cum = self.index.weighted_cdf(self._mass)
        self._build_neighborhoods(int(max_neighbors))
        # hot-destination contract: the top-k eligible nodes by degree mass —
        # the heads of the global gravity draw (ties broken by node id)
        k = min(64, self._nodes.size)
        order = np.lexsort((self._nodes, -self._mass[self._nodes]))
        self._hot = np.sort(self._nodes[order[:k]]).astype(np.int64)

    def _build_neighborhoods(self, max_neighbors: int) -> None:
        adj = (self.graph.to_scipy_csr() > 0).astype(np.int32).tocsr()
        reach = adj.copy()
        for _ in range(self.hops - 1):
            reach = ((reach @ adj) + reach).tocsr()
            reach.data = np.ones_like(reach.data)  # keep counts from overflowing
        flat_parts, starts, counts = [], [], []
        offset = 0
        indptr, indices = reach.indptr, reach.indices
        for v in range(self.graph.n):
            row = indices[indptr[v]:indptr[v + 1]]
            row = row[row != v][:max_neighbors]
            flat_parts.append(row)
            starts.append(offset)
            counts.append(row.size)
            offset += row.size
        self._nbr_flat = (np.concatenate(flat_parts).astype(np.int64)
                          if offset else np.zeros(0, dtype=np.int64))
        self._nbr_start = np.asarray(starts, dtype=np.int64)
        self._nbr_count = np.asarray(counts, dtype=np.int64)

    def _draw(self, rng, size):
        src = _draw_cdf(rng, self._nodes, self._cum, size)
        local = rng.random(size) < self.locality
        local &= self._nbr_count[src] > 0           # eligible nodes always have ≥1
        dst = np.empty(size, dtype=np.int64)
        if local.any():
            s = src[local]
            slot = rng.integers(0, self._nbr_count[s])
            dst[local] = self._nbr_flat[self._nbr_start[s] + slot]
        far = ~local
        if far.any():
            candidates = _draw_cdf(rng, self._nodes, self._cum, int(far.sum()))
            # global mass draw must stay inside the source's component and
            # avoid the source; repair the misses with a uniform peer
            s = src[far]
            bad = (self.index.comp[candidates] != self.index.comp[s]) \
                | (candidates == s)
            if bad.any():
                candidates[bad] = self.index.partner_uniform(rng, s[bad])
            dst[far] = candidates
        return src, dst

    def hot_destinations(self):
        """Top-k degree-mass nodes: the heavy head of the gravity draw."""
        return self._hot

    def describe(self):
        out = super().describe()
        out.update(alpha=self.alpha, locality=self.locality, hops=self.hops)
        return out


class HotspotTraffic(TrafficModel):
    """Adversarial hotspot concentration: few destinations absorb most load.

    ``placement`` picks the hotspot set deterministically: ``"high-degree"``
    (hubs — congestion stress), ``"low-degree"`` (periphery leaves — stretch
    stress for hierarchical schemes), or ``"random"`` (seeded).  Each packet
    targets a uniform hotspot with probability ``fraction``; the rest of the
    traffic is uniform.  Sources are uniform component peers of their
    destination.
    """

    name = "hotspot"

    PLACEMENTS = ("high-degree", "low-degree", "random", "explicit")

    def __init__(self, graph: WeightedGraph, seed: SeedLike = 0,
                 hotspots: int = 8, fraction: float = 0.8,
                 placement: str = "high-degree",
                 nodes: Optional[np.ndarray] = None,
                 structure_seed: Optional[SeedLike] = None) -> None:
        super().__init__(graph, seed, structure_seed=structure_seed)
        require(hotspots >= 1, "need at least one hotspot")
        require(0.0 <= fraction <= 1.0, "hotspot fraction must be in [0, 1]")
        if nodes is not None:
            placement = "explicit"
        require(placement in self.PLACEMENTS,
                f"placement must be one of {self.PLACEMENTS}, got {placement!r}")
        require(placement != "explicit" or nodes is not None,
                "explicit placement requires the hotspot nodes")
        self.fraction = float(fraction)
        self.placement = placement
        eligible = self.index.eligible
        count = min(int(hotspots), eligible.size)
        if placement == "explicit":
            # scenario-chosen hotspots (e.g. a storm aimed at a region about
            # to be partitioned); restricted to eligible nodes so the draw
            # never produces an unroutable pair
            hot = np.intersect1d(np.asarray(nodes, dtype=np.int64), eligible)
            require(hot.size > 0,
                    "explicit hotspot set has no eligible (connected) node")
        elif placement == "random":
            chosen = self._init_rng().choice(eligible.size, size=count,
                                             replace=False)
            hot = eligible[np.sort(chosen)]
        else:
            degrees = np.asarray([graph.degree(int(v)) for v in eligible],
                                 dtype=np.int64)
            sign = -1 if placement == "high-degree" else 1
            order = np.lexsort((eligible, sign * degrees))  # deterministic ties
            hot = eligible[order[:count]]
        self.hotspots = hot.astype(np.int64)

    def _draw(self, rng, size):
        dst = self.index.uniform_nodes(rng, size)
        hot = rng.random(size) < self.fraction
        if hot.any():
            dst[hot] = self.hotspots[rng.integers(0, self.hotspots.size,
                                                  size=int(hot.sum()))]
        src = self.index.partner_uniform(rng, dst)
        return src, dst

    def hot_destinations(self):
        return self.hotspots

    def describe(self):
        out = super().describe()
        out.update(hotspots=self.hotspots.size, fraction=self.fraction,
                   placement=self.placement)
        return out


class FlashCrowdTraffic(TrafficModel):
    """A Zipf crowd whose hot set *migrates* between phases mid-stream.

    The batch index is divided into phases of ``batches_per_phase`` batches;
    phase ``p`` (cycling through ``num_phases``) draws destinations Zipf-wise
    from its own seeded permutation of the eligible nodes truncated to
    ``support`` — a flash crowd abandoning one hot set for another.  Because
    the phase is a pure function of the batch index, the stream keeps the
    batch-addressing contract: any shard regenerates exactly its batches,
    and re-partitioning the batches across shards cannot change which phase
    a batch belongs to.

    Phase structure derives from ``structure_seed`` (namespaced per phase),
    so a live driver can re-seed the packet stream per epoch while the
    migration schedule stays pinned.  ``hot_destinations`` is the union of
    every phase's support — the set a scoring cache must cover across the
    whole run; a cache pinned to one phase's support is exactly the stale
    state the migration is designed to invalidate.
    """

    name = "flash-crowd"

    def __init__(self, graph: WeightedGraph, seed: SeedLike = 0,
                 exponent: float = 1.1, support: int = 16,
                 batches_per_phase: int = 8, num_phases: int = 4,
                 structure_seed: Optional[SeedLike] = None) -> None:
        super().__init__(graph, seed, structure_seed=structure_seed)
        require(exponent > 0, "zipf exponent must be positive")
        require(support >= 1, "flash-crowd support must be at least 1")
        require(batches_per_phase >= 1, "need at least one batch per phase")
        require(num_phases >= 1, "need at least one phase")
        self.exponent = float(exponent)
        self.batches_per_phase = int(batches_per_phase)
        self.num_phases = int(num_phases)
        eligible = self.index.eligible
        self.support = min(int(support), eligible.size)
        weights = 1.0 / np.power(np.arange(1, self.support + 1, dtype=float),
                                 self.exponent)
        self._cum = np.cumsum(weights)
        self._phase_hot = []
        for p in range(self.num_phases):
            perm = derive_rng(self.structure_seed, _INIT_KEY, p).permutation(
                eligible)
            self._phase_hot.append(perm[:self.support].astype(np.int64))

    def phase_of(self, batch_index: int) -> int:
        """The migration phase batch ``batch_index`` belongs to."""
        return (int(batch_index) // self.batches_per_phase) % self.num_phases

    def batch(self, batch_index: int, size: int) -> Tuple[np.ndarray, np.ndarray]:
        require(batch_index >= 0, "batch index must be non-negative")
        require(size > 0, "batch size must be positive")
        rng = derive_rng(self.seed, _BATCH_KEY, batch_index)
        hot = self._phase_hot[self.phase_of(batch_index)]
        dst = _draw_cdf(rng, hot, self._cum, int(size))
        src = self.index.partner_uniform(rng, dst)
        return src.astype(np.int64), dst.astype(np.int64)

    def _draw(self, rng, size):  # pragma: no cover - batch() is overridden
        raise NotImplementedError("flash-crowd draws are phase-addressed")

    def hot_destinations(self):
        """Union of every phase's hot set (the full-run cache footprint)."""
        return np.unique(np.concatenate(self._phase_hot))

    def describe(self):
        out = super().describe()
        out.update(exponent=self.exponent, support=self.support,
                   batches_per_phase=self.batches_per_phase,
                   num_phases=self.num_phases)
        return out


#: registry used by the harness / workloads / benches
TRAFFIC_MODELS: Dict[str, Type[TrafficModel]] = {
    UniformTraffic.name: UniformTraffic,
    ZipfTraffic.name: ZipfTraffic,
    GravityTraffic.name: GravityTraffic,
    HotspotTraffic.name: HotspotTraffic,
    FlashCrowdTraffic.name: FlashCrowdTraffic,
}

TRAFFIC_MODEL_NAMES = tuple(sorted(TRAFFIC_MODELS))


def make_traffic_model(name: str, graph: WeightedGraph, seed: SeedLike = 0,
                       **kwargs) -> TrafficModel:
    """Build a registered traffic model by name."""
    if name not in TRAFFIC_MODELS:
        raise ValueError(f"unknown traffic model {name!r}; "
                         f"choose from {TRAFFIC_MODEL_NAMES}")
    return TRAFFIC_MODELS[name](graph, seed=seed, **kwargs)
