"""Scoring modes for the traffic engine: ``exact`` / ``sampled`` / ``landmark``.

Exact stretch scoring divides every delivered packet's verified walk cost by
the true shortest-path distance — which requires an exact distance row per
destination.  At n=100k a single row is 100k float64s, and a million-packet
Zipf run touches thousands of destinations: evaluation, not construction,
becomes the part that cannot fit.  The two approximate modes bound that
cost:

``sampled``
    Delivery accounting stays exact (reachability is a component-id
    comparison, never a distance), but stretch is measured on a **seeded
    per-batch sample** of delivered packets only — the oracle materializes
    exact rows for at most ``sample_per_batch`` pairs per batch.  The
    stretch quantiles/mean are unbiased estimates whose sampling error is
    reported alongside them (``stretch_stderr`` via the stream digests).

``landmark``
    Every delivered packet is scored against the **certified upper bound**
    ``cost / d_lb(s, t)`` where ``d_lb`` is the ALT landmark lower bound
    ``max_l |d(l, t) - d(l, s)|`` (floored at the minimum edge weight for
    distinct nodes) computed from a :class:`LandmarkApproxBackend`'s
    landmark rows — L Dijkstras once, then O(L) per packet, no exact rows.
    Since ``d_lb <= d``, every reported stretch is ``>=`` the true stretch:
    the quantiles are certified upper bounds.  A seeded per-batch exact
    sample additionally measures the certificate's slack — the per-packet
    gap ``bound - exact`` is folded into ``TrafficStats.score_error`` and
    reported as ``avg/max_score_error``.

Both approximate modes keep delivery/failure/unreachable counters exact and
bit-identical across shard counts and engines: the per-batch sample is a
pure function of ``(seed, batch_index)``, exactly like the traffic models'
batch regeneration.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.utils.rng import derive_rng
from repro.utils.validation import require

#: the recognized scoring modes, in increasing exactness
SCORING_MODES = ("landmark", "sampled", "exact")

#: default exact-row sample size per batch for the approximate modes
DEFAULT_SAMPLE_PER_BATCH = 256

#: default landmark count for the ``landmark`` mode's bound rows
DEFAULT_SCORING_LANDMARKS = 16

#: rng stream key for the per-batch scoring sample (distinct from the
#: traffic models' _INIT_KEY=0/_BATCH_KEY=1 streams)
_SCORING_KEY = 2


class BatchScore(NamedTuple):
    """One batch's scoring reductions (what ``update_batch`` folds)."""

    finite: np.ndarray                  # destination reachable from source
    measured: np.ndarray                # packets whose stretch is folded
    stretch: np.ndarray                 # stretch values (1.0 off-mask)
    error_values: Optional[np.ndarray]  # certificate gaps (landmark mode)


class _ApproxScorer:
    """Shared machinery: component reachability + seeded per-batch samples."""

    #: True when ``score`` emits certified *upper bounds* in the stretch
    #: column instead of exact values; the stats layer then publishes the
    #: stream under the ``stretch_upper`` field prefix.
    bounded = False

    def __init__(self, graph: WeightedGraph, oracle: DistanceOracle,
                 seed=0, sample_per_batch: int = DEFAULT_SAMPLE_PER_BATCH) -> None:
        self.graph = graph
        self.oracle = oracle
        self.seed = seed
        self.sample_per_batch = int(sample_per_batch)
        self._components = graph.component_ids()

    def reachable(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Exact reachability without distances (undirected components)."""
        comp = self._components
        return comp[src] == comp[dst]

    def sample_mask(self, batch_index: int, size: int) -> np.ndarray:
        """Seeded boolean sample over one batch (pure in (seed, index))."""
        mask = np.zeros(size, dtype=bool)
        k = min(self.sample_per_batch, size)
        if k <= 0:
            return mask
        rng = derive_rng(self.seed, _SCORING_KEY, batch_index)
        mask[rng.choice(size, size=k, replace=False)] = True
        return mask

    def exact_stretch(self, src: np.ndarray, dst: np.ndarray,
                      costs: np.ndarray, sel: np.ndarray) -> np.ndarray:
        """True stretch of the selected packets (exact oracle rows)."""
        if not sel.any():
            return np.zeros(0)
        s, d, c = src[sel], dst[sel], costs[sel]
        self.oracle.prefetch(np.unique(d))
        shortest = self.oracle.pair_distances(d, s)
        return np.where(shortest > 0, c / np.where(shortest > 0, shortest, 1.0),
                        1.0)


class SampledScorer(_ApproxScorer):
    """Exact stretch on a seeded subsample; exact delivery accounting."""

    mode = "sampled"

    def score(self, batch_index: int, src: np.ndarray, dst: np.ndarray,
              costs: np.ndarray, found: np.ndarray) -> BatchScore:
        finite = self.reachable(src, dst)
        measured = found & finite & self.sample_mask(batch_index, src.size)
        stretch = np.ones(src.size)
        stretch[measured] = self.exact_stretch(src, dst, costs, measured)
        # sampled stretch is exact on its sample — the certificate error is
        # identically zero; an empty fold still marks the mode as active so
        # the summary reports the sampling standard error
        return BatchScore(finite=finite, measured=measured, stretch=stretch,
                          error_values=np.zeros(0))


class LandmarkScorer(_ApproxScorer):
    """Certified stretch upper bounds from ALT landmark rows + exact sample.

    The stretch column this scorer emits is a *bound*, never a measurement:
    downstream stats publish it as ``stretch_upper_*`` (``bounded = True``),
    with the certified slack of the seeded exact sample in ``score_error``.
    """

    mode = "landmark"
    bounded = True

    def __init__(self, graph: WeightedGraph, oracle: DistanceOracle,
                 seed=0, sample_per_batch: int = DEFAULT_SAMPLE_PER_BATCH,
                 num_landmarks: int = DEFAULT_SCORING_LANDMARKS) -> None:
        super().__init__(graph, oracle, seed=seed,
                         sample_per_batch=sample_per_batch)
        from repro.graphs.backends import LandmarkApproxBackend

        backend = LandmarkApproxBackend(graph, num_landmarks=num_landmarks,
                                        seed=int(seed or 0) & 0x7FFFFFFF)
        self.landmarks = np.asarray(backend.landmarks, dtype=np.int64)
        #: (L, n) exact distances landmark -> every node
        self.rows = np.ascontiguousarray(backend.landmark_rows)
        floor = graph.min_weight()
        self.min_weight = float(floor) if np.isfinite(floor) else 1.0

    def lower_bounds(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """ALT lower bound ``max_l |d(l, dst) - d(l, src)|`` per packet.

        Landmarks outside a pair's component contribute ``inf - inf = nan``
        (masked to 0); a landmark inside it is always finite for both
        endpoints.  Distinct same-component pairs are floored at the global
        minimum edge weight — also a valid lower bound — so the bound is
        strictly positive wherever true distance is.
        """
        diff = np.abs(self.rows[:, dst] - self.rows[:, src])
        bound = np.where(np.isfinite(diff), diff, 0.0).max(axis=0)
        return np.maximum(bound, np.where(src != dst, self.min_weight, 0.0))

    def score(self, batch_index: int, src: np.ndarray, dst: np.ndarray,
              costs: np.ndarray, found: np.ndarray) -> BatchScore:
        finite = self.reachable(src, dst)
        measured = found & finite
        bound = self.lower_bounds(src, dst)
        stretch = np.ones(src.size)
        np.divide(costs, bound, out=stretch, where=measured & (bound > 0))
        sel = measured & self.sample_mask(batch_index, src.size)
        error_values: Optional[np.ndarray] = None
        if sel.any():
            # certificate slack on the seeded exact sample: bound - truth >= 0
            error_values = stretch[sel] - self.exact_stretch(src, dst, costs,
                                                             sel)
        else:
            error_values = np.zeros(0)
        return BatchScore(finite=finite, measured=measured, stretch=stretch,
                          error_values=error_values)


def make_scorer(mode: str, graph: WeightedGraph, oracle: DistanceOracle,
                seed=0, sample_per_batch: int = DEFAULT_SAMPLE_PER_BATCH,
                num_landmarks: int = DEFAULT_SCORING_LANDMARKS):
    """Build the scorer for ``mode`` (``None`` for exact — the inline path)."""
    require(mode in SCORING_MODES,
            f"unknown scoring mode {mode!r}; choose from {SCORING_MODES}")
    if mode == "exact":
        return None
    if mode == "sampled":
        return SampledScorer(graph, oracle, seed=seed,
                             sample_per_batch=sample_per_batch)
    return LandmarkScorer(graph, oracle, seed=seed,
                          sample_per_batch=sample_per_batch,
                          num_landmarks=num_landmarks)
