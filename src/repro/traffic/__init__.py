"""Traffic subsystem: seeded workload models + the sharded streaming engine.

``models`` defines who talks to whom (uniform, Zipf-popular, gravity
/locality, hotspot-adversarial) as batch-indexed deterministic array
generators; ``stats`` holds the streaming statistics (per-batch digests,
mergeable quantile histograms, P² sketches); ``engine`` routes millions of
packets per run over the compiled lockstep forwarding layer, optionally
sharded across forked workers sharing one spawn-once program.
"""

from repro.traffic.engine import (
    DEFAULT_BATCH_SIZE,
    TrafficReport,
    batch_size_of,
    num_batches,
    processes_enabled,
    resolve_traffic_engine,
    run_traffic,
    run_traffic_exact,
    stream_shard,
)
from repro.traffic.models import (
    TRAFFIC_MODEL_NAMES,
    TRAFFIC_MODELS,
    GravityTraffic,
    HotspotTraffic,
    TrafficModel,
    UniformTraffic,
    ZipfTraffic,
    make_traffic_model,
)
from repro.traffic.stats import (
    LOG_QUANTILE_RTOL,
    IntHistogram,
    LogHistogram,
    MetricStream,
    P2Quantile,
    TrafficStats,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "GravityTraffic",
    "HotspotTraffic",
    "IntHistogram",
    "LOG_QUANTILE_RTOL",
    "LogHistogram",
    "MetricStream",
    "P2Quantile",
    "TRAFFIC_MODELS",
    "TRAFFIC_MODEL_NAMES",
    "TrafficModel",
    "TrafficReport",
    "TrafficStats",
    "UniformTraffic",
    "ZipfTraffic",
    "batch_size_of",
    "make_traffic_model",
    "num_batches",
    "processes_enabled",
    "resolve_traffic_engine",
    "run_traffic",
    "run_traffic_exact",
    "stream_shard",
]
