"""Streaming statistics for million-packet traffic runs.

The traffic engine never stores per-packet walks: each routed batch is
reduced on the spot into the structures here, so a run's resident state is
O(batches + histogram bins), not O(packets).  Three layers cooperate:

* **Per-batch digests** — count / sum / sum-of-squares / min / max of every
  metric, keyed by *batch index*.  Reduction at summary time iterates the
  digests in batch-index order, so the aggregate mean/std are **bit-identical
  however the batches were partitioned across shards** (float addition is not
  associative; a fixed reduction order makes the result partition-independent).
* **Mergeable quantile histograms** — a base-``2^(1/128)`` log-bucketed
  histogram for real-valued metrics (stretch) and an exact integer histogram
  for hop counts.  Bucket counts are integers, so merging shard histograms is
  exact and commutative: the official ``p50/p95/p99`` quantiles are identical
  for every shard count.
* **P² quantile sketches** — the classic Jain–Chlamtac constant-space
  estimator, maintained per quantile over the *stream order* a shard sees.
  P² states are order-dependent and cannot be merged exactly; merged runs
  report the packet-count-weighted average of the shard estimates (exposed as
  ``*_p2_*`` diagnostics).  Within one stream configuration they are fully
  deterministic — the scalar and lockstep engines produce identical P²
  values because they produce identical per-batch metric arrays.

:class:`TrafficStats` bundles the metric streams with the delivery counters
and owns the cross-shard ``merge`` (shards stream disjoint batch-index sets,
so digest merging is a disjoint dict union).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import require

#: log-histogram resolution: buckets at powers of ``2 ** (1 / LOG_BINS_PER_OCTAVE)``
#: (relative width ~0.54%, so reported quantiles sit within ~0.3% of the truth)
LOG_BINS_PER_OCTAVE = 128

#: relative accuracy bound of a log-histogram quantile (half a bucket width)
LOG_QUANTILE_RTOL = 2.0 ** (1.0 / (2 * LOG_BINS_PER_OCTAVE)) - 1.0

#: max observations per batch folded into the P² sketches.  The P² marker
#: update is a per-observation Python loop — profiling showed it dominating
#: traffic wall time at production batch sizes — so batches larger than this
#: feed the sketches a deterministic strided subsample instead.  The digests
#: and histograms (every *official* statistic) always fold the full batch;
#: the P² fields are stream-order diagnostics and remain deterministic:
#: the subsample is a pure function of the batch array, so engines / shard
#: counts that stream identical batches keep identical P² values.  512 per
#: batch keeps the sketches fed with thousands of points per million-packet
#: run while capping the Python loop at ~3% of routing wall time.
P2_FOLD_CAP = 512


class P2Quantile:
    """The P² (Jain–Chlamtac 1985) streaming estimator of one quantile.

    Five markers track the running min, max, target quantile and the two
    intermediate quantiles; each observation adjusts marker heights with the
    piecewise-parabolic update.  O(1) space, O(1) per observation, no storage
    of the stream.  Estimates are exact until five observations have arrived
    (the sorted prefix is interpolated directly).
    """

    __slots__ = ("p", "_heights", "_positions", "_desired", "_increments", "_seen")

    def __init__(self, p: float) -> None:
        require(0.0 < p < 1.0, f"quantile must be in (0, 1), got {p}")
        self.p = float(p)
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._increments = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._seen = 0

    def update_many(self, values: np.ndarray) -> None:
        """Fold a batch of observations into the sketch (stream order)."""
        heights = self._heights
        positions = self._positions
        desired = self._desired
        increments = self._increments
        for x in np.asarray(values, dtype=float).tolist():
            self._seen += 1
            if len(heights) < 5:
                heights.append(x)
                if len(heights) == 5:
                    heights.sort()
                continue
            # locate the cell of x and bump marker positions above it
            if x < heights[0]:
                heights[0] = x
                cell = 0
            elif x >= heights[4]:
                heights[4] = x
                cell = 3
            else:
                cell = 0
                while x >= heights[cell + 1]:
                    cell += 1
            for i in range(cell + 1, 5):
                positions[i] += 1.0
            for i in range(5):
                desired[i] += increments[i]
            # adjust the three interior markers toward their desired positions
            for i in (1, 2, 3):
                delta = desired[i] - positions[i]
                below = positions[i] - positions[i - 1]
                above = positions[i + 1] - positions[i]
                if (delta >= 1.0 and above > 1.0) or (delta <= -1.0 and below > 1.0):
                    step = 1.0 if delta >= 1.0 else -1.0
                    candidate = self._parabolic(i, step)
                    if heights[i - 1] < candidate < heights[i + 1]:
                        heights[i] = candidate
                    else:  # parabolic prediction left the bracket: linear step
                        j = i + (1 if step > 0 else -1)
                        heights[i] += step * (heights[j] - heights[i]) \
                            / (positions[j] - positions[i])
                    positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q = self._heights
        n = self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))

    @property
    def count(self) -> int:
        """Observations folded in so far."""
        return self._seen

    def estimate(self) -> float:
        """Current quantile estimate (NaN before any observation)."""
        if self._seen == 0:
            return float("nan")
        if len(self._heights) < 5 or self._seen <= 5:
            ordered = sorted(self._heights)
            rank = self.p * (len(ordered) - 1)
            lo = int(math.floor(rank))
            hi = min(lo + 1, len(ordered) - 1)
            return ordered[lo] + (rank - lo) * (ordered[hi] - ordered[lo])
        return self._heights[2]


class LogHistogram:
    """Log-bucketed counting histogram for positive reals (DDSketch-style).

    Bucket ``i`` covers ``[2**(i/K), 2**((i+1)/K))`` with
    ``K = LOG_BINS_PER_OCTAVE``; a value is represented by the bucket's
    geometric midpoint, so any quantile is reported within
    :data:`LOG_QUANTILE_RTOL` relative error.  Counts are integers — merging
    histograms is exact and commutative, which is what makes the official
    traffic quantiles identical across shard counts.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        require(bool((values > 0).all()),
                "log histogram accepts strictly positive values")
        buckets = np.floor(np.log2(values) * LOG_BINS_PER_OCTAVE).astype(np.int64)
        uniq, counts = np.unique(buckets, return_counts=True)
        store = self._counts
        for b, c in zip(uniq.tolist(), counts.tolist()):
            store[b] = store.get(b, 0) + c

    def merge(self, other: "LogHistogram") -> None:
        store = self._counts
        for b, c in other._counts.items():
            store[b] = store.get(b, 0) + c

    @property
    def count(self) -> int:
        return sum(self._counts.values())

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile as the matched bucket's geometric midpoint."""
        require(0.0 <= q <= 1.0, f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return float("nan")
        target = max(1, int(math.ceil(q * total)))
        running = 0
        for bucket in sorted(self._counts):
            running += self._counts[bucket]
            if running >= target:
                return 2.0 ** ((bucket + 0.5) / LOG_BINS_PER_OCTAVE)
        raise AssertionError("unreachable: ranks exhausted below total count")


class IntHistogram:
    """Exact counting histogram for small non-negative integers (hop counts)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.int64)
        if values.size == 0:
            return
        require(bool((values >= 0).all()),
                "integer histogram accepts non-negative values")
        uniq, counts = np.unique(values, return_counts=True)
        store = self._counts
        for b, c in zip(uniq.tolist(), counts.tolist()):
            store[b] = store.get(b, 0) + c

    def merge(self, other: "IntHistogram") -> None:
        store = self._counts
        for b, c in other._counts.items():
            store[b] = store.get(b, 0) + c

    @property
    def count(self) -> int:
        return sum(self._counts.values())

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile (a value that occurs in the stream)."""
        require(0.0 <= q <= 1.0, f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return float("nan")
        target = max(1, int(math.ceil(q * total)))
        running = 0
        for value in sorted(self._counts):
            running += self._counts[value]
            if running >= target:
                return float(value)
        raise AssertionError("unreachable: ranks exhausted below total count")


class MetricStream:
    """One metric's streaming state: per-batch digests + histogram + P² bank.

    ``kind="log"`` uses the relative-error log histogram (real-valued metrics
    such as stretch); ``kind="int"`` uses exact integer counts (hop counts).
    """

    def __init__(self, kind: str, quantiles: Sequence[float] = (0.5, 0.95, 0.99),
                 p2_quantiles: Optional[Sequence[float]] = None) -> None:
        require(kind in ("log", "int"), f"kind must be 'log' or 'int', got {kind!r}")
        self.kind = kind
        self.quantiles = tuple(quantiles)
        self.histogram = LogHistogram() if kind == "log" else IntHistogram()
        p2_quantiles = self.quantiles if p2_quantiles is None else tuple(p2_quantiles)
        self._p2: Dict[float, P2Quantile] = {p: P2Quantile(p) for p in p2_quantiles}
        #: packet-count-weighted P² estimates folded in from merged shards
        self._p2_merged: Dict[float, Tuple[float, int]] = {}
        #: batch index -> (count, sum, sum of squares, min, max)
        self._digests: Dict[int, Tuple[int, float, float, float, float]] = {}

    def update(self, batch_index: int, values: np.ndarray) -> None:
        """Fold one batch's metric values in (at most once per batch index)."""
        batch_index = int(batch_index)
        require(batch_index not in self._digests,
                f"batch {batch_index} was already folded into this stream")
        values = np.asarray(values, dtype=float)
        if values.size:
            digest = (int(values.size), float(values.sum()),
                      float(np.square(values).sum()),
                      float(values.min()), float(values.max()))
        else:
            digest = (0, 0.0, 0.0, math.inf, -math.inf)
        self._digests[batch_index] = digest
        if values.size:
            self.histogram.update(values)
            folded = values
            if folded.size > P2_FOLD_CAP:
                stride = -(-folded.size // P2_FOLD_CAP)   # ceil division
                folded = folded[::stride]
            for sketch in self._p2.values():
                sketch.update_many(folded)

    # -- cross-shard merge ------------------------------------------------ #
    def _p2_snapshot(self) -> Dict[float, Tuple[float, int]]:
        """Current (weighted estimate, weight) per quantile, merged view."""
        out = dict(self._p2_merged)
        for p, sketch in self._p2.items():
            if sketch.count:
                acc, weight = out.get(p, (0.0, 0))
                out[p] = (acc + sketch.estimate() * sketch.count,
                          weight + sketch.count)
        return out

    def shift_batches(self, offset: int) -> None:
        """Re-key every digest by ``batch_index + offset``.

        Used when concatenating runs that each numbered their batches from
        zero (e.g. the epochs of a live timeline) into one merged stream:
        shifting makes the batch-index sets disjoint so ``merge`` stays exact.
        """
        offset = int(offset)
        if offset == 0:
            return
        self._digests = {b + offset: d for b, d in self._digests.items()}

    def merge(self, other: "MetricStream") -> None:
        """Fold a disjoint shard's stream into this one (exact except P²)."""
        require(self.kind == other.kind, "cannot merge streams of different kinds")
        overlap = self._digests.keys() & other._digests.keys()
        require(not overlap,
                f"shards streamed overlapping batches: {sorted(overlap)[:4]}")
        self._digests.update(other._digests)
        self.histogram.merge(other.histogram)
        merged = self._p2_snapshot()
        for p, (acc, weight) in other._p2_snapshot().items():
            prev_acc, prev_weight = merged.get(p, (0.0, 0))
            merged[p] = (prev_acc + acc, prev_weight + weight)
        self._p2_merged = merged
        self._p2 = {p: P2Quantile(p) for p in self._p2}  # consumed into merged

    # -- reductions -------------------------------------------------------- #
    @property
    def batch_indices(self) -> List[int]:
        return sorted(self._digests)

    @property
    def count(self) -> int:
        return sum(d[0] for d in self._digests.values())

    def _reduce(self) -> Tuple[int, float, float, float, float]:
        """Reduce digests in batch-index order (partition-independent floats)."""
        count, total, total_sq = 0, 0.0, 0.0
        low, high = math.inf, -math.inf
        for index in sorted(self._digests):
            c, s, sq, lo, hi = self._digests[index]
            count += c
            total += s
            total_sq += sq
            low = min(low, lo)
            high = max(high, hi)
        return count, total, total_sq, low, high

    def p2_estimate(self, p: float) -> float:
        """The P² estimate (or the weighted shard average after a merge)."""
        snapshot = self._p2_snapshot()
        if p not in snapshot:
            return float("nan")
        acc, weight = snapshot[p]
        return acc / weight if weight else float("nan")

    def summary(self, prefix: str, include_p2: bool = True) -> Dict[str, float]:
        """Flat headline stats: avg/min/max plus histogram and P² quantiles."""
        count, total, total_sq, low, high = self._reduce()
        out: Dict[str, float] = {f"{prefix}_count": count}
        if count:
            mean = total / count
            variance = max(total_sq / count - mean * mean, 0.0)
            out[f"avg_{prefix}"] = mean
            out[f"min_{prefix}"] = low
            out[f"max_{prefix}"] = high
            out[f"std_{prefix}"] = math.sqrt(variance)
        else:
            out[f"avg_{prefix}"] = float("nan")
            out[f"min_{prefix}"] = float("nan")
            out[f"max_{prefix}"] = float("nan")
            out[f"std_{prefix}"] = float("nan")
        for q in self.quantiles:
            out[f"{prefix}_p{round(q * 100)}"] = self.histogram.quantile(q)
        if include_p2:
            for p in sorted(set(self._p2) | set(self._p2_merged)):
                out[f"{prefix}_p2_p{round(p * 100)}"] = self.p2_estimate(p)
        return out


class ErrorDigest:
    """Per-batch digests of a scoring-certificate error metric.

    The approximate scoring modes (see :mod:`repro.traffic.scoring`) emit a
    per-sampled-packet error value per batch — e.g. the landmark mode's gap
    between the certified stretch bound and the exact sampled stretch.
    Values can legitimately be zero, so the log histogram does not apply;
    digests (count / sum / sum of squares / max, keyed by batch index) give
    exactly-mergeable mean/std/max with the same partition-independence
    argument as :class:`MetricStream`.
    """

    __slots__ = ("_digests",)

    def __init__(self) -> None:
        #: batch index -> (count, sum, sum of squares, max)
        self._digests: Dict[int, Tuple[int, float, float, float]] = {}

    def update(self, batch_index: int, values: np.ndarray) -> None:
        batch_index = int(batch_index)
        require(batch_index not in self._digests,
                f"batch {batch_index} was already folded into this digest")
        values = np.asarray(values, dtype=float)
        if values.size:
            self._digests[batch_index] = (
                int(values.size), float(values.sum()),
                float(np.square(values).sum()), float(values.max()))
        else:
            self._digests[batch_index] = (0, 0.0, 0.0, -math.inf)

    def shift_batches(self, offset: int) -> None:
        """Re-key every digest by ``batch_index + offset`` (see MetricStream)."""
        offset = int(offset)
        if offset == 0:
            return
        self._digests = {b + offset: d for b, d in self._digests.items()}

    def merge(self, other: "ErrorDigest") -> None:
        overlap = self._digests.keys() & other._digests.keys()
        require(not overlap,
                f"shards folded overlapping error batches: {sorted(overlap)[:4]}")
        self._digests.update(other._digests)

    @property
    def count(self) -> int:
        return sum(d[0] for d in self._digests.values())

    def summary(self, prefix: str = "score_error") -> Dict[str, float]:
        """Flat mean/std/max fields (empty dict when nothing was folded)."""
        if not self._digests:
            return {}
        count, total, total_sq = 0, 0.0, 0.0
        high = -math.inf
        for index in sorted(self._digests):
            c, s, sq, hi = self._digests[index]
            count += c
            total += s
            total_sq += sq
            high = max(high, hi)
        out: Dict[str, float] = {f"{prefix}_count": count}
        if count:
            mean = total / count
            out[f"avg_{prefix}"] = mean
            out[f"max_{prefix}"] = high
            out[f"std_{prefix}"] = math.sqrt(
                max(total_sq / count - mean * mean, 0.0))
        return out


class TrafficStats:
    """Streaming statistics of one traffic run (or one shard of it).

    Holds the stretch and hop-count :class:`MetricStream` plus integer
    delivery counters.  Memory is O(batches + histogram bins) regardless of
    packet count.  ``merge`` combines shards that streamed disjoint batch
    sets; every merged field except the P² diagnostics is exactly
    partition-independent (see the module docstring).

    ``bounded`` records whether the stretch stream holds *certified upper
    bounds* (a bounding scorer such as the landmark mode was active) rather
    than exact stretch values.  Bounded runs publish their stretch fields
    under the ``stretch_upper`` prefix (``avg_stretch_upper``,
    ``stretch_upper_p99``, ...) so a bound is never mistaken for a
    measurement; the certificate slack lives in the ``score_error`` fields.
    """

    def __init__(self, bounded: bool = False) -> None:
        self.stretch = MetricStream("log", quantiles=(0.5, 0.95, 0.99))
        self.hops = MetricStream("int", quantiles=(0.5, 0.95, 0.99),
                                 p2_quantiles=(0.5, 0.95))
        #: certificate gaps from approximate scoring (empty under exact)
        self.score_error = ErrorDigest()
        #: True when the stretch stream holds certified upper bounds
        self.bounded = bool(bounded)
        self.packets = 0
        self.delivered = 0
        self.failures = 0       # reachable destination, scheme did not deliver
        self.unreachable = 0    # no path exists (e.g. detached by churn)
        self.batches: set = set()

    @property
    def stretch_prefix(self) -> str:
        """Field-name prefix of the stretch stream: exact vs certified bound."""
        return "stretch_upper" if self.bounded else "stretch"

    def update_batch(self, batch_index: int, stretch_values: np.ndarray,
                     hop_values: np.ndarray, packets: int, delivered: int,
                     failures: int, unreachable: int,
                     error_values: Optional[np.ndarray] = None) -> None:
        """Fold one routed batch's reductions in."""
        batch_index = int(batch_index)
        require(batch_index not in self.batches,
                f"batch {batch_index} was already folded into these stats")
        self.batches.add(batch_index)
        self.stretch.update(batch_index, stretch_values)
        self.hops.update(batch_index, hop_values)
        if error_values is not None:
            self.score_error.update(batch_index, error_values)
        self.packets += int(packets)
        self.delivered += int(delivered)
        self.failures += int(failures)
        self.unreachable += int(unreachable)

    def shift_batches(self, offset: int) -> None:
        """Re-key every folded batch by ``batch_index + offset``.

        Makes batch-index sets disjoint when concatenating runs that each
        numbered batches from zero (e.g. live-timeline epochs), so a
        subsequent ``merge`` keeps its exactness guarantees.
        """
        offset = int(offset)
        if offset == 0:
            return
        self.batches = {b + offset for b in self.batches}
        self.stretch.shift_batches(offset)
        self.hops.shift_batches(offset)
        self.score_error.shift_batches(offset)

    def merge(self, other: "TrafficStats") -> "TrafficStats":
        """Fold a disjoint shard's stats into this one; returns ``self``."""
        overlap = self.batches & other.batches
        require(not overlap,
                f"shards streamed overlapping batches: {sorted(overlap)[:4]}")
        if not self.batches:
            self.bounded = other.bounded
        else:
            require(self.bounded == other.bounded or not other.batches,
                    "cannot merge exact-stretch stats with bounded-stretch "
                    "stats: the streams measure different quantities")
        self.batches |= other.batches
        self.stretch.merge(other.stretch)
        self.hops.merge(other.hops)
        self.score_error.merge(other.score_error)
        self.packets += other.packets
        self.delivered += other.delivered
        self.failures += other.failures
        self.unreachable += other.unreachable
        return self

    def summary(self, include_p2: bool = True) -> Dict[str, float]:
        """Flat headline dict (the traffic engine's report payload).

        With ``include_p2=False`` every field is bit-identical across shard
        counts and engines; the P² fields additionally require a fixed stream
        partition (they are engine-independent but shard-dependent).  Under
        an approximate scoring mode the certificate-error fields
        (``avg/max/std_score_error``) and the sampling standard error of the
        mean stretch (``{prefix}_stderr``) join the payload.

        When ``bounded`` is set the stretch fields are emitted under the
        ``stretch_upper`` prefix — they are certified upper bounds, not
        measurements, and must never be compared against exact-mode
        ``stretch`` fields.
        """
        out: Dict[str, float] = {
            "packets": self.packets,
            "delivered": self.delivered,
            "failures": self.failures,
            "unreachable": self.unreachable,
        }
        prefix = self.stretch_prefix
        out.update(self.stretch.summary(prefix, include_p2=include_p2))
        out.update(self.hops.summary("hops", include_p2=include_p2))
        error = self.score_error.summary()
        if error:
            out.update(error)
            count = out.get(f"{prefix}_count", 0)
            if count:
                out[f"{prefix}_stderr"] = \
                    out[f"std_{prefix}"] / math.sqrt(count)
        return out
