"""Zero-copy shared-memory publication of compiled routing state.

With fork-based shard workers the compiled :class:`ForwardingProgram` and the
hot destination-distance rows are shared copy-on-write — but copy-on-write is
per **page**, and the first refcount bump or stray write in any worker
duplicates the page.  The :class:`SharedArena` moves those arrays into
``multiprocessing.shared_memory`` blocks *before* the fork: each ndarray is
copied exactly once into a named block and the owning object's attribute is
rebound to a view over the block, so every forked worker reads the same
physical pages for the program's slot tables, next-hop keys and pinned
distance rows.  Nothing is pickled and nothing is re-sent per shard.

The arena is strictly scoped: :meth:`SharedArena.close` restores every
adopted attribute to its original in-process array, then closes and unlinks
every block.  Callers must close inside ``finally`` (or use the arena as a
context manager) — a leaked block survives the process under ``/dev/shm``.

Blocks carry a small manifest (``name``, ``shape``, ``dtype`` per published
array) so a spawn-platform port could reattach by name; on fork platforms the
rebound views are inherited directly and the manifest is informational.

Set ``REPRO_TRAFFIC_SHM=0`` to disable publication globally (the engine then
falls back to plain copy-on-write sharing, which is always correct — the
arena is a throughput optimisation, never a semantic one).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None  # type: ignore[assignment]

#: TreeBank arrays the fused/legacy engines gather from every step (the
#: dense membership matrix is included when the bank materialized it; a
#: ``None`` placeholder is skipped by ``adopt``)
TREE_BANK_ATTRS = (
    "node_of_slot", "dfs_out", "parent_slot", "offsets", "sizes",
    "_child_keys", "_child_slots", "_member_keys", "_member_slots",
    "_slot_matrix",
)

#: next-hop table arrays (sorted-key and dense variants plus the warmed
#: per-destination column cache; absent/None attrs are skipped).  The
#: cache's rank index (``_col_rank``) is deliberately NOT published: workers
#: extend it in place when unseen destinations appear, and a truly shared
#: rank array would point other workers at column rows only the extender
#: holds — copy-on-write keeps each worker's extension private and safe.
TABLE_ATTRS = ("_keys", "_next", "_matrix", "_cols")


def shm_enabled() -> bool:
    """Whether shared-memory publication may be used (env kill-switch)."""
    if os.environ.get("REPRO_TRAFFIC_SHM", "") == "0":
        return False
    return _shared_memory is not None


class SharedArena:
    """Owns shared-memory blocks holding arrays published for forked shards.

    ``share_array`` copies an ndarray into a fresh block and returns the
    block-backed view; ``adopt`` additionally rebinds ``obj.attr`` to the
    view and records the original for restoration.  ``close`` undoes every
    adoption and unlinks every block — idempotent, safe in ``finally``.
    """

    def __init__(self) -> None:
        self._blocks: List[Any] = []
        self._restores: List[Tuple[Any, str, np.ndarray]] = []
        #: block name -> (shape, dtype str) of each published array
        self.manifest: Dict[str, Tuple[Tuple[int, ...], str]] = {}

    # -- publication ------------------------------------------------------ #
    def share_array(self, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a shared block; return the shared view.

        Empty arrays (and any array when shared memory is unavailable) are
        returned unchanged — zero-size blocks are illegal and pointless.
        Memmap-backed arrays (the storage layer's spill files) are also
        returned unchanged: their pages are already file-backed and shared
        across ``fork()``, and copying a spilled table into ``/dev/shm``
        would defeat the memory budget that spilled it.
        """
        if isinstance(array, np.memmap):
            return array
        array = np.ascontiguousarray(array)
        if _shared_memory is None or array.nbytes == 0:
            return array
        block = _shared_memory.SharedMemory(create=True, size=array.nbytes)
        view: np.ndarray = np.ndarray(array.shape, dtype=array.dtype,
                                      buffer=block.buf)
        view[...] = array
        self._blocks.append(block)
        self.manifest[block.name] = (tuple(array.shape), str(array.dtype))
        return view

    def adopt(self, obj: Any, attr: str) -> bool:
        """Rebind ``obj.attr`` to a shared copy; remember the original.

        Returns whether anything was published (missing attributes,
        non-arrays and empty arrays are skipped silently so callers can
        probe heterogeneous table types with one attribute list).
        """
        original = getattr(obj, attr, None)
        if not isinstance(original, np.ndarray) or original.nbytes == 0:
            return False
        shared = self.share_array(original)
        if shared is original:
            return False
        setattr(obj, attr, shared)
        self._restores.append((obj, attr, original))
        return True

    def publish_program(self, program: Any) -> int:
        """Publish a compiled program's hot arrays; returns the block count.

        Covers the frozen :class:`TreeBank` slot tables and every next-hop
        table (sorted-key or dense).  Views built later by ``batch_view``
        wrap the adopted arrays, so both lockstep paths read shared pages.
        """
        count = 0
        bank = getattr(program, "bank", None)
        if bank is not None:
            for attr in TREE_BANK_ATTRS:
                count += int(self.adopt(bank, attr))
        for table in getattr(program, "tables", []) or []:
            for attr in TABLE_ATTRS:
                count += int(self.adopt(table, attr))
        return count

    # -- teardown ---------------------------------------------------------- #
    def close(self) -> None:
        """Restore adopted attributes, then close and unlink every block."""
        for obj, attr, original in reversed(self._restores):
            try:
                setattr(obj, attr, original)
            except Exception:  # pragma: no cover - restoration is best-effort
                pass
        self._restores.clear()
        for block in self._blocks:
            try:
                block.close()
            except Exception:  # pragma: no cover
                pass
            try:
                block.unlink()
            except Exception:  # pragma: no cover - already unlinked
                pass
        self._blocks.clear()
        self.manifest.clear()

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
