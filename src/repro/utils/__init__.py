"""Small shared utilities: RNG handling, bit-size accounting, validation."""

from repro.utils.rng import make_rng, derive_rng, spawn_seeds
from repro.utils.bitsize import (
    ceil_log2,
    bits_for_count,
    bits_for_id,
    bits_for_distance,
    BitBudget,
)
from repro.utils.validation import require, check_probability, check_positive

__all__ = [
    "make_rng",
    "derive_rng",
    "spawn_seeds",
    "ceil_log2",
    "bits_for_count",
    "bits_for_id",
    "bits_for_distance",
    "BitBudget",
    "require",
    "check_probability",
    "check_positive",
]
