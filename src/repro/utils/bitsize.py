"""Bit-size accounting.

The space side of the space-stretch trade-off is measured in *bits of routing
information per node*.  Rather than relying on ``sys.getsizeof`` (which
measures CPython object overhead, not information content), every routing
table in the library declares the logical width of each stored field through
the helpers here, and aggregates them in a :class:`BitBudget`.

Conventions (matching the paper's accounting):

* a node identifier or port costs ``ceil(log2 n)`` bits (``bits_for_id``);
* a counter bounded by ``x`` costs ``ceil(log2(x+1))`` bits
  (``bits_for_count``);
* a distance/weight is charged a fixed ``DISTANCE_BITS`` (64) — the paper
  treats distances as ``O(log n)``-word quantities and never stores more than
  polylogarithmically many of them per table entry, so a fixed word size
  keeps comparisons between schemes fair without biasing any of them.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Tuple

#: Number of bits charged for storing one distance value.
DISTANCE_BITS = 64


def ceil_log2(x: float) -> int:
    """Return ``ceil(log2(x))`` for ``x >= 1`` (0 for ``x <= 1``)."""
    if x <= 1:
        return 0
    return int(math.ceil(math.log2(x)))


def bits_for_count(x: int) -> int:
    """Bits needed to store an integer in ``[0, x]``."""
    if x < 0:
        raise ValueError(f"negative count: {x}")
    return max(1, ceil_log2(x + 1))


def bits_for_id(universe: int) -> int:
    """Bits needed to store one identifier out of ``universe`` possibilities."""
    if universe <= 0:
        raise ValueError(f"universe must be positive, got {universe}")
    return max(1, ceil_log2(universe))


def bits_for_distance() -> int:
    """Bits charged for one stored distance value."""
    return DISTANCE_BITS


@dataclass
class BitBudget:
    """Accumulates named bit costs for one routing table (or one header).

    Example
    -------
    >>> b = BitBudget()
    >>> b.add("parent_port", bits_for_id(128))
    >>> b.add("child_intervals", 3 * 2 * bits_for_id(128))
    >>> b.total() > 0
    True
    """

    fields: Dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def add(self, name: str, bits: int, count: int = 1) -> None:
        """Charge ``count`` copies of a ``bits``-wide field under ``name``."""
        if bits < 0 or count < 0:
            raise ValueError("bits and count must be non-negative")
        self.fields[name] += bits * count

    def reset(self, name: str) -> None:
        """Forget everything charged under ``name`` (churn repair re-charges it)."""
        self.fields.pop(name, None)

    def merge(self, other: "BitBudget", prefix: str = "") -> None:
        """Fold another budget into this one, optionally namespacing it."""
        for name, bits in other.fields.items():
            self.fields[prefix + name] += bits

    def total(self) -> int:
        """Total number of bits charged so far."""
        return int(sum(self.fields.values()))

    def breakdown(self) -> Mapping[str, int]:
        """Per-field bit counts (a plain dict copy)."""
        return dict(self.fields)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.fields.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.fields.items()))
        return f"BitBudget(total={self.total()}, {parts})"


def kib(bits: int) -> float:
    """Convert bits to kibibytes (for human-readable reporting)."""
    return bits / 8.0 / 1024.0
