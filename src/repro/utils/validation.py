"""Argument validation helpers used across the library."""

from __future__ import annotations

from typing import Any


class ValidationError(ValueError):
    """Raised when a caller passes structurally invalid arguments."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def check_positive(value: float, name: str) -> float:
    """Require a strictly positive number and return it."""
    require(value > 0, f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Require a non-negative number and return it."""
    require(value >= 0, f"{name} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Require a probability in ``[0, 1]`` and return it."""
    require(0.0 <= value <= 1.0, f"{name} must be in [0, 1], got {value!r}")
    return value


def check_index(value: int, limit: int, name: str) -> int:
    """Require an integer index in ``[0, limit)`` and return it."""
    require(isinstance(value, (int,)) and not isinstance(value, bool),
            f"{name} must be an int, got {type(value).__name__}")
    require(0 <= value < limit, f"{name} must be in [0, {limit}), got {value}")
    return int(value)


def check_type(value: Any, types: tuple, name: str) -> Any:
    """Require ``value`` to be an instance of ``types`` and return it."""
    require(isinstance(value, types),
            f"{name} must be one of {tuple(t.__name__ for t in types)}, "
            f"got {type(value).__name__}")
    return value
