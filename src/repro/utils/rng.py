"""Deterministic random-number management.

Every randomized construction in the library (landmark sampling, hash
families, workload generation) takes either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here normalize between the two
and derive statistically independent child generators so that sub-components
can be re-seeded reproducibly without sharing state.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from any seed-like value.

    Passing an existing generator returns it unchanged (no copy), so callers
    can thread a single generator through a construction when they want the
    call sites to share a stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def derive_rng(seed: SeedLike, *keys: int) -> np.random.Generator:
    """Derive an independent generator keyed by ``keys``.

    This is used when a construction needs several internally-independent
    randomness consumers (e.g. one per landmark level) that must not be
    affected by how much randomness the others consume.
    """
    if isinstance(seed, np.random.Generator):
        # Fold the generator into a deterministic child via its bit stream.
        base = int(seed.integers(0, 2**63 - 1))
    elif seed is None:
        base = int(np.random.default_rng().integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        base = int(seed.generate_state(1)[0])
    else:
        base = int(seed)
    ss = np.random.SeedSequence([base, *[int(k) & 0x7FFFFFFF for k in keys]])
    return np.random.default_rng(ss)


def spawn_seeds(seed: SeedLike, count: int) -> list[int]:
    """Return ``count`` independent integer seeds derived from ``seed``."""
    rng = make_rng(seed)
    return [int(x) for x in rng.integers(0, 2**31 - 1, size=count)]


def sample_without_replacement(
    rng: np.random.Generator, population: Sequence[int], size: int
) -> list[int]:
    """Sample ``size`` distinct elements (all of them if fewer exist)."""
    population = list(population)
    if size >= len(population):
        return population
    idx = rng.choice(len(population), size=size, replace=False)
    return [population[i] for i in idx]


def bernoulli_subset(
    rng: np.random.Generator, population: Iterable[int], probability: float
) -> list[int]:
    """Keep each element independently with the given probability."""
    population = list(population)
    if not population:
        return []
    mask = rng.random(len(population)) < probability
    return [x for x, keep in zip(population, mask) if keep]
