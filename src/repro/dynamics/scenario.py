"""Named churn scenarios and the scenario-matrix runner.

A :class:`ChurnScenario` turns a live graph into one event batch per epoch
(state such as which links are currently down lives on the scenario object,
so flapping and heal phases compose correctly).  Three production-shaped
scenarios ship by default:

* ``flap-heavy`` — every epoch recovers the links downed last epoch and
  fails a fresh random sample: constant link flapping.
* ``degradation`` — every epoch multiplies the weight of a random edge
  sample by a congestion factor: monotone quality decay, no topology change.
* ``partition-and-heal`` — the first half of the run progressively fails the
  boundary of a region until it partitions off, the second half re-adds the
  links in reverse order.

:func:`run_scenario_matrix` composes any workload family with any scenario:
per epoch it applies the batch, measures every scheme's **delivery rate
under stale state** (routing on the pre-repair tables over the mutated
graph), repairs each scheme (``maintain(delta)`` — incremental where the
scheme supports it — or forced :func:`~repro.dynamics.repair.full_rebuild`),
then evaluates on **both engines** and cross-checks their reports field by
field.  Rows report stretch drift against the pre-churn baseline, delivery
rate, repair wall-time/strategy, and forwarding recompile time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.dynamics.events import (
    ChurnEvent,
    EdgeChange,
    apply_events,
    edge_failures,
    edge_recoveries,
    weight_perturbations,
)
from repro.dynamics.repair import full_rebuild
from repro.experiments.harness import ExperimentResult
from repro.factory import build_scheme
from repro.graphs.backends import BackendLike
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.routing.simulator import RoutingSimulator
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import require

#: scenario names accepted by :func:`make_scenario`
SCENARIO_NAMES = ("flap-heavy", "degradation", "partition-and-heal",
                  "flash-crowd", "hotspot-storm", "partition-under-load")

#: structure-seed derivation namespace used by drivers honouring directives
STRUCTURE_KEY_NS = 9104


@dataclass(frozen=True)
class TrafficDirective:
    """A scenario's per-epoch steering of the traffic model.

    Adversarial scenarios couple *what fails* with *who is talking*: a flash
    crowd migrates the popular destination set mid-run, a storm re-aims the
    hotspot model at specific victims, a partition keeps load pointed at the
    region being cut off.  The live timeline asks its scenario for a
    directive each epoch and applies it when building that epoch's traffic
    model:

    * ``model`` — override the model family for this epoch (``None`` keeps
      the run's base model);
    * ``model_kwargs`` — merged over the run's base model kwargs (e.g.
      explicit hotspot ``nodes``);
    * ``structure_key`` — pins the model's *structure seed* (popularity
      permutation, hotspot placement) to a value derived from
      ``(run seed, STRUCTURE_KEY_NS, structure_key)``.  Epochs sharing a
      key share a hot set even though their packet streams are re-seeded
      per epoch; changing the key **is** the hot-set migration — and what
      forces the pinned hot-row scoring cache to invalidate.
    """

    model: Optional[str] = None
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    structure_key: Optional[int] = None


class ChurnScenario:
    """Stateful generator of one event batch per epoch.

    The contract with the runner: ``events_for_epoch`` is called once per
    epoch with the *live* (already-mutated) graph, and the returned batch is
    applied exactly once, in order, before the next call.

    ``traffic_for_epoch`` is the traffic half of the contract: a *pure*
    query (given the scenario's planned state) that may be called any number
    of times, in any order — the timeline asks for epoch ``e``'s directive
    when building epoch ``e``'s traffic and for epoch ``e - 1``'s when
    building the staleness-window probe (the packets in flight when the
    failure hits belong to the previous epoch's regime).
    """

    name: str = "abstract"

    def events_for_epoch(self, graph: WeightedGraph, epoch: int,
                         num_epochs: int,
                         rng: np.random.Generator) -> List[ChurnEvent]:
        raise NotImplementedError

    def traffic_for_epoch(self, graph: WeightedGraph, epoch: int,
                          num_epochs: int) -> Optional[TrafficDirective]:
        """The traffic directive for ``epoch`` (``None``: no steering)."""
        return None


class FlapHeavyScenario(ChurnScenario):
    """Links flap: recover last epoch's failures, fail a fresh sample."""

    name = "flap-heavy"

    def __init__(self, rate: float = 0.03) -> None:
        require(0 < rate <= 1, "flap rate must be in (0, 1]")
        self.rate = float(rate)
        self._down: List[EdgeChange] = []

    def events_for_epoch(self, graph, epoch, num_epochs, rng):
        events: List[ChurnEvent] = list(edge_recoveries(self._down))
        count = max(1, int(round(self.rate * graph.num_edges)))
        failures = edge_failures(graph, count, seed=rng)
        # remember what goes down so the next epoch can flap it back up
        self._down = [(e.u, e.v, graph.edge_weight(e.u, e.v), None)
                      for e in failures]
        events.extend(failures)
        return events


class DegradationScenario(ChurnScenario):
    """Congestion creep: random edges get heavier every epoch."""

    name = "degradation"

    def __init__(self, rate: float = 0.05, low: float = 1.5,
                 high: float = 4.0) -> None:
        require(0 < rate <= 1, "degradation rate must be in (0, 1]")
        self.rate = float(rate)
        self.low = float(low)
        self.high = float(high)

    def events_for_epoch(self, graph, epoch, num_epochs, rng):
        count = max(1, int(round(self.rate * graph.num_edges)))
        return weight_perturbations(graph, count, seed=rng,
                                    low=self.low, high=self.high)


class PartitionAndHealScenario(ChurnScenario):
    """Fail a region's boundary until it partitions off, then heal it.

    The region is the ~``region_fraction``-of-n nodes closest (by hop BFS) to
    a random seed node; its boundary edges are split across the first half of
    the epochs (so the cut tightens progressively and finally separates) and
    re-added in reverse order during the second half.
    """

    name = "partition-and-heal"

    def __init__(self, region_fraction: float = 0.25) -> None:
        require(0 < region_fraction < 1, "region_fraction must be in (0, 1)")
        self.region_fraction = float(region_fraction)
        self._schedule: Optional[List[List[Tuple[int, int, float]]]] = None
        self._region: Optional[List[int]] = None

    def _plan(self, graph: WeightedGraph, num_epochs: int,
              rng: np.random.Generator) -> None:
        target = max(2, int(round(self.region_fraction * graph.n)))
        seed_node = int(rng.integers(0, graph.n))
        region = {seed_node}
        frontier = [seed_node]
        while frontier and len(region) < target:
            nxt: List[int] = []
            for u in frontier:
                for v in graph.neighbor_indices(u):
                    if v not in region and len(region) < target:
                        region.add(v)
                        nxt.append(v)
            frontier = nxt
        self._region = sorted(region)
        boundary = [(u, v, w) for u, v, w in graph.edges()
                    if (u in region) != (v in region)]
        rng.shuffle(boundary)
        fail_epochs = max(1, num_epochs // 2)
        self._schedule = [[] for _ in range(fail_epochs)]
        for index, edge in enumerate(boundary):
            self._schedule[index % fail_epochs].append(edge)

    def events_for_epoch(self, graph, epoch, num_epochs, rng):
        if self._schedule is None:
            self._plan(graph, num_epochs, rng)
        fail_epochs = len(self._schedule)
        if epoch <= fail_epochs:
            return [ChurnEvent("fail", u, v)
                    for u, v, _ in self._schedule[epoch - 1]]
        heal_index = fail_epochs - 1 - (epoch - fail_epochs - 1) % fail_epochs
        batch = self._schedule[heal_index]
        self._schedule[heal_index] = []  # heal each chunk once
        return [ChurnEvent("recover", u, v, weight=w) for u, v, w in batch]


class FlashCrowdScenario(FlapHeavyScenario):
    """Light background flapping while the Zipf crowd migrates mid-run.

    Churn is ordinary low-rate link flapping; the adversarial part is the
    *traffic*: every ``migrate_every`` epochs the directive's
    ``structure_key`` advances, migrating the Zipf popularity permutation —
    yesterday's hot destinations go cold and a fresh set lights up.  The
    epoch-spanning caches this invalidates (pinned hot distance rows,
    warmed next-hop columns) are exactly what the scenario exists to
    stress: a driver that kept scoring against the old crowd's rows would
    be wrong, and the cache memoization key makes that impossible.
    """

    name = "flash-crowd"

    def __init__(self, rate: float = 0.01, migrate_every: int = 2,
                 support: int = 16, exponent: float = 1.1) -> None:
        super().__init__(rate=rate)
        require(migrate_every >= 1, "migrate_every must be at least 1")
        self.migrate_every = int(migrate_every)
        self.support = int(support)
        self.exponent = float(exponent)

    def traffic_for_epoch(self, graph, epoch, num_epochs):
        return TrafficDirective(
            model="zipf",
            model_kwargs={"support": self.support,
                          "exponent": self.exponent},
            structure_key=int(epoch) // self.migrate_every)


class HotspotStormScenario(ChurnScenario):
    """Periodic DDoS-style storms: victims absorb the load *and* congest.

    The victim set (top-degree hubs — chosen once, on the pre-churn graph)
    is hammered on storm epochs from two sides at once: the traffic model
    becomes a hotspot model aimed explicitly at the victims with
    ``storm_fraction`` of all packets, and the churn batch multiplies the
    weight of the victims' incident links (congestion under load).  Quiet
    epochs carry the run's base traffic and no events — the recovery the
    SLA rows should show.
    """

    name = "hotspot-storm"

    def __init__(self, victims: int = 4, storm_period: int = 2,
                 storm_fraction: float = 0.9, congestion: float = 3.0) -> None:
        require(victims >= 1, "need at least one victim")
        require(storm_period >= 1, "storm_period must be at least 1")
        require(0.0 < storm_fraction <= 1.0,
                "storm_fraction must be in (0, 1]")
        require(congestion > 1.0, "congestion factor must exceed 1")
        self.victims = int(victims)
        self.storm_period = int(storm_period)
        self.storm_fraction = float(storm_fraction)
        self.congestion = float(congestion)
        self._targets: Optional[List[int]] = None

    def _storm_epoch(self, epoch: int) -> bool:
        return epoch >= 1 and (epoch - 1) % self.storm_period == 0

    def _plan(self, graph: WeightedGraph) -> None:
        degrees = [(graph.degree(v), v) for v in range(graph.n)]
        degrees.sort(key=lambda t: (-t[0], t[1]))
        self._targets = [v for _, v in degrees[:self.victims]]

    def events_for_epoch(self, graph, epoch, num_epochs, rng):
        if self._targets is None:
            self._plan(graph)
        if not self._storm_epoch(epoch):
            return []
        events: List[ChurnEvent] = []
        seen = set()
        for u in self._targets:
            for v, w in sorted(graph.neighbors(u)):
                key = (u, v) if u < v else (v, u)
                if key not in seen:
                    seen.add(key)
                    events.append(ChurnEvent("perturb", key[0], key[1],
                                             weight=w * self.congestion))
        return events

    def traffic_for_epoch(self, graph, epoch, num_epochs):
        if self._targets is None or not self._storm_epoch(epoch):
            return None
        return TrafficDirective(
            model="hotspot",
            model_kwargs={"nodes": list(self._targets),
                          "fraction": self.storm_fraction})


class PartitionUnderLoadScenario(PartitionAndHealScenario):
    """Partition-and-heal while traffic keeps hammering the doomed region.

    The churn schedule is the parent's (progressively cut the region's
    boundary, then heal it in reverse); the directive aims a hotspot model
    at the region's own nodes for the whole run.  As the cut tightens, an
    increasing share of the load is destined for nodes about to become
    unreachable from outside — worst case for the staleness window, and the
    honest test that delivery accounting separates *can't-route* (packets
    across the cut, excluded via ``unreachable``) from *won't-route*
    (scheme failures, which stay zero).
    """

    name = "partition-under-load"

    def __init__(self, region_fraction: float = 0.25,
                 load_fraction: float = 0.7) -> None:
        super().__init__(region_fraction=region_fraction)
        require(0.0 < load_fraction <= 1.0, "load_fraction must be in (0, 1]")
        self.load_fraction = float(load_fraction)

    def traffic_for_epoch(self, graph, epoch, num_epochs):
        if self._region is None:
            return None  # pre-plan baseline epoch: base traffic
        return TrafficDirective(
            model="hotspot",
            model_kwargs={"nodes": list(self._region),
                          "fraction": self.load_fraction})


def make_scenario(name: str, **kwargs) -> ChurnScenario:
    """Build a named scenario (``kwargs`` forwarded to its constructor)."""
    key = str(name).lower()
    if key == "flap-heavy":
        return FlapHeavyScenario(**kwargs)
    if key == "degradation":
        return DegradationScenario(**kwargs)
    if key == "partition-and-heal":
        return PartitionAndHealScenario(**kwargs)
    if key == "flash-crowd":
        return FlashCrowdScenario(**kwargs)
    if key == "hotspot-storm":
        return HotspotStormScenario(**kwargs)
    if key == "partition-under-load":
        return PartitionUnderLoadScenario(**kwargs)
    raise ValueError(f"unknown scenario {name!r}; choose from {SCENARIO_NAMES}")


# --------------------------------------------------------------------------- #
# stale-state evaluation
# --------------------------------------------------------------------------- #
def stale_delivery_rate(scheme: RoutingSchemeInstance, graph: WeightedGraph,
                        pairs: Sequence[Tuple[int, int]]) -> float:
    """Fraction of pairs a *stale* scheme still delivers on the mutated graph.

    Models packets in flight between the failure and the repair: the scheme
    routes with pre-churn tables, and a packet is delivered only if the walk
    it produces uses only edges that still exist and ends at the destination.
    Exceptions raised by routing over missing edges count as drops (the
    packet died at the failed link), not as errors.
    """
    if not pairs:
        return 1.0
    delivered = 0
    for u, v in pairs:
        try:
            result = scheme.route(u, graph.name_at(v))
        except Exception:
            continue  # routing walked into a failed link: packet dropped
        if not result.found or not result.path:
            continue
        if result.path[0] != u or result.path[-1] != v:
            continue
        if all(a == b or graph.has_edge(a, b)
               for a, b in zip(result.path, result.path[1:])):
            delivered += 1
    return delivered / len(pairs)


# --------------------------------------------------------------------------- #
# the scenario-matrix runner
# --------------------------------------------------------------------------- #
ScenarioLike = Union[str, ChurnScenario]


def run_scenario_matrix(
    schemes: Sequence[str],
    graph_factory: Callable[[], WeightedGraph],
    scenarios: Sequence[ScenarioLike] = SCENARIO_NAMES,
    epochs: int = 5,
    num_pairs: int = 150,
    k: int = 2,
    seed: SeedLike = 0,
    backend: BackendLike = None,
    scheme_kwargs: Optional[Dict[str, dict]] = None,
    repair: str = "maintain",
) -> ExperimentResult:
    """Drive every scheme through every churn scenario, epoch by epoch.

    Parameters
    ----------
    schemes:
        Scheme names (see :data:`repro.factory.SCHEME_NAMES`).
    graph_factory:
        Zero-arg callable producing a fresh workload graph; called once per
        scenario because churn mutates the graph in place (see
        :func:`repro.experiments.workloads.workload_factory`).
    scenarios:
        Scenario names or pre-built :class:`ChurnScenario` objects.  Note a
        scenario object is stateful — pass names (or fresh objects) when
        running several scenarios.
    epochs:
        Number of event batches per scenario (epoch 0 is the pre-churn
        baseline row).
    repair:
        ``"maintain"`` uses each scheme's own (possibly incremental) repair;
        ``"full"`` forces the generic full rebuild — running both modes on
        the same seed is how the E15 bench prices incremental repair.

    Returns an :class:`ExperimentResult` with one row per
    (scenario, epoch, scheme): delivery rate under stale state, post-repair
    stretch (both engines, cross-checked field by field), stretch drift
    against the epoch-0 baseline, repair wall-time/strategy, and the
    forwarding recompile time after repair.
    """
    require(repair in ("maintain", "full"),
            f"repair must be 'maintain' or 'full', got {repair!r}")
    result = ExperimentResult(name="scenario-matrix")
    result.metadata.update({
        "epochs": int(epochs), "num_pairs": int(num_pairs), "k": int(k),
        "repair": repair,
        "scenarios": [s if isinstance(s, str) else s.name for s in scenarios],
    })
    scheme_kwargs = scheme_kwargs or {}

    for s_index, scenario_like in enumerate(scenarios):
        scenario = make_scenario(scenario_like) \
            if isinstance(scenario_like, str) else scenario_like
        graph = graph_factory()
        oracle = DistanceOracle(graph, backend=backend)
        simulator = RoutingSimulator(graph, oracle=oracle)
        rng = derive_rng(seed, 101, s_index)
        pair_rng = derive_rng(seed, 202, s_index)
        # an *integer* build seed keeps a forced full rebuild bit-identical
        # to the original construction (generators would replay differently)
        build_seed = int(derive_rng(seed, 7, s_index).integers(0, 2**31 - 1))

        built: Dict[str, RoutingSchemeInstance] = {}
        baseline: Dict[str, float] = {}
        pairs = simulator.sample_pairs(num_pairs, seed=pair_rng,
                                       on_shortfall="warn")
        for name in schemes:
            start = time.perf_counter()
            built[name] = build_scheme(name, graph, k=k, seed=build_seed,
                                       oracle=oracle,
                                       **scheme_kwargs.get(name, {}))
            build_seconds = time.perf_counter() - start
            row = _evaluate_epoch(simulator, built[name], pairs)
            baseline[name] = row["avg_stretch"]
            result.add_row(scenario=scenario.name, epoch=0, scheme=name,
                           events=0, stale_delivery=1.0, stretch_drift=0.0,
                           repair_seconds=0.0, repair_strategy="build",
                           build_seconds=build_seconds, rebuilt_trees=0,
                           reused_trees=0, patched_entries=0,
                           dirty_destinations=0, recompile_seconds=0.0, **row)

        for epoch in range(1, int(epochs) + 1):
            events = scenario.events_for_epoch(graph, epoch, int(epochs), rng)
            delta = apply_events(graph, events)
            pairs = simulator.sample_pairs(num_pairs, seed=pair_rng,
                                           on_shortfall="warn")
            for name in schemes:
                scheme = built[name]
                stale = stale_delivery_rate(scheme, graph, pairs)
                if repair == "full":
                    report = full_rebuild(scheme, delta)
                else:
                    report = scheme.maintain(delta)
                start = time.perf_counter()
                scheme.compiled_forwarding()
                recompile_seconds = time.perf_counter() - start
                row = _evaluate_epoch(simulator, scheme, pairs)
                row["stretch_drift"] = row["avg_stretch"] - baseline[name]
                result.add_row(scenario=scenario.name, epoch=epoch, scheme=name,
                               events=len(events), stale_delivery=stale,
                               repair_seconds=report.seconds,
                               repair_strategy=report.strategy,
                               build_seconds=0.0,
                               rebuilt_trees=report.rebuilt_trees,
                               reused_trees=report.reused_trees,
                               patched_entries=report.patched_entries,
                               dirty_destinations=report.dirty_destinations,
                               recompile_seconds=recompile_seconds, **row)
    return result


def _evaluate_epoch(simulator: RoutingSimulator, scheme: RoutingSchemeInstance,
                    pairs: Sequence[Tuple[int, int]]) -> Dict[str, object]:
    """Evaluate one scheme on both engines; cross-check and flatten to a row."""
    start = time.perf_counter()
    scalar = simulator.evaluate_batch(scheme, pairs, engine="scalar")
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    lockstep = simulator.evaluate_batch(scheme, pairs, engine="lockstep")
    lockstep_seconds = time.perf_counter() - start
    a, b = scalar.as_dict(), lockstep.as_dict()
    a.pop("engine")
    b.pop("engine")
    delivered = scalar.num_pairs - scalar.failures
    return {
        "pairs": scalar.num_pairs,
        "delivery": delivered / scalar.num_pairs if scalar.num_pairs else 1.0,
        "avg_stretch": scalar.avg_stretch,
        "max_stretch": scalar.max_stretch,
        "p95_stretch": scalar.p95_stretch,
        "failures": scalar.failures,
        "parity": a == b,
        "scalar_seconds": scalar_seconds,
        "lockstep_seconds": lockstep_seconds,
    }
