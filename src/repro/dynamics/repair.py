"""Scheme repair after graph churn: generic full rebuild + shared helpers.

``RoutingSchemeInstance.maintain(delta)`` lands here by default.  The safe,
always-correct repair is :func:`full_rebuild`: re-run the scheme's own
construction on the mutated graph (same parameters and seed, recovered via
``rebuild_spec()``) and adopt the fresh state in place, so every live
reference to the instance keeps working.  Schemes with exploitable structure
override ``maintain`` with cheaper incremental paths:

* :class:`~repro.baselines.shortest_path.ShortestPathRouting` validates every
  compiled next-hop entry against fresh distances with array gathers, then
  recomputes only the *dirty destination columns* (one vectorized multi-source
  Dijkstra) and patches them into the live
  :class:`~repro.routing.forwarding.NextHopTable` — the compiled forwarding
  program survives the event batch un-recompiled.
* :class:`~repro.baselines.thorup_zwick.ThorupZwickRouting` rebuilds only the
  cluster trees whose member set changed or whose tree stopped being a
  shortest-path tree (:func:`tree_is_intact`); reused trees keep their
  routing labels and their cached forwarding slot arrays, so the recompiled
  tree bank re-slots only the dirtied trees.

Every path returns a :class:`RepairReport` so churn runners can account the
repair cost of each event batch.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.trees import Tree

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.dynamics.events import GraphDelta
    from repro.routing.scheme_api import RoutingSchemeInstance


@dataclass
class RepairReport:
    """Cost accounting of one ``maintain()`` call (one event batch)."""

    scheme: str
    strategy: str              # "full-rebuild" | "incremental"
    seconds: float
    rebuilt_trees: int = 0
    reused_trees: int = 0
    patched_entries: int = 0
    dirty_destinations: int = 0
    details: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for tabular reporting."""
        out = {
            "scheme": self.scheme,
            "strategy": self.strategy,
            "seconds": self.seconds,
            "rebuilt_trees": self.rebuilt_trees,
            "reused_trees": self.reused_trees,
            "patched_entries": self.patched_entries,
            "dirty_destinations": self.dirty_destinations,
        }
        out.update(self.details)
        return out


def full_rebuild(scheme: "RoutingSchemeInstance",
                 delta: Optional["GraphDelta"] = None) -> RepairReport:
    """Rebuild ``scheme`` from scratch on its (mutated) graph, in place.

    The fresh instance is constructed with the kwargs ``rebuild_spec()``
    recovers (filtered against the constructor's actual signature, so schemes
    with different parameter sets all work), then its state is adopted into
    the live object — callers holding a reference to ``scheme`` see the
    repaired tables immediately, and the stale compiled forwarding program is
    dropped with the old state.  The shared distance oracle is carried over;
    its backend self-heals via the graph's mutation version.
    """
    start = time.perf_counter()
    spec = scheme.rebuild_spec()
    signature = inspect.signature(type(scheme).__init__)
    kwargs = {key: value for key, value in spec.items()
              if key in signature.parameters}
    fresh = type(scheme)(scheme.graph, **kwargs)
    scheme.__dict__.clear()
    scheme.__dict__.update(fresh.__dict__)
    return RepairReport(scheme=scheme.scheme_name, strategy="full-rebuild",
                        seconds=time.perf_counter() - start)


def tree_is_intact(graph: WeightedGraph, tree: Tree, root_row: np.ndarray,
                   atol: float = 1e-6) -> bool:
    """Whether ``tree`` is still a valid shortest-path tree of ``graph``.

    Two conditions, both against the *current* graph state:

    1. every tree edge still exists with its original weight (failures and
       perturbations both break this), and
    2. every tree node's depth equals the fresh distance from the root
       (``root_row``) — so each root-to-node tree path is still a shortest
       path even if some *other* part of the graph got shorter.

    Together these make a reused tree indistinguishable from a freshly built
    one spanning the same members, which is what lets incremental repair skip
    the rebuild.  The tolerance absorbs float summation-order differences
    between tree depths and the Dijkstra kernel.
    """
    for child, parent in tree.parent.items():
        if not graph.has_edge(parent, child):
            return False
        if graph.edge_weight(parent, child) != tree.edge_weight[child]:
            return False
    for v in tree.nodes:
        if abs(tree.depth[v] - root_row[v]) > atol:
            return False
    return True
