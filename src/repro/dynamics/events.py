"""Seeded churn-event streams and the graph-mutation delta they produce.

An event is a small immutable record (:class:`ChurnEvent`) that knows how to
apply itself to a :class:`~repro.graphs.graph.WeightedGraph` through the
graph's mutation API (``remove_edge`` / ``add_edge`` / ``set_edge_weight`` /
``detach_node``), each of which invalidates the CSR / component-id caches and
bumps the graph's mutation version so live distance backends self-heal.

Applying a *batch* of events through :func:`apply_events` yields a
:class:`GraphDelta` — the record scheme repair (``maintain(delta)``) consumes
to decide what is dirty.  Event batches are the unit of churn: one batch is
one epoch of a scenario, and schemes are repaired once per batch, not once
per event.

The stream builders at the bottom (:func:`edge_failures`,
:func:`weight_perturbations`, ...) sample events from the *live* graph with a
caller-provided generator, so scenarios stay reproducible per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import require

#: event kinds understood by :class:`ChurnEvent`
EVENT_KINDS = ("fail", "recover", "perturb", "detach")

#: one applied edge change: (u, v, old_weight_or_None, new_weight_or_None)
EdgeChange = Tuple[int, int, Optional[float], Optional[float]]


@dataclass(frozen=True)
class ChurnEvent:
    """One mutation of the network.

    ``kind`` is one of :data:`EVENT_KINDS`:

    * ``"fail"`` — remove edge ``{u, v}`` (link failure);
    * ``"recover"`` — (re-)insert edge ``{u, v}`` with ``weight``;
    * ``"perturb"`` — overwrite the weight of edge ``{u, v}`` with ``weight``
      (congestion / degradation; increases are applied verbatim);
    * ``"detach"`` — remove every edge incident to node ``u`` (node outage;
      the node keeps its name and index).
    """

    kind: str
    u: int
    v: int = -1
    weight: float = 0.0

    def apply(self, graph: WeightedGraph) -> "AppliedEvent":
        """Mutate ``graph`` and return the applied record (old/new weights)."""
        if self.kind == "fail":
            old = graph.remove_edge(self.u, self.v)
            return AppliedEvent(self, ((self.u, self.v, old, None),))
        if self.kind == "recover":
            old = graph.edge_weight(self.u, self.v) \
                if graph.has_edge(self.u, self.v) else None
            graph.add_edge(self.u, self.v, self.weight)
            return AppliedEvent(self, ((self.u, self.v, old, self.weight),))
        if self.kind == "perturb":
            old = graph.set_edge_weight(self.u, self.v, self.weight)
            return AppliedEvent(self, ((self.u, self.v, old, self.weight),))
        if self.kind == "detach":
            removed = graph.detach_node(self.u)
            return AppliedEvent(self, tuple((self.u, v, w, None)
                                            for v, w in removed))
        raise ValueError(f"unknown event kind {self.kind!r}; "
                         f"choose from {EVENT_KINDS}")


@dataclass(frozen=True)
class AppliedEvent:
    """A :class:`ChurnEvent` that has been applied, with the edges it changed."""

    event: ChurnEvent
    changes: Tuple[EdgeChange, ...]


@dataclass
class GraphDelta:
    """Everything one event batch changed — the input to ``maintain()``."""

    applied: List[AppliedEvent] = field(default_factory=list)

    @property
    def num_events(self) -> int:
        return len(self.applied)

    def changed_edges(self) -> List[Tuple[int, int]]:
        """Every edge some event touched, as ``(min(u,v), max(u,v))`` pairs."""
        seen: Set[Tuple[int, int]] = set()
        out: List[Tuple[int, int]] = []
        for record in self.applied:
            for u, v, _, _ in record.changes:
                key = (min(u, v), max(u, v))
                if key not in seen:
                    seen.add(key)
                    out.append(key)
        return out

    def touched_nodes(self) -> Set[int]:
        """Every node incident to a changed edge."""
        nodes: Set[int] = set()
        for u, v in self.changed_edges():
            nodes.add(u)
            nodes.add(v)
        return nodes


def apply_events(graph: WeightedGraph, events: Iterable[ChurnEvent]) -> GraphDelta:
    """Apply one event batch to ``graph`` in order; return the delta.

    This is the canonical churn entry point: mutate through here, then call
    ``scheme.maintain(delta)`` on every live scheme instance.  Cache
    invalidation (CSR, component ids, distance-backend rows) happens inside
    the graph's mutation primitives — nothing here needs to know about it.
    """
    return GraphDelta(applied=list(graph.apply_events(events)))


# --------------------------------------------------------------------------- #
# seeded stream builders
# --------------------------------------------------------------------------- #
def _sample_edges(graph: WeightedGraph, count: int,
                  rng: np.random.Generator) -> List[Tuple[int, int, float]]:
    edges = list(graph.edges())
    if not edges or count <= 0:
        return []
    count = min(int(count), len(edges))
    chosen = rng.choice(len(edges), size=count, replace=False)
    return [edges[int(i)] for i in chosen]


def edge_failures(graph: WeightedGraph, count: int,
                  seed: SeedLike = None) -> List[ChurnEvent]:
    """``count`` link failures sampled uniformly from the live edge set."""
    rng = make_rng(seed)
    return [ChurnEvent("fail", u, v) for u, v, _ in _sample_edges(graph, count, rng)]


def edge_recoveries(failed: Sequence[EdgeChange]) -> List[ChurnEvent]:
    """Recovery events re-inserting previously failed edges at their old weight.

    ``failed`` is a sequence of ``(u, v, old_weight, new_weight)`` change
    records (e.g. collected from a :class:`GraphDelta`); only records whose
    ``new_weight`` is ``None`` (true removals) produce a recovery.
    """
    out = []
    for u, v, old, new in failed:
        if new is None and old is not None:
            out.append(ChurnEvent("recover", u, v, weight=float(old)))
    return out


def weight_perturbations(graph: WeightedGraph, count: int, seed: SeedLike = None,
                         low: float = 1.5, high: float = 4.0) -> List[ChurnEvent]:
    """Multiply the weight of ``count`` random edges by ``U[low, high]``."""
    require(0 < low <= high, "perturbation factor range must satisfy 0 < low <= high")
    rng = make_rng(seed)
    out = []
    for u, v, w in _sample_edges(graph, count, rng):
        factor = float(rng.uniform(low, high))
        out.append(ChurnEvent("perturb", u, v, weight=w * factor))
    return out


def node_detachments(graph: WeightedGraph, count: int,
                     seed: SeedLike = None) -> List[ChurnEvent]:
    """Detach ``count`` random non-isolated nodes (node outages)."""
    rng = make_rng(seed)
    candidates = [v for v in range(graph.n) if graph.degree(v) > 0]
    if not candidates or count <= 0:
        return []
    count = min(int(count), len(candidates))
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return [ChurnEvent("detach", candidates[int(i)]) for i in chosen]


def random_event_batch(graph: WeightedGraph, size: int, seed: SeedLike = None,
                       kinds: Sequence[str] = ("fail", "perturb")) -> List[ChurnEvent]:
    """A mixed batch of ``size`` events over the live graph (property testing).

    Each event's kind is drawn uniformly from ``kinds``; events are generated
    against the graph state *as the batch is applied would leave it* is not
    simulated — duplicates targeting the same edge are skipped, so the batch
    is always applicable in order to the graph it was sampled from.
    """
    rng = make_rng(seed)
    out: List[ChurnEvent] = []
    used: Set[Tuple[int, int]] = set()
    detached: Set[int] = set()
    for _ in range(int(size)):
        kind = str(rng.choice(list(kinds)))
        if kind == "detach":
            for event in node_detachments(graph, 1, seed=rng):
                if event.u not in detached:
                    detached.add(event.u)
                    out.append(event)
            continue
        if kind == "recover":
            continue  # recoveries need a failure history; skip in mixed batches
        require(kind in ("fail", "perturb"),
                f"unknown event kind {kind!r}; choose from {EVENT_KINDS}")
        sampled = _sample_edges(graph, 1, rng)
        if not sampled:
            continue
        u, v, w = sampled[0]
        key = (min(u, v), max(u, v))
        if key in used or u in detached or v in detached:
            continue  # one event per edge keeps the batch applicable in order
        used.add(key)
        if kind == "fail":
            # a failed edge may disconnect the graph — that is a legitimate
            # scenario; schemes must keep routing inside surviving components
            out.append(ChurnEvent("fail", u, v))
        else:
            out.append(ChurnEvent("perturb", u, v,
                                  weight=w * float(rng.uniform(1.5, 4.0))))
    return out
