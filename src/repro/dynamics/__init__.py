"""Dynamic-network churn subsystem: events, incremental repair, scenarios.

Real compact-routing deployments face link failures, weight churn and node
outages; this package opens that workload axis for the whole library.  It is
layered between ``routing/`` and ``experiments/``:

``events``
    Seeded churn-event streams (edge failure / recovery, weight
    perturbation, node detach) and :func:`apply_events`, which mutates a
    :class:`~repro.graphs.graph.WeightedGraph` in place and returns the
    :class:`~repro.dynamics.events.GraphDelta` that repair consumes.
``repair``
    :func:`full_rebuild` (the generic safe repair behind
    ``RoutingSchemeInstance.maintain``), the :class:`RepairReport` cost
    record, and shared helpers for the schemes' incremental paths.
``scenario``
    Named churn scenarios (flap-heavy, degradation, partition-and-heal)
    composing any workload family, plus :func:`run_scenario_matrix`, which
    drives every scheme through event epochs on both evaluation engines and
    reports stretch drift, delivery under stale state, and repair cost.
"""

from repro.dynamics.events import (
    ChurnEvent,
    GraphDelta,
    apply_events,
    edge_failures,
    edge_recoveries,
    node_detachments,
    random_event_batch,
    weight_perturbations,
)
from repro.dynamics.repair import RepairReport, full_rebuild, tree_is_intact
from repro.dynamics.scenario import (
    SCENARIO_NAMES,
    ChurnScenario,
    make_scenario,
    run_scenario_matrix,
    stale_delivery_rate,
)

__all__ = [
    "ChurnEvent",
    "GraphDelta",
    "apply_events",
    "edge_failures",
    "edge_recoveries",
    "weight_perturbations",
    "node_detachments",
    "random_event_batch",
    "RepairReport",
    "full_rebuild",
    "tree_is_intact",
    "ChurnScenario",
    "SCENARIO_NAMES",
    "make_scenario",
    "run_scenario_matrix",
    "stale_delivery_rate",
]
