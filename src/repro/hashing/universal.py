"""Universal / k-wise independent hashing.

Lemma 4 of the paper needs a hash function ``h : names -> Sigma^k`` (with
``Sigma = {0 .. n^{1/k}-1}``) that is ``Theta(log n)``-wise independent and
representable in ``Theta(log^2 n)`` bits, citing Carter–Wegman [11].  The
classic construction is a random polynomial of degree ``t-1`` over a prime
field: ``h(x) = (a_{t-1} x^{t-1} + ... + a_1 x + a_0) mod p``, which is
``t``-wise independent and needs ``t`` field elements of storage.

:class:`KWiseHash` implements that polynomial family; :class:`DigitHash`
post-processes its output into a fixed-length digit string over an alphabet
of size ``sigma`` (the "hash name" of Lemma 4); :class:`BucketHash` reduces a
name to a bucket index (used by the Lemma 7 dictionary distribution).
Arbitrary hashable Python names are first folded to integers with a stable
64-bit FNV-1a, so node names can be ints, strings, or tuples.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.bitsize import BitBudget, bits_for_count
from repro.utils.rng import make_rng
from repro.utils.validation import require

# A Mersenne prime comfortably above any 61-bit folded name.
_PRIME = (1 << 61) - 1


def _fold_name(name: Hashable) -> int:
    """Stable 64-bit FNV-1a fold of an arbitrary hashable name."""
    data = repr(name).encode("utf-8")
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h % _PRIME


class KWiseHash:
    """A ``t``-wise independent hash family member over the field ``GF(p)``.

    Parameters
    ----------
    independence:
        The degree of independence ``t`` (the polynomial has ``t`` random
        coefficients).  The paper uses ``t = Theta(log n)``.
    seed:
        Randomness for drawing the coefficients.
    """

    def __init__(self, independence: int, seed=None) -> None:
        require(independence >= 1, "independence must be >= 1")
        rng = make_rng(seed)
        self.independence = int(independence)
        # The leading coefficient may be zero; independence is unaffected.
        self.coefficients: List[int] = [
            int(rng.integers(0, _PRIME)) for _ in range(self.independence)
        ]

    def value(self, name: Hashable) -> int:
        """Hash ``name`` to an integer in ``[0, p)`` via Horner evaluation."""
        x = _fold_name(name)
        acc = 0
        for c in reversed(self.coefficients):
            acc = (acc * x + c) % _PRIME
        return acc

    def storage_bits(self) -> int:
        """Bits needed to store this function (t field elements)."""
        return self.independence * 61

    def __call__(self, name: Hashable) -> int:
        return self.value(name)


class DigitHash:
    """Hash arbitrary names to fixed-length digit strings over ``Sigma = {0..sigma-1}``.

    This is the "hash name" ``h(v) in Sigma^k`` of Lemma 4.  Successive digits
    are extracted from independent :class:`KWiseHash` functions so that the
    prefix-load property the lemma needs (no digit-string prefix is shared by
    too many nodes) holds with high probability.
    """

    def __init__(self, sigma: int, length: int, independence: int = 32, seed=None) -> None:
        require(sigma >= 1, "alphabet size must be >= 1")
        require(length >= 1, "digit-string length must be >= 1")
        self.sigma = int(sigma)
        self.length = int(length)
        rng = make_rng(seed)
        seeds = rng.integers(0, 2**31 - 1, size=self.length)
        self._functions = [KWiseHash(independence, seed=int(s)) for s in seeds]

    def digits(self, name: Hashable) -> Tuple[int, ...]:
        """The full digit string ``h(name)`` of length ``length``."""
        return tuple(f.value(name) % self.sigma for f in self._functions)

    def prefix(self, name: Hashable, j: int) -> Tuple[int, ...]:
        """The first ``j`` digits of ``h(name)``."""
        require(0 <= j <= self.length, f"prefix length {j} out of range")
        return self.digits(name)[:j]

    def storage_bits(self) -> int:
        """Bits to store the function family."""
        return sum(f.storage_bits() for f in self._functions)

    def digit_bits(self) -> int:
        """Bits per stored digit."""
        return bits_for_count(max(self.sigma - 1, 1))

    def max_prefix_load(self, names: Sequence[Hashable], j: int) -> int:
        """Largest number of ``names`` sharing one length-``j`` prefix (diagnostic)."""
        from collections import Counter

        counts = Counter(self.prefix(name, j) for name in names)
        return max(counts.values()) if counts else 0


class BucketHash:
    """Hash names into ``num_buckets`` buckets (Lemma 7 dictionary distribution)."""

    def __init__(self, num_buckets: int, independence: int = 8, seed=None) -> None:
        require(num_buckets >= 1, "need at least one bucket")
        self.num_buckets = int(num_buckets)
        self._f = KWiseHash(independence, seed=seed)

    def bucket(self, name: Hashable) -> int:
        """Bucket index of ``name`` in ``[0, num_buckets)``."""
        return self._f.value(name) % self.num_buckets

    def storage_bits(self) -> int:
        """Bits to store the function."""
        return self._f.storage_bits() + bits_for_count(self.num_buckets)

    def __call__(self, name: Hashable) -> int:
        return self.bucket(name)
