"""Hashing substrate (Carter–Wegman universal hashing, name→digit hashing)."""

from repro.hashing.universal import KWiseHash, DigitHash, BucketHash

__all__ = ["KWiseHash", "DigitHash", "BucketHash"]
