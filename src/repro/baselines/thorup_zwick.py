"""Thorup–Zwick labeled compact routing (stretch ``4k-5``, ``Õ(n^{1/k})`` space) [29, 30].

Construction (the distance-oracle hierarchy):

* levels ``A_0 = V ⊇ A_1 ⊇ ... ⊇ A_{k-1}``, each sampled from the previous
  with probability ``n^{-1/k}`` (``A_k = ∅``);
* pivots ``p_i(v)`` — the closest member of ``A_i`` to ``v``;
* clusters ``C_i(w) = { v : d(w, v) < d(v, A_{i+1}) }`` for ``w`` of level
  ``i`` (for the top level the cluster is the whole graph);
* for every level-``i`` landmark ``w``, a shortest-path tree spanning
  ``C_i(w)`` carries a Lemma 5 labeled tree-routing structure; every node
  stores its table for every cluster tree it belongs to (the TZ sampling
  argument bounds the expected number of such trees by ``O(k n^{1/k})``);
* the label of ``v`` lists, for every level ``i``, the pivot ``p_i(v)`` and
  ``v``'s tree-routing label inside ``T(p_i(v))``.

Routing ``u → v`` tries levels ``i = 0, 1, ...`` in order and uses the first
level whose pivot tree contains both endpoints: the walk is the tree path
``u → v`` inside ``T(p_i(v))``.  The top level always works, and the standard
TZ analysis bounds the resulting stretch by ``4k - 5`` (``2k - 1`` with
handshaking); the measured stretch is reported by the benches.

This is a *labeled* scheme: the sender must know the destination's label,
which is exactly the model the paper argues is impractical (Section 1).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.construction.context import BuildContext, SPTJob, scalar_build_mode
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (DistanceOracle, exact_distance_oracle,
                                          shortest_path_tree)
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.trees.compact_labeled import CompactTreeRouting
from repro.utils.bitsize import bits_for_id
from repro.utils.rng import make_rng
from repro.utils.validation import require


class ThorupZwickRouting(RoutingSchemeInstance):
    """Labeled hierarchy with stretch ``4k-5``."""

    scheme_name = "thorup-zwick"
    labeled = True

    def __init__(self, graph: WeightedGraph, k: int = 2,
                 oracle: Optional[DistanceOracle] = None,
                 seed=None, name_bits: int = 64,
                 context: Optional[BuildContext] = None) -> None:
        super().__init__(graph)
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        self._build_seed = seed  # kept for rebuild_spec / churn repair
        rng = make_rng(seed)
        n = graph.n

        # levels A_0 ⊇ A_1 ⊇ ... ⊇ A_{k-1}; A_k = ∅
        probability = (max(n, 2)) ** (-1.0 / self.k)
        levels: List[List[int]] = [list(range(n))]
        for _ in range(1, self.k):
            previous = levels[-1]
            kept = [v for v in previous if rng.random() < probability]
            if not kept:
                kept = [previous[0]]
            levels.append(kept)
        self.levels = levels

        self._build(context or BuildContext(graph, oracle=self.oracle, seed=seed))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _level_structure(self) -> Tuple[List[List[int]], np.ndarray]:
        """Pivots per level and distance-to-level rows for the current graph.

        Vectorized: one row block per level instead of an oracle.dist call
        per (node, member) pair.  Level 0 is all of V: every node is its own
        pivot at distance 0 (edge weights are strictly positive), so no rows
        are needed — this matters on the lazy backend, where fetching rows
        for all n level-0 members would materialize the very O(n²) block the
        backend avoids.
        """
        n, k, oracle = self.graph.n, self.k, self.oracle
        pivot: List[List[int]] = [[0] * n for _ in range(k)]
        dist_to_level = np.full((k + 1, n), np.inf)
        pivot[0] = list(range(n))
        dist_to_level[0] = 0.0
        for i in range(1, k):
            ids, dists = oracle.nearest_member(self.levels[i])
            pivot[i] = ids.tolist()
            dist_to_level[i] = dists
        # dist_to_level[k] stays +inf: the top clusters span everything
        return pivot, dist_to_level

    def _iter_used_clusters(self, pivot: List[List[int]], dist_to_level: np.ndarray):
        """Yield ``((i, w), root_row, members)`` for every routable cluster tree.

        Only landmarks that are someone's pivot are yielded (those are what
        routing can actually touch); root rows come one batched fetch per
        chunk.  A member needs ``d(w, v) < d(v, A_{i+1})``, so on a backend
        that computes rows on demand the fetch is a *radius-limited* kernel
        call per chunk (limit = the level's largest ``d(·, A_{i+1})``):
        level-0 rows become local searches instead of full-graph Dijkstras.
        Entries beyond the limit come back ``inf``, which the strict
        ``<`` membership test excludes anyway — identical members either way.
        """
        n, k, oracle = self.graph.n, self.k, self.oracle
        used: List[Tuple[int, int]] = sorted({(i, pivot[i][v])
                                              for i in range(k) for v in range(n)})
        limited = oracle.backend_name == "lazy" and self.graph.num_edges > 0
        csr = self.graph.to_scipy_csr() if limited else None
        limits = np.full(k + 1, np.inf)
        if limited:
            for i in range(k + 1):
                level = dist_to_level[i]
                if np.isfinite(level).all():
                    # a node with d(·, A_i) = inf could join a cluster at any
                    # distance, so only an everywhere-finite level is bounded
                    limits[i] = float(level.max())
        block = oracle.block_rows()
        for start in range(0, len(used), block):
            chunk = used[start:start + block]
            if limited:
                from repro.construction.context import limited_dijkstra

                limit = float(max(limits[i + 1] for i, _ in chunk))
                chunk_rows = limited_dijkstra(csr, [w for _, w in chunk], limit)
            else:
                chunk_rows = oracle.rows([w for _, w in chunk])
            for (i, w), row_w in zip(chunk, chunk_rows):
                members = [int(v) for v in
                           np.where(row_w < dist_to_level[i + 1] - 1e-12)[0]]
                members.append(w)
                yield (i, w), row_w, members

    def _build(self, context: BuildContext) -> None:
        n, k = self.graph.n, self.k
        self.pivot, dist_to_level = self._level_structure()
        self._trees: Dict[Tuple[int, int], CompactTreeRouting] = {}
        self._members: Dict[Tuple[int, int], frozenset] = {}
        if scalar_build_mode():
            for (i, w), _, members in self._iter_used_clusters(self.pivot,
                                                               dist_to_level):
                self._build_cluster_tree(i, w, members)
        else:
            # batched forest: one kernel call per chunk of cluster roots, each
            # call limited to its chunk's farthest member — small low-level
            # clusters become local searches instead of full-graph Dijkstras
            jobs: List[SPTJob] = []
            keys: List[Tuple[Tuple[int, int], frozenset]] = []
            for (i, w), row_w, members in self._iter_used_clusters(self.pivot,
                                                                   dist_to_level):
                member_list = sorted(set(members))
                limit = float(row_w[member_list].max()) if member_list else 0.0
                jobs.append(SPTJob(w, member_list, limit))
                keys.append(((i, w), frozenset(members)))
            for (key, member_set), tree in zip(keys, context.spt_trees(jobs)):
                routing = CompactTreeRouting(tree, k=max(self.k, 2))
                self._trees[key] = routing
                self._members[key] = member_set
            self.tables.charge_structures(
                "cluster_tree_tables",
                ((r.tree.nodes, r.table_bits_list())
                 for r in self._trees.values()))
        landmark_bits = bits_for_id(max(n, 2))
        for v in range(n):
            self.tables[v].charge("pivot_pointers", landmark_bits, count=k)

    def _build_cluster_tree(self, i: int, w: int, members: List[int]) -> None:
        tree = shortest_path_tree(self.graph, w, members=sorted(set(members)))
        routing = CompactTreeRouting(tree, k=max(self.k, 2))
        self._trees[(i, w)] = routing
        self._members[(i, w)] = frozenset(members)
        for v, bits in zip(tree.nodes, routing.table_bits_list()):
            self.tables[v].charge("cluster_tree_tables", bits)

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #
    def maintain(self, delta=None):
        """Incremental repair: rebuild only the cluster trees churn dirtied.

        The level sampling is a property of the node set, so it survives any
        edge churn; pivots and cluster memberships are recomputed from fresh
        distance rows (vectorized, C-speed), and a cluster tree is rebuilt
        only when its member set changed or the old tree stopped being a
        shortest-path tree under the new weights (``tree_is_intact``).  A
        reused tree keeps its ``CompactTreeRouting`` labels *and* its cached
        forwarding slot arrays, so the recompiled :class:`TreeBank` re-slots
        only the dirtied trees.
        """
        import time

        from repro.dynamics.repair import RepairReport, full_rebuild, tree_is_intact
        from repro.routing.table import TableCollection

        if delta is None:
            return full_rebuild(self, delta)
        start = time.perf_counter()
        n, k = self.graph.n, self.k
        old_trees, old_members = self._trees, self._members
        self.pivot, dist_to_level = self._level_structure()
        self._trees, self._members = {}, {}
        self.tables = TableCollection(n)
        rebuilt = reused = 0
        # classify first, then grow every dirtied tree in one batched SPT
        # forest (same chunked, radius-limited kernel path as _build); dict
        # insertion order is preserved via placeholders
        jobs: List[SPTJob] = []
        pending: List[Tuple[Tuple[int, int], frozenset]] = []
        for (i, w), row_w, members in self._iter_used_clusters(self.pivot,
                                                               dist_to_level):
            member_set = frozenset(members)
            old = old_trees.get((i, w))
            if (old is not None and old_members.get((i, w)) == member_set
                    and tree_is_intact(self.graph, old.tree, row_w)):
                self._trees[(i, w)] = old
                self._members[(i, w)] = member_set
                for v, bits in zip(old.tree.nodes, old.table_bits_list()):
                    self.tables[v].charge("cluster_tree_tables", bits)
                reused += 1
            else:
                member_list = sorted(set(members))
                limit = float(row_w[member_list].max()) if member_list else 0.0
                jobs.append(SPTJob(w, member_list, limit))
                pending.append(((i, w), member_set))
                self._trees[(i, w)] = None  # placeholder keeps cluster order
                rebuilt += 1
        if jobs:
            context = BuildContext(self.graph, oracle=self.oracle)
            for (key, member_set), tree in zip(pending, context.spt_trees(jobs)):
                routing = CompactTreeRouting(tree, k=max(self.k, 2))
                self._trees[key] = routing
                self._members[key] = member_set
                for v, bits in zip(tree.nodes, routing.table_bits_list()):
                    self.tables[v].charge("cluster_tree_tables", bits)
        landmark_bits = bits_for_id(max(n, 2))
        for v in range(n):
            self.tables[v].charge("pivot_pointers", landmark_bits, count=k)
        stale_program = getattr(self, "_compiled_program", None)
        if stale_program is not None:
            # a holder routing on the pre-repair program keeps consistent
            # (stale) state; its derived caches must still be dropped so a
            # post-repair replay through the same object cannot resolve
            # entries against pre-repair slot/column snapshots
            stale_program.invalidate_caches()
        self._compiled_program = None  # replan over the patched tree set
        return RepairReport(
            scheme=self.scheme_name, strategy="incremental",
            seconds=time.perf_counter() - start,
            rebuilt_trees=rebuilt, reused_trees=reused)

    # ------------------------------------------------------------------ #
    # labels
    # ------------------------------------------------------------------ #
    def label_bits(self, node: int) -> int:
        """Label = (pivot id + tree label) for each of the k levels."""
        total = 0
        for i in range(self.k):
            w = self.pivot[i][node]
            routing = self._trees[(i, w)]
            total += bits_for_id(max(self.graph.n, 2))
            if routing.tree.contains(node):
                total += routing.label_bits(node)
        return total

    # ------------------------------------------------------------------ #
    # compiled forwarding
    # ------------------------------------------------------------------ #
    def compile_forwarding(self):
        """Compile every pivot cluster tree into one tree bank.

        Planning replays the level/pivot selection of :meth:`route` (pure
        dict/membership checks); the single resulting leg is the unique tree
        path to the destination, which is exactly the scalar walk.
        """
        from repro.routing.forwarding import (ForwardingProgram, PacketPlan,
                                              TreeBank, tree_leg)

        bank = TreeBank(self.graph.n)
        tree_id_of = {key: bank.add(routing.tree)
                      for key, routing in self._trees.items()}
        header = self.header_bits()

        def plan(source: int, destination: int) -> PacketPlan:
            if source == destination:
                return PacketPlan([], "thorup-zwick", 0)
            for i in range(self.k):
                for w in (self.pivot[i][destination], self.pivot[i][source]):
                    routing = self._trees.get((i, w))
                    if routing is None:
                        continue
                    if routing.tree.contains(source) and routing.tree.contains(destination):
                        leg = tree_leg(tree_id_of[(i, w)], destination,
                                       "thorup-zwick", i + 1, terminal=True)
                        return PacketPlan([leg], "thorup-zwick", 0)
            return PacketPlan([], "thorup-zwick", 0)

        return ForwardingProgram(self.graph, plan, bank=bank,
                                 header_bits=header, label="thorup-zwick")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Use the lowest level whose pivot cluster tree contains both endpoints."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="thorup-zwick")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        if not self.graph.has_name(destination_name):
            return result
        destination = self.graph.index_of(destination_name)

        for i in range(self.k):
            # mirror the TZ query's side-alternation: a level is usable if either
            # endpoint's pivot cluster tree contains both endpoints
            for w in (self.pivot[i][destination], self.pivot[i][source]):
                routing = self._trees.get((i, w))
                if routing is None:
                    continue
                if routing.tree.contains(source) and routing.tree.contains(destination):
                    walk, cost = routing.walk(source, destination)
                    result.extend(walk)
                    result.cost += cost
                    result.found = result.path[-1] == destination
                    result.phases_used = i + 1
                    return result
        return result

    def header_bits(self) -> int:
        """Header carries the destination label of the level in use."""
        tree_label = max((t.header_bits() for t in self._trees.values()), default=0)
        return self.name_bits + bits_for_id(max(self.graph.n, 2)) + tree_label
