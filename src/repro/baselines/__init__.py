"""Baseline routing schemes the paper compares against (Sections 1 and 1.3).

* :class:`ShortestPathRouting` — the trivial stretch-1 solution with
  ``Ω(n log n)``-bit tables (§1).
* :class:`CowenRouting` — the classic stretch-3 *labeled* scheme
  (Cowen [13] / Thorup–Zwick [29]).
* :class:`ThorupZwickRouting` — the labeled ``Õ(n^{1/k})``-space hierarchy
  with stretch ``4k-5`` [29, 30].
* :class:`AwerbuchPelegRouting` — name-independent hierarchical routing with
  sparse covers at *every* scale ``2^i`` for ``i <= log Δ`` [9, 10, 3]:
  stretch ``O(k)`` but space growing with ``log Δ`` (not scale-free).
* :class:`ExponentialStretchRouting` — a representative of the prior
  scale-free random-sampling schemes [7, 8, 6] whose stretch grows
  super-linearly in ``k``.
"""

from repro.baselines.shortest_path import ShortestPathRouting
from repro.baselines.cowen import CowenRouting
from repro.baselines.thorup_zwick import ThorupZwickRouting
from repro.baselines.awerbuch_peleg import AwerbuchPelegRouting
from repro.baselines.exponential_stretch import ExponentialStretchRouting

__all__ = [
    "ShortestPathRouting",
    "CowenRouting",
    "ThorupZwickRouting",
    "AwerbuchPelegRouting",
    "ExponentialStretchRouting",
]
