"""Shortest-path routing with full tables (the trivial stretch-1 scheme).

Every node stores, for every destination *name*, the local port of the next
hop on a shortest path — ``(n-1)`` entries of ``Θ(log n)`` bits each, i.e.
``Ω(n log n)`` bits per node.  The paper's Section 1 uses this scheme as the
motivation for compact routing: perfect stretch, unacceptable space.

Construction is array-native: one chunked multi-source Dijkstra pass (one
kernel call per block of destinations) fills an ``(n, n)`` int32 next-hop
matrix column by column — the predecessor of ``x`` on the path *from* the
destination is exactly ``x``'s next hop *toward* it.  The matrix doubles as
the compiled forwarding table
(:class:`~repro.routing.forwarding.DenseNextHopTable` wraps the same array),
so compiling is free and churn repair patches scheme and engine state with
one write.  ``REPRO_BUILD_MODE=scalar`` rebuilds through the original
per-destination Python-heap Dijkstra loop for the build-parity tests.
"""

from __future__ import annotations

import os
from typing import Hashable, Optional

import numpy as np

from repro.construction.context import BuildContext, scalar_build_mode
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, dijkstra, exact_distance_oracle
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.storage import alloc_array, memory_budget
from repro.utils.bitsize import bits_for_id


def sp_block_size(n: int) -> int:
    """Destinations per multi-source Dijkstra call in the blocked build.

    ``REPRO_SP_BLOCK`` overrides directly.  The default is budget-aware:
    one in-flight block costs ~``n * 12`` bytes per destination (float64
    distance row + int32 predecessor row), and the cap keeps that slab
    under a quarter of ``REPRO_MEMORY_BUDGET`` so the (possibly
    memmapped) next-hop matrix stays the only full-size object in play.
    """
    raw = os.environ.get("REPRO_SP_BLOCK", "").strip()
    if raw:
        return max(int(raw), 1)
    budget = memory_budget()
    slab = (4 << 30) if budget is None else budget // 4
    per_dest = max(n, 1) * 12
    return int(min(4096, max(64, slab // per_dest)))


class ShortestPathRouting(RoutingSchemeInstance):
    """Stretch-1 routing with per-destination next-hop tables."""

    scheme_name = "shortest-path"
    labeled = False

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None,
                 name_bits: int = 64,
                 context: Optional[BuildContext] = None) -> None:
        super().__init__(graph)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        self._context = context
        #: next_hop[u, v] = neighbor of u on a shortest u→v path (-1 absent);
        #: memmap-backed above the REPRO_MEMORY_BUDGET (40 GB at n=100k)
        self._next_hop: np.ndarray = alloc_array((graph.n, graph.n), np.int32,
                                                 fill=-1)
        if scalar_build_mode():
            counts = self._build_scalar()
        else:
            counts = self._build()
        self._charge_tables(counts)

    def _build(self) -> np.ndarray:
        """Fill the next-hop matrix with one kernel call per destination block.

        Returns the per-source entry counts, accumulated from the same
        predecessor blocks the build streams — the space accounting then
        never has to re-read the (possibly memmapped) matrix.
        """
        graph = self.graph
        counts = np.zeros(graph.n, dtype=np.int64)
        if graph.num_edges == 0:
            return counts
        from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

        csr = graph.to_scipy_csr()
        block = sp_block_size(graph.n)
        for start in range(0, graph.n, block):
            targets = np.arange(start, min(start + block, graph.n))
            pred = _scipy_dijkstra(csr, directed=False, indices=targets,
                                   return_predecessors=True)[1]
            pred = np.atleast_2d(pred)
            # pred[t, x] = node before x on the path from t, i.e. x's next hop
            # toward t; sources with no path (and t itself) stay -1
            self._next_hop[:, targets] = np.where(pred < 0, -1, pred).T
            counts += (pred >= 0).sum(axis=0)
        return counts

    def _build_scalar(self) -> np.ndarray:
        """Original per-destination Python-heap loop (build-parity reference)."""
        graph = self.graph
        counts = np.zeros(graph.n, dtype=np.int64)
        for target in range(graph.n):
            # A single Dijkstra from the *destination* gives every source's
            # next hop at once (the parent pointer points toward the target).
            dist, parent = dijkstra(graph, target)
            reachable = np.isfinite(dist) & (parent >= 0)
            self._next_hop[reachable, target] = parent[reachable]
            counts[reachable] += 1
        return counts

    def _charge_tables(self, counts: Optional[np.ndarray] = None) -> None:
        graph = self.graph
        port_bits = bits_for_id(max(graph.max_degree(), 1)) if graph.num_edges else 1
        if counts is None:
            counts = self._entry_counts()
        for u in range(graph.n):
            self.tables[u].charge("next_hop_entries", self.name_bits + port_bits,
                                  count=int(counts[u]))

    def _entry_counts(self) -> np.ndarray:
        """Per-source live-entry counts, row-blocked so the comparison
        temporary stays ~256 MB rather than a full n×n bool (10 GB at
        n=100k, defeating the memory budget)."""
        n = self.graph.n
        counts = np.empty(n, dtype=np.int64)
        block = max(1, (1 << 28) // max(n, 1))
        for start in range(0, n, block):
            stop = min(start + block, n)
            counts[start:stop] = (self._next_hop[start:stop] >= 0).sum(axis=1)
        return counts

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #
    def maintain(self, delta=None):
        """Incremental repair: revalidate entries, recompute dirty columns only.

        Every ``(source, destination)`` next-hop entry is checked against
        fresh shortest-path distances with array gathers — an entry ``x -> p``
        toward ``t`` survives iff the edge ``(x, p)`` still exists and
        ``w(x, p) + d(p, t) == d(x, t)``.  A destination is *dirty* (full
        column recompute by one vectorized multi-source Dijkstra) only when a
        still-connected pair needs rerouting; columns whose only damage is
        entries from now-disconnected sources are pruned without any
        Dijkstra.  Scheme state and compiled forwarding program share the
        same next-hop matrix, so one column write repairs both — the
        forwarding program survives the event batch.  Cost: ``O(entries)``
        array work plus Dijkstras for dirty destinations only, versus one
        Dijkstra per destination for a full rebuild.
        """
        import time as _time

        from repro.dynamics.repair import RepairReport, full_rebuild

        if delta is None:
            return full_rebuild(self, delta)
        start = _time.perf_counter()
        graph, oracle = self.graph, self.oracle
        n = graph.n
        table = self.compiled_forwarding().tables[0]
        keys, hops = table.entries()
        sources_of = keys // n
        dests_of = keys % n

        # 1. classify every entry with one CSR gather for the edge weights and
        #    two batched pair-distance gathers (dense: direct matrix fancy
        #    index; lazy: per-destination grouped row streaming inside
        #    ``pair_distances``):
        #    valid        — edge alive and still on a shortest path;
        #    reroutable   — broken, but source and destination stay connected
        #                   (the column needs a fresh Dijkstra);
        #    the rest     — source fell off the component: delete-only.
        if keys.size:
            csr = graph.to_scipy_csr()
            edge_w = np.asarray(csr[sources_of, hops]).ravel() if graph.num_edges \
                else np.zeros(keys.size)
            d_x = oracle.pair_distances(dests_of, sources_of)
            d_p = oracle.pair_distances(dests_of, hops)
            reachable = np.isfinite(d_x)
            valid = (edge_w > 0.0) & reachable & np.isclose(
                edge_w + d_p, d_x, rtol=1e-9, atol=1e-9)
        else:
            valid = np.zeros(0, dtype=bool)
            reachable = np.zeros(0, dtype=bool)

        # 2. dirty destinations (full column recompute): a broken entry whose
        #    endpoints are still connected, or a valid-entry count that no
        #    longer matches the component size (reachability appeared).
        #    Columns whose only problem is entries from now-disconnected
        #    sources are merely *pruned* — no Dijkstra needed.
        comp = graph.component_ids()
        comp_sizes = np.bincount(comp)
        expected = comp_sizes[comp] - 1
        valid_counts = np.bincount(dests_of[valid], minlength=n) if keys.size \
            else np.zeros(n, dtype=np.int64)
        broken = ~valid & reachable
        broken_counts = np.bincount(dests_of[broken], minlength=n) if keys.size \
            else np.zeros(n, dtype=np.int64)
        stale = ~valid & ~reachable
        stale_counts = np.bincount(dests_of[stale], minlength=n) if keys.size \
            else np.zeros(n, dtype=np.int64)
        dirty_mask = (valid_counts != expected) | (broken_counts > 0)
        dirty = np.flatnonzero(dirty_mask)
        prune = np.flatnonzero(~dirty_mask & (stale_counts > 0))

        # adaptive bail-out: when churn dirtied (nearly) every column, the
        # per-column patching machinery cannot beat the vectorized full
        # rebuild it would effectively replicate — classification was cheap,
        # so hand the batch to the scratch path instead.  The floor keeps
        # small instances on the incremental path, where patching is
        # never the bottleneck.
        if dirty.size >= max(64, int(0.8 * n)):
            return full_rebuild(self, delta)

        # prune-only columns: drop the disconnected sources' entries, keep the
        # (provably still optimal) rest
        pruned = 0
        if prune.size:
            prune_mask = np.zeros(n, dtype=bool)
            prune_mask[prune] = True
            keep = valid & prune_mask[dests_of]
            table.replace_destinations(prune.tolist(), keys[keep], hops[keep])
            pruned = int(np.count_nonzero(stale & prune_mask[dests_of]))

        # 3. recompute the dirty columns with one vectorized kernel call; the
        #    write patches the scheme matrix and the compiled table at once
        patched = 0
        if dirty.size:
            from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

            pred_block = np.atleast_2d(_scipy_dijkstra(
                graph.to_scipy_csr(), directed=False, indices=dirty,
                return_predecessors=True)[1])
            new_keys = []
            new_hops = []
            for local, t in enumerate(dirty.tolist()):
                pred = pred_block[local]
                reach = np.flatnonzero(pred >= 0)
                new_keys.append(reach * n + t)
                new_hops.append(pred[reach])
            patched = table.replace_destinations(
                dirty.tolist(),
                np.concatenate(new_keys) if new_keys else np.zeros(0, dtype=np.int64),
                np.concatenate(new_hops) if new_hops else np.zeros(0, dtype=np.int64))
        if dirty.size or prune.size:
            # re-account the per-node space charge
            port_bits = bits_for_id(max(graph.max_degree(), 1)) \
                if graph.num_edges else 1
            counts = self._entry_counts()
            for u in range(n):
                self.tables[u].recharge("next_hop_entries",
                                        self.name_bits + port_bits,
                                        count=int(counts[u]))
        # the live program was patched in place (its dense table shares the
        # scheme's next-hop matrix): drop every derived lookup cache so the
        # next batch rebuilds them from the repaired columns
        self.compiled_forwarding().invalidate_caches()
        return RepairReport(
            scheme=self.scheme_name, strategy="incremental",
            seconds=_time.perf_counter() - start,
            patched_entries=int(patched),
            dirty_destinations=int(dirty.size),
            details={"checked_entries": int(keys.size),
                     "pruned_entries": int(pruned)})

    def compile_forwarding(self):
        """Wrap the next-hop matrix as a dense compiled table (zero copy)."""
        from repro.routing.forwarding import (DenseNextHopTable,
                                              ForwardingProgram, PacketPlan,
                                              table_leg)
        from repro.routing.forwarding import LEG_TABLE
        from repro.routing.kernels import BatchPlans

        table = DenseNextHopTable(self._next_hop)
        header = self.header_bits()
        # only two distinct plans exist; share the (immutable) objects
        self_plan = PacketPlan([], "shortest-path", 0)
        table_plan = PacketPlan([table_leg(0, "shortest-path", 1)], "shortest-path", 0)

        def plan(source: int, destination: int) -> PacketPlan:
            return self_plan if source == destination else table_plan

        def plan_batch(src: np.ndarray, dst: np.ndarray) -> BatchPlans:
            # vectorized sibling of ``plan``: one table leg per non-self pair
            num = int(src.size)
            counts = (src != dst).astype(np.int64)
            leg_lo = np.concatenate(([0], np.cumsum(counts)[:-1])) if num \
                else np.zeros(0, dtype=np.int64)
            total = int(counts.sum())
            return BatchPlans(
                num=num,
                leg_kind=np.full(total, LEG_TABLE, dtype=np.int8),
                leg_a=np.zeros(total, dtype=np.int64),
                leg_b=np.full(total, -1, dtype=np.int64),
                leg_strategy=np.zeros(total, dtype=np.int64),
                leg_phases=np.ones(total, dtype=np.int64),
                leg_terminal=np.zeros(total, dtype=bool),
                leg_lo=leg_lo, leg_hi=leg_lo + counts,
                out_strategy=np.zeros(num, dtype=np.int64),
                out_phases=np.zeros(num, dtype=np.int64),
                strategy_names=["shortest-path"],
                header_bits=np.full(num, header, dtype=np.int64))

        return ForwardingProgram(self.graph, plan, tables=[table],
                                 header_bits=header, label="shortest-path",
                                 batch_planner=plan_batch)

    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Follow the per-hop shortest-path tables."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="shortest-path")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        if not self.graph.has_name(destination_name):
            return result
        destination = self.graph.index_of(destination_name)
        current = source
        for _ in range(self.graph.n + 1):
            nxt = int(self._next_hop[current, destination])
            if nxt < 0:
                return result
            result.cost += self.graph.edge_weight(current, nxt)
            result.path.append(nxt)
            current = nxt
            if current == destination:
                result.found = True
                result.phases_used = 1
                return result
        return result

    def header_bits(self) -> int:
        """Only the destination name travels in the header."""
        return self.name_bits
