"""Shortest-path routing with full tables (the trivial stretch-1 scheme).

Every node stores, for every destination *name*, the local port of the next
hop on a shortest path — ``(n-1)`` entries of ``Θ(log n)`` bits each, i.e.
``Ω(n log n)`` bits per node.  The paper's Section 1 uses this scheme as the
motivation for compact routing: perfect stretch, unacceptable space.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, dijkstra, exact_distance_oracle
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.utils.bitsize import bits_for_id


class ShortestPathRouting(RoutingSchemeInstance):
    """Stretch-1 routing with per-destination next-hop tables."""

    scheme_name = "shortest-path"
    labeled = False

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None,
                 name_bits: int = 64) -> None:
        super().__init__(graph)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        #: next_hop[u][name of v] = neighbor of u on a shortest u→v path
        self._next_hop: list[Dict[Hashable, int]] = [dict() for _ in range(graph.n)]
        self._build()

    def _build(self) -> None:
        graph = self.graph
        port_bits = bits_for_id(max(graph.max_degree(), 1)) if graph.num_edges else 1
        for target in range(graph.n):
            # A single Dijkstra from the *destination* gives every source's
            # next hop at once (the parent pointer points toward the target).
            dist, parent = dijkstra(graph, target)
            name = graph.name_of(target)
            for source in range(graph.n):
                if source == target or not np.isfinite(dist[source]):
                    continue
                self._next_hop[source][name] = int(parent[source])
        for u in range(graph.n):
            self.tables[u].charge("next_hop_entries", self.name_bits + port_bits,
                                  count=len(self._next_hop[u]))

    def compile_forwarding(self):
        """Compile the next-hop dicts into one sorted (node, dest) key table."""
        from repro.routing.forwarding import (ForwardingProgram, NextHopTable,
                                              PacketPlan, table_leg)

        table = NextHopTable.from_name_dicts(self.graph, self._next_hop)
        header = self.header_bits()
        # only two distinct plans exist; share the (immutable) objects
        self_plan = PacketPlan([], "shortest-path", 0)
        table_plan = PacketPlan([table_leg(0, "shortest-path", 1)], "shortest-path", 0)

        def plan(source: int, destination: int) -> PacketPlan:
            return self_plan if source == destination else table_plan

        return ForwardingProgram(self.graph, plan, tables=[table],
                                 header_bits=header, label="shortest-path")

    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Follow the per-hop shortest-path tables."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="shortest-path")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        current = source
        for _ in range(self.graph.n + 1):
            nxt = self._next_hop[current].get(destination_name)
            if nxt is None:
                return result
            result.cost += self.graph.edge_weight(current, nxt)
            result.path.append(nxt)
            current = nxt
            if self.graph.name_of(current) == destination_name:
                result.found = True
                result.phases_used = 1
                return result
        return result

    def header_bits(self) -> int:
        """Only the destination name travels in the header."""
        return self.name_bits
