"""Shortest-path routing with full tables (the trivial stretch-1 scheme).

Every node stores, for every destination *name*, the local port of the next
hop on a shortest path — ``(n-1)`` entries of ``Θ(log n)`` bits each, i.e.
``Ω(n log n)`` bits per node.  The paper's Section 1 uses this scheme as the
motivation for compact routing: perfect stretch, unacceptable space.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, dijkstra, exact_distance_oracle
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.utils.bitsize import bits_for_id


class ShortestPathRouting(RoutingSchemeInstance):
    """Stretch-1 routing with per-destination next-hop tables."""

    scheme_name = "shortest-path"
    labeled = False

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None,
                 name_bits: int = 64) -> None:
        super().__init__(graph)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        #: next_hop[u][name of v] = neighbor of u on a shortest u→v path
        self._next_hop: list[Dict[Hashable, int]] = [dict() for _ in range(graph.n)]
        self._build()

    def _build(self) -> None:
        graph = self.graph
        port_bits = bits_for_id(max(graph.max_degree(), 1)) if graph.num_edges else 1
        for target in range(graph.n):
            # A single Dijkstra from the *destination* gives every source's
            # next hop at once (the parent pointer points toward the target).
            dist, parent = dijkstra(graph, target)
            name = graph.name_of(target)
            for source in range(graph.n):
                if source == target or not np.isfinite(dist[source]):
                    continue
                self._next_hop[source][name] = int(parent[source])
        for u in range(graph.n):
            self.tables[u].charge("next_hop_entries", self.name_bits + port_bits,
                                  count=len(self._next_hop[u]))

    # ------------------------------------------------------------------ #
    # dynamic maintenance
    # ------------------------------------------------------------------ #
    def maintain(self, delta=None):
        """Incremental repair: revalidate entries, recompute dirty columns only.

        Every compiled ``(source, destination)`` next-hop entry is checked
        against fresh shortest-path distances with array gathers — an entry
        ``x -> p`` toward ``t`` survives iff the edge ``(x, p)`` still exists
        and ``w(x, p) + d(p, t) == d(x, t)``.  A destination is *dirty* (full
        column recompute by one vectorized multi-source Dijkstra) only when a
        still-connected pair needs rerouting; columns whose only damage is
        entries from now-disconnected sources are pruned without any Dijkstra.
        Both repairs patch the scalar dicts and the live compiled
        :class:`~repro.routing.forwarding.NextHopTable` in place — the
        forwarding program survives the event batch.  Cost: ``O(entries)``
        array work plus Dijkstras for dirty destinations only, versus one
        Python-heap Dijkstra per destination for a full rebuild.
        """
        import time as _time

        from repro.dynamics.repair import RepairReport, full_rebuild

        if delta is None:
            return full_rebuild(self, delta)
        start = _time.perf_counter()
        graph, oracle = self.graph, self.oracle
        n = graph.n
        names = graph.names_view()
        program = self.compiled_forwarding()
        table = program.tables[0]
        keys, hops = table.keys, table.next_hops
        sources_of = keys // n
        dests_of = keys % n

        # 1. classify every entry with one CSR gather for the edge weights and
        #    streamed per-destination rows for the distance checks:
        #    valid        — edge alive and still on a shortest path;
        #    reroutable   — broken, but source and destination stay connected
        #                   (the column needs a fresh Dijkstra);
        #    the rest     — source fell off the component: delete-only.
        if keys.size:
            csr = graph.to_scipy_csr()
            edge_w = np.asarray(csr[sources_of, hops]).ravel() if graph.num_edges \
                else np.zeros(keys.size)
            valid = edge_w > 0.0
            reachable = np.zeros(keys.size, dtype=bool)
            order = np.argsort(dests_of, kind="stable")
            sorted_dests = dests_of[order]
            run_starts = np.flatnonzero(
                np.concatenate(([True], sorted_dests[1:] != sorted_dests[:-1])))
            run_ends = np.concatenate((run_starts[1:], [sorted_dests.size]))
            runs = list(zip(sorted_dests[run_starts].tolist(),
                            run_starts.tolist(), run_ends.tolist()))
            run_of = {t: (lo, hi) for t, lo, hi in runs}
            for chunk in oracle.iter_prefetched_chunks(runs, source=lambda r: r[0]):
                for t, lo, hi in chunk:
                    idx = order[lo:hi]
                    row_t = oracle.row(int(t))
                    d_x = row_t[sources_of[idx]]
                    d_p = row_t[hops[idx]]
                    reachable[idx] = np.isfinite(d_x)
                    valid[idx] &= reachable[idx] & np.isclose(
                        edge_w[idx] + d_p, d_x, rtol=1e-9, atol=1e-9)
        else:
            valid = np.zeros(0, dtype=bool)
            reachable = np.zeros(0, dtype=bool)
            order = np.zeros(0, dtype=np.int64)
            run_of = {}

        # 2. dirty destinations (full column recompute): a broken entry whose
        #    endpoints are still connected, or a valid-entry count that no
        #    longer matches the component size (reachability appeared).
        #    Columns whose only problem is entries from now-disconnected
        #    sources are merely *pruned* — no Dijkstra needed.
        comp = graph.component_ids()
        comp_sizes = np.bincount(comp)
        expected = comp_sizes[comp] - 1
        valid_counts = np.bincount(dests_of[valid], minlength=n) if keys.size \
            else np.zeros(n, dtype=np.int64)
        broken = ~valid & reachable
        broken_counts = np.bincount(dests_of[broken], minlength=n) if keys.size \
            else np.zeros(n, dtype=np.int64)
        stale = ~valid & ~reachable
        stale_counts = np.bincount(dests_of[stale], minlength=n) if keys.size \
            else np.zeros(n, dtype=np.int64)
        dirty_mask = (valid_counts != expected) | (broken_counts > 0)
        dirty = np.flatnonzero(dirty_mask)
        prune = np.flatnonzero(~dirty_mask & (stale_counts > 0))

        # prune-only columns: drop the disconnected sources' entries, keep the
        # (provably still optimal) rest
        pruned = 0
        if prune.size:
            prune_mask = np.zeros(n, dtype=bool)
            prune_mask[prune] = True
            drop = stale & prune_mask[dests_of]
            for x, t in zip(sources_of[drop].tolist(), dests_of[drop].tolist()):
                self._next_hop[x].pop(names[t], None)
            keep = valid & prune_mask[dests_of]
            table.replace_destinations(prune.tolist(), keys[keep], hops[keep])
            pruned = int(np.count_nonzero(drop))

        # 3. recompute the dirty columns with one vectorized kernel call and
        #    patch dicts + compiled table
        patched = 0
        if dirty.size:
            from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

            dist_block, pred_block = _scipy_dijkstra(
                graph.to_scipy_csr(), directed=False, indices=dirty,
                return_predecessors=True)
            dist_block = np.atleast_2d(dist_block)
            pred_block = np.atleast_2d(pred_block)
            all_nodes = np.arange(n)
            new_keys = []
            new_hops = []
            for local, t in enumerate(dirty.tolist()):
                name = names[t]
                row = dist_block[local]
                pred = pred_block[local]
                reach = np.flatnonzero(np.isfinite(row) & (all_nodes != t))
                reach_set = set(reach.tolist())
                # drop old entries of sources that lost reachability to t,
                # locating t's entries via the step-1 run partition
                span = run_of.get(t)
                old_here = order[span[0]:span[1]] if span else order[:0]
                for x in sources_of[old_here].tolist():
                    if x not in reach_set:
                        self._next_hop[x].pop(name, None)
                for x in reach.tolist():
                    self._next_hop[x][name] = int(pred[x])
                new_keys.append(reach * n + t)
                new_hops.append(pred[reach])
            patched = table.replace_destinations(
                dirty.tolist(),
                np.concatenate(new_keys) if new_keys else np.zeros(0, dtype=np.int64),
                np.concatenate(new_hops) if new_hops else np.zeros(0, dtype=np.int64))
        if dirty.size or prune.size:
            # re-account the per-node space charge
            port_bits = bits_for_id(max(graph.max_degree(), 1)) \
                if graph.num_edges else 1
            for u in range(n):
                self.tables[u].recharge("next_hop_entries",
                                        self.name_bits + port_bits,
                                        count=len(self._next_hop[u]))
        return RepairReport(
            scheme=self.scheme_name, strategy="incremental",
            seconds=_time.perf_counter() - start,
            patched_entries=int(patched),
            dirty_destinations=int(dirty.size),
            details={"checked_entries": int(keys.size),
                     "pruned_entries": int(pruned)})

    def compile_forwarding(self):
        """Compile the next-hop dicts into one sorted (node, dest) key table."""
        from repro.routing.forwarding import (ForwardingProgram, NextHopTable,
                                              PacketPlan, table_leg)

        table = NextHopTable.from_name_dicts(self.graph, self._next_hop)
        header = self.header_bits()
        # only two distinct plans exist; share the (immutable) objects
        self_plan = PacketPlan([], "shortest-path", 0)
        table_plan = PacketPlan([table_leg(0, "shortest-path", 1)], "shortest-path", 0)

        def plan(source: int, destination: int) -> PacketPlan:
            return self_plan if source == destination else table_plan

        return ForwardingProgram(self.graph, plan, tables=[table],
                                 header_bits=header, label="shortest-path")

    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Follow the per-hop shortest-path tables."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="shortest-path")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        current = source
        for _ in range(self.graph.n + 1):
            nxt = self._next_hop[current].get(destination_name)
            if nxt is None:
                return result
            result.cost += self.graph.edge_weight(current, nxt)
            result.path.append(nxt)
            current = nxt
            if self.graph.name_of(current) == destination_name:
                result.found = True
                result.phases_used = 1
                return result
        return result

    def header_bits(self) -> int:
        """Only the destination name travels in the header."""
        return self.name_bits
