"""Hierarchical name-independent routing with per-scale sparse covers [9, 10, 3].

This is the *non-scale-free* strategy the paper improves upon: build a tree
cover ``TC_{k, 2^i}(G)`` of the **whole graph** for every scale
``i = 0 .. ceil(log2 Δ)``, equip every cover tree with the Lemma 7
name-independent dictionary, and search scale by scale.  Because the
destination is inside the source's home tree as soon as ``2^i >= d(u, v)``,
the scheme reaches it with cost ``O(k · d(u, v))`` — the same ``O(k)``
stretch as the paper's scheme (this file uses the [3] improvements, matching
the "stretch ``O(k)`` with ``Õ(n^{1/k} log Δ)`` tables" row of Section 1.3).

The essential difference is space: every node participates in ``O(n^{1/k})``
trees *per scale* and there are ``Θ(log Δ)`` scales, so the per-node table
grows with the aspect ratio.  Experiment E3 measures exactly this growth and
contrasts it with the flat curve of the scale-free scheme.
"""

from __future__ import annotations

import math

import numpy as np
from typing import Dict, Hashable, List, Optional

from repro.construction.context import BuildContext
from repro.covers.tree_cover import TreeCover, build_tree_cover
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle, exact_distance_oracle
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.trees.error_reporting import DictionaryTreeRouting
from repro.utils.bitsize import bits_for_count, bits_for_id
from repro.utils.rng import derive_rng
from repro.utils.validation import require


class AwerbuchPelegRouting(RoutingSchemeInstance):
    """Name-independent hierarchical routing whose space scales with ``log Δ``."""

    scheme_name = "awerbuch-peleg"
    labeled = False

    def __init__(self, graph: WeightedGraph, k: int = 2,
                 oracle: Optional[DistanceOracle] = None,
                 seed=None, name_bits: int = 64,
                 context: Optional[BuildContext] = None) -> None:
        super().__init__(graph)
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        self._build_seed = seed  # kept for rebuild_spec / churn repair
        self._build(seed, context or BuildContext(graph, oracle=self.oracle,
                                                  seed=seed))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, seed, context: BuildContext) -> None:
        graph, oracle = self.graph, self.oracle
        d_min = oracle.min_positive_distance()
        diameter = oracle.diameter()
        self.d_min = d_min
        if diameter <= 0:
            self.num_scales = 1
        else:
            self.num_scales = max(1, int(math.ceil(math.log2(diameter / d_min))) + 1)

        names = graph.names_view()

        def build_scale(scale: int):
            """One scale's cover + Lemma 7 structures.

            Seeds derive from (scale, tree index), so the per-scale fan-out of
            ``context.map`` is bit-identical to the serial loop.
            """
            rho = d_min * (2.0 ** scale)
            cover: TreeCover = build_tree_cover(graph, self.k, rho, oracle=oracle,
                                                context=context)
            routings = []
            for t_index, tree in enumerate(cover.trees):
                tree_names = {v: names[v] for v in tree.nodes}
                routings.append(DictionaryTreeRouting(
                    tree, tree_names, name_bits=self.name_bits,
                    seed=derive_rng(seed, scale, t_index)))
            return routings, dict(cover.home)

        built = context.map(build_scale, range(self.num_scales))
        #: scale -> list of Lemma 7 structures, one per cover tree
        self.scales: List[List[DictionaryTreeRouting]] = [r for r, _ in built]
        #: scale -> {node -> index of its home tree}
        self.home: List[Dict[int, int]] = [h for _, h in built]
        self.tables.charge_structures(
            "scale_tree_tables",
            ((routing.tree.nodes, routing.table_bits_list())
             for routings in self.scales for routing in routings))
        scale_bits = bits_for_count(self.num_scales) + bits_for_id(max(graph.n, 2))
        for v in range(graph.n):
            self.tables[v].charge("home_pointers", scale_bits, count=self.num_scales)

    # ------------------------------------------------------------------ #
    # compiled forwarding
    # ------------------------------------------------------------------ #
    def compile_forwarding(self):
        """Compile every scale's cover trees; plan the scale-by-scale search."""
        from repro.routing.forwarding import (ForwardingProgram, PacketPlan,
                                              TreeBank, mark_terminal, tree_leg)

        bank = TreeBank(self.graph.n)
        tree_id_of = {}
        for routings in self.scales:
            for routing in routings:
                tree_id_of[id(routing)] = bank.add(routing.tree)
        names = self.graph.names_view()
        header = self.header_bits()

        def plan(source: int, destination: int) -> PacketPlan:
            if source == destination:
                return PacketPlan([], "awerbuch-peleg", 0)
            target_name = names[destination]
            legs = []
            for scale in range(self.num_scales):
                index = self.home[scale].get(source)
                if index is None:
                    continue
                routing = self.scales[scale][index]
                targets, found, _ = routing.plan_lookup(source, target_name)
                tree = tree_id_of[id(routing)]
                legs.extend(tree_leg(tree, t) for t in targets)
                if found:
                    mark_terminal(legs, "awerbuch-peleg", scale + 1)
                    return PacketPlan(legs, "awerbuch-peleg", 0)
            return PacketPlan(legs, "awerbuch-peleg", self.num_scales)

        return ForwardingProgram(self.graph, plan, bank=bank,
                                 header_bits=header, label="awerbuch-peleg")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Search scale by scale through the source's home trees."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="awerbuch-peleg")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        for scale in range(self.num_scales):
            result.phases_used = scale + 1
            index = self.home[scale].get(source)
            if index is None:
                continue
            routing = self.scales[scale][index]
            lookup = routing.lookup(source, destination_name)
            result.extend(lookup.path)
            result.cost += lookup.cost
            if lookup.found:
                result.found = True
                return result
        return result

    def header_bits(self) -> int:
        """Destination name + scale counter + the Lemma 7 sub-header."""
        sub = max((r.header_bits() for routings in self.scales for r in routings), default=0)
        return self.name_bits + bits_for_count(max(self.num_scales, 1)) + sub
