"""A prior-generation scale-free name-independent scheme (after [7, 8, 6]).

Before this paper, the only *scale-free* name-independent schemes were based
on pure random sampling and paid an exponential price in stretch: with
``Õ(n^{1/k})``-bit tables the best known stretch was ``O(2^k)``
(Awerbuch–Bar-Noy–Linial–Peleg [7, 8], improved to ``O(k^2 2^k)`` by Arias et
al. [6]).  This module implements a representative member of that family so
that experiment E4 can contrast its stretch growth with the linear growth of
the AGM scheme.  It is a stand-in for the family, not a line-by-line
reimplementation of [7] (DESIGN.md §3 item 7).

Construction: ``k+1`` landmark levels ``L_0 = V ⊇ L_1 ⊇ ... ⊇ L_k``
(level ``i`` sampled with probability ``n^{-i/k}``; the top level is forced
to a single landmark per component).  A level-``i`` landmark is responsible
for its ``c · n^{(i+1)/k}`` closest nodes: its shortest-path tree over that
responsibility ball carries a Lemma 7 name-independent dictionary.  A search
from ``u`` asks ``u``'s nearest level-1 landmark, then its nearest level-2
landmark, and so on; each failed level costs a round trip proportional to the
responsibility radius of that level's landmark, radii that are *not*
calibrated to ``d(u, v)`` — which is exactly why the stretch degrades quickly
as ``k`` grows while the table size shrinks.
"""

from __future__ import annotations

import math

import numpy as np
from typing import Dict, Hashable, List, Optional

from repro.construction.context import BuildContext, SPTJob, scalar_build_mode
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (DistanceOracle, exact_distance_oracle,
                                          shortest_path_tree)
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.trees.error_reporting import DictionaryTreeRouting
from repro.utils.bitsize import bits_for_count, bits_for_id
from repro.utils.rng import derive_rng, make_rng
from repro.utils.validation import require


class ExponentialStretchRouting(RoutingSchemeInstance):
    """Random-sampling name-independent routing with super-linear stretch in k."""

    scheme_name = "exponential"
    labeled = False

    def __init__(self, graph: WeightedGraph, k: int = 2,
                 oracle: Optional[DistanceOracle] = None,
                 seed=None, name_bits: int = 64,
                 responsibility_factor: float = 4.0,
                 context: Optional[BuildContext] = None) -> None:
        super().__init__(graph)
        require(k >= 1, f"k must be >= 1, got {k}")
        self.k = int(k)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        self.responsibility_factor = float(responsibility_factor)
        self._build_seed = seed  # kept for rebuild_spec / churn repair
        self._build(seed, context or BuildContext(graph, oracle=self.oracle,
                                                  seed=seed))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, seed, context: BuildContext) -> None:
        graph, oracle = self.graph, self.oracle
        rng = make_rng(seed)
        n = graph.n
        names = graph.names_view()

        # landmark levels L_1 .. L_k (L_0 = V is implicit and unused for trees)
        self.levels: List[List[int]] = []
        current = list(range(n))
        for i in range(1, self.k + 1):
            probability = max(n, 2) ** (-(1.0) / self.k)
            kept = [v for v in current if rng.random() < probability]
            if not kept:
                kept = [current[0]]
            current = kept
            self.levels.append(sorted(current))
        # force the top level to one landmark per component so searches terminate
        components = graph.connected_components()
        top: List[int] = []
        for component in components:
            in_top = [v for v in self.levels[-1] if v in set(component)]
            top.append(min(in_top) if in_top else min(component))
        self.levels[-1] = sorted(set(top))

        # nearest landmark of each level for every node, vectorized (the
        # oracle helper handles the (distance, node-index) tie-break)
        self.nearest: List[List[int]] = []
        for i in range(self.k):
            ids, _ = oracle.nearest_member(self.levels[i])
            self.nearest.append(ids.tolist())

        # responsibility trees with Lemma 7 dictionaries, grown as one batched
        # forest — each (level, landmark) job carries its responsibility ball
        # radius as the kernel limit, so low-level trees stay local searches
        self._tree_key: Dict[tuple, DictionaryTreeRouting] = {}
        jobs: List[SPTJob] = []
        job_keys: List[tuple] = []
        for i in range(self.k):
            count = int(math.ceil(self.responsibility_factor * (max(n, 2) ** ((i + 1) / self.k))))
            if i == self.k - 1:
                count = n  # the top level is responsible for everything
            for chunk in oracle.iter_prefetched_chunks(self.levels[i]):
                for w in chunk:
                    responsibility = oracle.nearest(w, count)
                    limit = float(oracle.row(w)[responsibility].max()) \
                        if responsibility else 0.0
                    jobs.append(SPTJob(w, responsibility, limit))
                    job_keys.append((i, w))
        if scalar_build_mode():
            trees = [shortest_path_tree(graph, job.root, members=job.members)
                     for job in jobs]
        else:
            trees = context.spt_trees(jobs)
        for (i, w), tree in zip(job_keys, trees):
            tree_names = {v: names[v] for v in tree.nodes}
            self._tree_key[(i, w)] = DictionaryTreeRouting(
                tree, tree_names, name_bits=self.name_bits,
                seed=derive_rng(seed, 11, i, w))
        self.tables.charge_structures(
            "responsibility_tables",
            ((r.tree.nodes, r.table_bits_list())
             for r in self._tree_key.values()))
        landmark_bits = bits_for_id(max(n, 2))
        for v in range(n):
            self.tables[v].charge("nearest_landmarks", landmark_bits, count=self.k)

    # ------------------------------------------------------------------ #
    # compiled forwarding
    # ------------------------------------------------------------------ #
    def compile_forwarding(self):
        """Compile the responsibility trees; plan the level-by-level search."""
        from repro.routing.forwarding import (ForwardingProgram, PacketPlan,
                                              TreeBank, mark_terminal, tree_leg)

        bank = TreeBank(self.graph.n)
        tree_id_of = {key: bank.add(routing.tree)
                      for key, routing in self._tree_key.items()}
        names = self.graph.names_view()
        header = self.header_bits()

        def plan(source: int, destination: int) -> PacketPlan:
            if source == destination:
                return PacketPlan([], "exponential", 0)
            target_name = names[destination]
            legs = []
            for i in range(self.k):
                landmark = self.nearest[i][source]
                routing = self._tree_key.get((i, landmark))
                if routing is None or not routing.tree.contains(source):
                    continue
                targets, found, _ = routing.plan_lookup(source, target_name)
                tree = tree_id_of[(i, landmark)]
                legs.extend(tree_leg(tree, t) for t in targets)
                if found:
                    mark_terminal(legs, "exponential", i + 1)
                    return PacketPlan(legs, "exponential", 0)
            return PacketPlan(legs, "exponential", self.k)

        return ForwardingProgram(self.graph, plan, bank=bank,
                                 header_bits=header, label="exponential")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Ask the nearest landmark of each level in turn."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="exponential")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        for i in range(self.k):
            result.phases_used = i + 1
            landmark = self.nearest[i][source]
            routing = self._tree_key.get((i, landmark))
            if routing is None or not routing.tree.contains(source):
                continue
            lookup = routing.lookup(source, destination_name)
            result.extend(lookup.path)
            result.cost += lookup.cost
            if lookup.found:
                result.found = True
                return result
        return result

    def header_bits(self) -> int:
        """Destination name + level counter + the Lemma 7 sub-header."""
        sub = max((r.header_bits() for r in self._tree_key.values()), default=0)
        return self.name_bits + bits_for_count(self.k + 1) + sub
