"""Cowen-style stretch-3 labeled routing ([13], improved by Thorup–Zwick [29]).

Construction:

* a landmark set ``A`` is sampled (each node independently with probability
  ``~ sqrt(ln n / n)``, re-drawn if empty);
* every node ``v`` has a home landmark ``l(v)`` — its nearest member of ``A``;
* the *cluster* of a node ``x`` is ``C(x) = { v : d(x, v) < d(v, A) }``; ``x``
  stores a shortest-path next hop for every member of its cluster.  The
  defining inequality is inherited by every node on the shortest path, which
  is what makes hop-by-hop cluster routing consistent;
* every landmark's shortest-path tree carries a Lemma 5 labeled tree-routing
  structure, and every node stores its table for every landmark tree;
* the label of ``v`` is (identifier of ``l(v)``, tree-routing label of ``v``
  in ``T(l(v))``).

Routing ``u → v``: if ``v`` is in the local cluster table, follow next hops
(every intermediate node also has ``v``); otherwise walk to ``l(v)`` inside
its tree and descend to ``v`` — at most ``2 d(v, l(v)) + d(u, v) <= 3 d(u,v)``
because ``v`` outside ``C(u)`` implies ``d(v, l(v)) <= d(u, v)``.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (DistanceOracle, dijkstra,
                                          exact_distance_oracle, shortest_path_tree)
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.trees.compact_labeled import CompactTreeRouting
from repro.utils.bitsize import bits_for_id
from repro.utils.rng import make_rng
from repro.utils.validation import require


class CowenRouting(RoutingSchemeInstance):
    """Stretch-3 labeled compact routing."""

    scheme_name = "cowen"
    labeled = True

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None,
                 seed=None, name_bits: int = 64,
                 sample_probability: Optional[float] = None) -> None:
        super().__init__(graph)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        self._build_seed = seed  # kept for rebuild_spec / churn repair
        rng = make_rng(seed)
        n = graph.n
        if sample_probability is None:
            sample_probability = min(1.0, math.sqrt(max(math.log(max(n, 2)), 1.0) / max(n, 2)))
        self.sample_probability = sample_probability

        # landmark set (never empty: fall back to node 0)
        landmarks = [v for v in range(n) if rng.random() < sample_probability]
        if not landmarks:
            landmarks = [0]
        self.landmarks: List[int] = sorted(landmarks)

        self._build()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        graph, oracle = self.graph, self.oracle
        n = graph.n
        # distance to the landmark set and the home landmark of each node,
        # vectorized over one landmark row block (tie-break handled by the
        # oracle helper)
        ids, self.dist_to_landmarks = oracle.nearest_member(self.landmarks)
        self.home: Dict[int, int] = {v: int(ids[v]) for v in range(n)}

        # clusters: x stores a next hop for every v with d(x, v) < d(v, A)
        self._cluster_next_hop: List[Dict[Hashable, int]] = [dict() for _ in range(n)]
        port_bits = bits_for_id(max(graph.max_degree(), 1)) if graph.num_edges else 1
        for v in range(n):
            dist, parent = dijkstra(graph, v)
            name = graph.name_of(v)
            for x in range(n):
                if x == v or not np.isfinite(dist[x]):
                    continue
                if dist[x] < self.dist_to_landmarks[v] - 1e-12:
                    self._cluster_next_hop[x][name] = int(parent[x])
        for x in range(n):
            self.tables[x].charge("cluster_entries", self.name_bits + port_bits,
                                  count=len(self._cluster_next_hop[x]))

        # landmark trees with Lemma 5 routing
        self._trees: Dict[int, CompactTreeRouting] = {}
        for a in self.landmarks:
            tree = shortest_path_tree(graph, a)
            routing = CompactTreeRouting(tree, k=2)
            self._trees[a] = routing
            for v in tree.nodes:
                self.tables[v].charge("landmark_tree_tables", routing.table_bits(v))
        # every node also records its home landmark
        landmark_bits = bits_for_id(max(n, 2))
        for v in range(n):
            self.tables[v].charge("home_landmark", landmark_bits)

    # ------------------------------------------------------------------ #
    # labels
    # ------------------------------------------------------------------ #
    def label_bits(self, node: int) -> int:
        """Label = home landmark id + tree-routing label inside the home tree."""
        home = self.home[node]
        routing = self._trees[home]
        tree_label = routing.label_bits(node) if routing.tree.contains(node) else 0
        return bits_for_id(max(self.graph.n, 2)) + tree_label

    # ------------------------------------------------------------------ #
    # compiled forwarding
    # ------------------------------------------------------------------ #
    def compile_forwarding(self):
        """Compile cluster tables (sparse key array) + landmark trees (bank)."""
        from repro.routing.forwarding import (ForwardingProgram, NextHopTable,
                                              PacketPlan, TreeBank, table_leg,
                                              tree_leg)

        bank = TreeBank(self.graph.n)
        tree_id_of = {a: bank.add(routing.tree) for a, routing in self._trees.items()}
        cluster = NextHopTable.from_name_dicts(self.graph, self._cluster_next_hop)
        header = self.header_bits()

        def plan(source: int, destination: int) -> PacketPlan:
            if source == destination:
                return PacketPlan([], "cowen", 0)
            # phase 1: cluster routing; reaching the destination finalizes
            legs = [table_leg(0, "cowen-cluster", 1)]
            # phase 2: the destination's home-landmark tree.  The entry point
            # is wherever phase 1 stopped, resolved dynamically by the engine
            # (a miss there mirrors the scalar ``contains(current)`` guard).
            home = self.home[destination]
            routing = self._trees[home]
            if routing.tree.contains(destination):
                legs.append(tree_leg(tree_id_of[home], destination,
                                     "cowen-landmark", 2, terminal=True))
            return PacketPlan(legs, "cowen", 0)

        return ForwardingProgram(self.graph, plan, bank=bank, tables=[cluster],
                                 header_bits=header, label="cowen")

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Cluster route if possible, otherwise detour through the home landmark."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="cowen")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        if not self.graph.has_name(destination_name):
            return result
        destination = self.graph.index_of(destination_name)

        # phase 1: hop-by-hop cluster routing
        current = source
        for _ in range(self.graph.n + 1):
            nxt = self._cluster_next_hop[current].get(destination_name)
            if nxt is None:
                break
            result.cost += self.graph.edge_weight(current, nxt)
            result.path.append(nxt)
            current = nxt
            if current == destination:
                result.found = True
                result.strategy = "cowen-cluster"
                result.phases_used = 1
                return result

        # phase 2: through the destination's home landmark tree
        home = self.home[destination]
        routing = self._trees[home]
        if routing.tree.contains(current) and routing.tree.contains(destination):
            walk, cost = routing.walk(current, destination)
            result.extend(walk)
            result.cost += cost
            result.found = result.path[-1] == destination
            result.strategy = "cowen-landmark"
            result.phases_used = 2
        return result

    def header_bits(self) -> int:
        """Header carries the destination's label (landmark id + tree label)."""
        tree_label = max((t.header_bits() for t in self._trees.values()), default=0)
        return self.name_bits + bits_for_id(max(self.graph.n, 2)) + tree_label
