"""Cowen-style stretch-3 labeled routing ([13], improved by Thorup–Zwick [29]).

Construction:

* a landmark set ``A`` is sampled (each node independently with probability
  ``~ sqrt(ln n / n)``, re-drawn if empty);
* every node ``v`` has a home landmark ``l(v)`` — its nearest member of ``A``;
* the *cluster* of a node ``x`` is ``C(x) = { v : d(x, v) < d(v, A) }``; ``x``
  stores a shortest-path next hop for every member of its cluster.  The
  defining inequality is inherited by every node on the shortest path, which
  is what makes hop-by-hop cluster routing consistent;
* every landmark's shortest-path tree carries a Lemma 5 labeled tree-routing
  structure, and every node stores its table for every landmark tree;
* the label of ``v`` is (identifier of ``l(v)``, tree-routing label of ``v``
  in ``T(l(v))``).

Routing ``u → v``: if ``v`` is in the local cluster table, follow next hops
(every intermediate node also has ``v``); otherwise walk to ``l(v)`` inside
its tree and descend to ``v`` — at most ``2 d(v, l(v)) + d(u, v) <= 3 d(u,v)``
because ``v`` outside ``C(u)`` implies ``d(v, l(v)) <= d(u, v)``.

Cluster tables are built column-wise: one chunked multi-source Dijkstra pass
over the destinations, each kernel call limited to the chunk's largest
``d(v, A)`` (entries require ``d(x, v) < d(v, A)``, so nothing beyond that
radius matters), emits the ``(x, v, next hop)`` index arrays of a
:class:`~repro.routing.forwarding.NextHopTable` directly — no per-entry dict
pass, and the same compiled object serves both the scalar ``route`` loop and
the lockstep engine.  Landmark trees come from the shared
:class:`~repro.construction.context.BuildContext` SPT forest.
``REPRO_BUILD_MODE=scalar`` restores the original per-destination
Python-heap loop for the build-parity tests.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional

import numpy as np

from repro.construction.context import BuildContext, SPTJob, scalar_build_mode
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (DistanceOracle, dijkstra,
                                          exact_distance_oracle)
from repro.routing.forwarding import NextHopTable
from repro.routing.messages import RouteResult
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.trees.compact_labeled import CompactTreeRouting
from repro.utils.bitsize import bits_for_id
from repro.utils.rng import make_rng


class CowenRouting(RoutingSchemeInstance):
    """Stretch-3 labeled compact routing."""

    scheme_name = "cowen"
    labeled = True

    def __init__(self, graph: WeightedGraph, oracle: Optional[DistanceOracle] = None,
                 seed=None, name_bits: int = 64,
                 sample_probability: Optional[float] = None,
                 context: Optional[BuildContext] = None) -> None:
        super().__init__(graph)
        self.oracle = exact_distance_oracle(graph, oracle)
        self.name_bits = int(name_bits)
        self._build_seed = seed  # kept for rebuild_spec / churn repair
        rng = make_rng(seed)
        n = graph.n
        if sample_probability is None:
            sample_probability = min(1.0, math.sqrt(max(math.log(max(n, 2)), 1.0) / max(n, 2)))
        self.sample_probability = sample_probability

        # landmark set (never empty: fall back to node 0)
        landmarks = [v for v in range(n) if rng.random() < sample_probability]
        if not landmarks:
            landmarks = [0]
        self.landmarks: List[int] = sorted(landmarks)

        self._build(context or BuildContext(graph, oracle=self.oracle, seed=seed))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, context: BuildContext) -> None:
        graph, oracle = self.graph, self.oracle
        n = graph.n
        # distance to the landmark set and the home landmark of each node,
        # vectorized over one landmark row block (tie-break handled by the
        # oracle helper)
        ids, self.dist_to_landmarks = oracle.nearest_member(self.landmarks)
        self.home: Dict[int, int] = {v: int(ids[v]) for v in range(n)}

        # clusters: x stores a next hop for every v with d(x, v) < d(v, A)
        if scalar_build_mode():
            self._cluster_table = self._build_clusters_scalar()
        else:
            self._cluster_table = self._build_clusters(context)
        port_bits = bits_for_id(max(graph.max_degree(), 1)) if graph.num_edges else 1
        counts = self._cluster_table.entries_per_node()
        for x in range(n):
            self.tables[x].charge("cluster_entries", self.name_bits + port_bits,
                                  count=int(counts[x]))

        # landmark trees with Lemma 5 routing, grown as one batched forest
        trees = context.spt_trees([SPTJob(a) for a in self.landmarks]) \
            if not scalar_build_mode() else \
            [context.spt_tree(a) for a in self.landmarks]
        self._trees: Dict[int, CompactTreeRouting] = {}
        for a, tree in zip(self.landmarks, trees):
            self._trees[a] = CompactTreeRouting(tree, k=2)
        self.tables.charge_structures(
            "landmark_tree_tables",
            ((r.tree.nodes, r.table_bits_list()) for r in self._trees.values()))
        # every node also records its home landmark
        landmark_bits = bits_for_id(max(n, 2))
        for v in range(n):
            self.tables[v].charge("home_landmark", landmark_bits)

    def _build_clusters(self, context: BuildContext) -> NextHopTable:
        """Cluster columns from chunked, distance-limited multi-source Dijkstra."""
        graph = self.graph
        n = graph.n
        if graph.num_edges == 0:
            return NextHopTable(n, np.zeros(0, dtype=np.int64),
                                np.zeros(0, dtype=np.int64))
        from repro.construction.context import limited_dijkstra

        csr = graph.to_scipy_csr()
        dtl = self.dist_to_landmarks
        # chunk destinations by cluster radius so each kernel call stays local
        finite = np.isfinite(dtl)
        order = np.argsort(np.where(finite, dtl, np.inf), kind="stable")
        nodes_parts: List[np.ndarray] = []
        dest_parts: List[np.ndarray] = []
        hop_parts: List[np.ndarray] = []
        block = 256
        for start in range(0, n, block):
            targets = order[start:start + block]
            radii = dtl[targets]
            shared = float(radii.max()) if np.isfinite(radii).all() else None
            dist, pred = limited_dijkstra(csr, targets, shared,
                                          predecessors=True)
            # member x of v's column iff d(x, v) < d(v, A); pred[v-row, x] is
            # x's neighbor toward v
            member = dist < (radii[:, None] - 1e-12)
            member &= pred >= 0  # drops v itself and unreachable sources
            rows, xs = np.nonzero(member)
            nodes_parts.append(xs.astype(np.int64))
            dest_parts.append(targets[rows])
            hop_parts.append(pred[rows, xs].astype(np.int64))

        def cat(parts: List[np.ndarray]) -> np.ndarray:
            return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)

        return NextHopTable.from_arrays(n, cat(nodes_parts), cat(dest_parts),
                                        cat(hop_parts))

    def _build_clusters_scalar(self) -> NextHopTable:
        """Original per-destination Python loop (build-parity reference)."""
        graph = self.graph
        n = graph.n
        per_node: List[Dict[Hashable, int]] = [dict() for _ in range(n)]
        for v in range(n):
            dist, parent = dijkstra(graph, v)
            name = graph.name_of(v)
            for x in range(n):
                if x == v or not np.isfinite(dist[x]):
                    continue
                if dist[x] < self.dist_to_landmarks[v] - 1e-12:
                    per_node[x][name] = int(parent[x])
        return NextHopTable.from_name_dicts(graph, per_node)

    # ------------------------------------------------------------------ #
    # labels
    # ------------------------------------------------------------------ #
    def label_bits(self, node: int) -> int:
        """Label = home landmark id + tree-routing label inside the home tree."""
        home = self.home[node]
        routing = self._trees[home]
        tree_label = routing.label_bits(node) if routing.tree.contains(node) else 0
        return bits_for_id(max(self.graph.n, 2)) + tree_label

    # ------------------------------------------------------------------ #
    # compiled forwarding
    # ------------------------------------------------------------------ #
    def compile_forwarding(self):
        """Compile landmark trees (bank); the cluster table is already compiled."""
        from repro.routing.forwarding import (ForwardingProgram, PacketPlan,
                                              TreeBank, table_leg, tree_leg)

        from repro.routing.forwarding import LEG_TABLE, LEG_TREE
        from repro.routing.kernels import BatchPlans

        bank = TreeBank(self.graph.n)
        tree_id_of = {a: bank.add(routing.tree) for a, routing in self._trees.items()}
        header = self.header_bits()

        def plan(source: int, destination: int) -> PacketPlan:
            if source == destination:
                return PacketPlan([], "cowen", 0)
            # phase 1: cluster routing; reaching the destination finalizes
            legs = [table_leg(0, "cowen-cluster", 1)]
            # phase 2: the destination's home-landmark tree.  The entry point
            # is wherever phase 1 stopped, resolved dynamically by the engine
            # (a miss there mirrors the scalar ``contains(current)`` guard).
            home = self.home[destination]
            routing = self._trees[home]
            if routing.tree.contains(destination):
                legs.append(tree_leg(tree_id_of[home], destination,
                                     "cowen-landmark", 2, terminal=True))
            return PacketPlan(legs, "cowen", 0)

        # vectorized batch planning: per-destination home-tree / target-slot
        # arrays, computed once per compiled program (the bank is frozen by
        # program construction, before the first batch arrives)
        dest_arrays: dict = {}

        def plan_batch(src: np.ndarray, dst: np.ndarray) -> BatchPlans:
            cached = dest_arrays.get("arrs")
            if cached is None:
                n = self.graph.n
                all_nodes = np.arange(n, dtype=np.int64)
                landmark_tree = np.full(n, -1, dtype=np.int64)
                for a, tid in tree_id_of.items():
                    landmark_tree[a] = tid
                home_tree = landmark_tree[
                    np.asarray([self.home[v] for v in range(n)], dtype=np.int64)]
                # slot >= 0 iff the home tree contains the node — the same
                # membership test ``plan`` runs via ``tree.contains``
                target_slot = bank.slots_of(home_tree, all_nodes)
                cached = (home_tree, target_slot)
                dest_arrays["arrs"] = cached
            home_tree, target_slot = cached
            num = int(src.size)
            nonself = src != dst
            has_tree = nonself & (target_slot[dst] >= 0)
            counts = nonself.astype(np.int64) + has_tree
            leg_lo = np.concatenate(([0], np.cumsum(counts)[:-1])) if num \
                else np.zeros(0, dtype=np.int64)
            total = int(counts.sum())
            # leg 0 (every non-self packet): the cluster-table phase;
            # leg 1 (packets whose home tree holds the destination): the
            # terminal landmark-tree walk
            leg_kind = np.full(total, LEG_TABLE, dtype=np.int8)
            leg_a = np.zeros(total, dtype=np.int64)
            leg_b = np.full(total, -1, dtype=np.int64)
            leg_strategy = np.ones(total, dtype=np.int64)      # "cowen-cluster"
            leg_phases = np.ones(total, dtype=np.int64)
            leg_terminal = np.zeros(total, dtype=bool)
            tree_pos = leg_lo[has_tree] + 1
            leg_kind[tree_pos] = LEG_TREE
            leg_a[tree_pos] = home_tree[dst[has_tree]]
            leg_b[tree_pos] = target_slot[dst[has_tree]]
            leg_strategy[tree_pos] = 2                         # "cowen-landmark"
            leg_phases[tree_pos] = 2
            leg_terminal[tree_pos] = True
            return BatchPlans(
                num=num, leg_kind=leg_kind, leg_a=leg_a, leg_b=leg_b,
                leg_strategy=leg_strategy, leg_phases=leg_phases,
                leg_terminal=leg_terminal, leg_lo=leg_lo,
                leg_hi=leg_lo + counts,
                out_strategy=np.zeros(num, dtype=np.int64),    # "cowen"
                out_phases=np.zeros(num, dtype=np.int64),
                strategy_names=["cowen", "cowen-cluster", "cowen-landmark"],
                header_bits=np.full(num, header, dtype=np.int64))

        return ForwardingProgram(self.graph, plan, bank=bank,
                                 tables=[self._cluster_table],
                                 header_bits=header, label="cowen",
                                 batch_planner=plan_batch)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route(self, source: int, destination_name: Hashable) -> RouteResult:
        """Cluster route if possible, otherwise detour through the home landmark."""
        result = RouteResult(found=False, path=[source], cost=0.0,
                             max_header_bits=self.header_bits(), strategy="cowen")
        if self.graph.name_of(source) == destination_name:
            result.found = True
            return result
        if not self.graph.has_name(destination_name):
            return result
        destination = self.graph.index_of(destination_name)

        # phase 1: hop-by-hop cluster routing
        current = source
        for _ in range(self.graph.n + 1):
            nxt = self._cluster_table.lookup_one(current, destination)
            if nxt < 0:
                break
            result.cost += self.graph.edge_weight(current, nxt)
            result.path.append(nxt)
            current = nxt
            if current == destination:
                result.found = True
                result.strategy = "cowen-cluster"
                result.phases_used = 1
                return result

        # phase 2: through the destination's home landmark tree
        home = self.home[destination]
        routing = self._trees[home]
        if routing.tree.contains(current) and routing.tree.contains(destination):
            walk, cost = routing.walk(current, destination)
            result.extend(walk)
            result.cost += cost
            result.found = result.path[-1] == destination
            result.strategy = "cowen-landmark"
            result.phases_used = 2
        return result

    def header_bits(self) -> int:
        """Header carries the destination's label (landmark id + tree label)."""
        tree_label = max((t.header_bits() for t in self._trees.values()), default=0)
        return self.name_bits + bits_for_id(max(self.graph.n, 2)) + tree_label
