"""Convenience constructor for every routing scheme in the library."""

from __future__ import annotations

from typing import Optional

from repro.graphs.backends import BackendLike
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.scheme_api import RoutingSchemeInstance


#: canonical scheme names accepted by :func:`build_scheme`
SCHEME_NAMES = (
    "agm",
    "shortest-path",
    "cowen",
    "thorup-zwick",
    "awerbuch-peleg",
    "exponential",
)


def build_scheme(
    name: str,
    graph: WeightedGraph,
    k: int = 2,
    seed=None,
    oracle: Optional[DistanceOracle] = None,
    backend: BackendLike = None,
    **kwargs,
) -> RoutingSchemeInstance:
    """Build the named routing scheme for ``graph``.

    Parameters
    ----------
    name:
        One of :data:`SCHEME_NAMES`.
    graph:
        The network.
    k:
        Trade-off parameter (ignored by schemes that have none, e.g.
        shortest-path and Cowen).
    seed:
        Randomness for the scheme's sampling / hashing.
    oracle:
        Optional pre-computed distance oracle shared across schemes.
    backend:
        Distance-backend spec (``"dense"`` / ``"lazy"`` / ``None`` = auto)
        used when no ``oracle`` is supplied.  Scheme construction requires an
        exact backend, so ``"landmark"`` is rejected here.
    kwargs:
        Scheme-specific extras (e.g. ``params`` for "agm").
    """
    if oracle is None and backend is not None:
        oracle = DistanceOracle(graph, backend=backend)
    # exactness is validated by exact_distance_oracle inside every scheme
    # constructor — no duplicate check here
    # Imports are local so that loading the factory does not drag in every
    # scheme module (and to keep the package import graph acyclic).
    key = name.lower().replace("_", "-")
    if key == "agm":
        from repro.core.scheme import AGMRoutingScheme

        return AGMRoutingScheme(graph, k=k, seed=seed, oracle=oracle, **kwargs)
    if key in ("shortest-path", "spt", "full-tables"):
        from repro.baselines.shortest_path import ShortestPathRouting

        return ShortestPathRouting(graph, oracle=oracle, **kwargs)
    if key == "cowen":
        from repro.baselines.cowen import CowenRouting

        return CowenRouting(graph, seed=seed, oracle=oracle, **kwargs)
    if key in ("thorup-zwick", "tz"):
        from repro.baselines.thorup_zwick import ThorupZwickRouting

        return ThorupZwickRouting(graph, k=k, seed=seed, oracle=oracle, **kwargs)
    if key in ("awerbuch-peleg", "hierarchical"):
        from repro.baselines.awerbuch_peleg import AwerbuchPelegRouting

        return AwerbuchPelegRouting(graph, k=k, seed=seed, oracle=oracle, **kwargs)
    if key in ("exponential", "exponential-stretch", "random-sampling"):
        from repro.baselines.exponential_stretch import ExponentialStretchRouting

        return ExponentialStretchRouting(graph, k=k, seed=seed, oracle=oracle, **kwargs)
    raise ValueError(f"unknown scheme {name!r}; choose from {SCHEME_NAMES}")
