"""One clock for traffic and churn: the live-network timeline.

:class:`LiveSimulator` owns a single seeded timeline over one scheme:

* **Epoch 0** is the pre-churn baseline — one traffic epoch through the
  streaming engine's service loop, nothing else.
* **Every later epoch** replays the live-network cycle: capture the
  compiled forwarding program (the tables routers are *actually* holding),
  apply the scenario's churn batch to the graph, route a probe batch on the
  **stale** program over the mutated graph (the staleness window — packets
  in flight between failure and repair), repair the scheme
  (``maintain(delta)`` or a forced full rebuild, priced by its
  :class:`~repro.dynamics.repair.RepairReport`), recompile forwarding, and
  run the epoch's traffic through :func:`~repro.traffic.engine.run_traffic`
  with ``service=True``.

Staleness-window accounting: a window packet is **delivered** iff the stale
walk claims ``found``, actually ends at the destination, and every non-self
hop traverses an edge that still exists in the mutated graph; everything
else — including walks over failed links — is window loss.  The probe
traffic is drawn from a model built *before* the event batch, so pairs that
churn just disconnected are sampled with their pre-churn likelihood
(exactly the packets that were in flight).

SLA delivery rate: ``delivered / (packets - unreachable)``.  Packets whose
destination is in another component can be delivered by no scheme — they
are reported separately (``unreachable``) and excluded from the SLA
denominator, so "delivery back at 100% within one epoch of repair" is a
statement about the scheme, not about the scenario's partition schedule.

Every per-epoch statistic is mergeable and partition-independent (PR 5's
stats layer); ``verify_determinism=True`` re-runs each epoch's traffic
across a different shard split and with the fused kernels disabled and
requires the official summaries to be **bit-identical** — the claim the
E19 bench commits to.
"""

from __future__ import annotations

import copy
import math
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.dynamics.events import apply_events
from repro.dynamics.repair import RepairReport, full_rebuild
from repro.dynamics.scenario import (
    STRUCTURE_KEY_NS,
    ChurnScenario,
    TrafficDirective,
    make_scenario,
    stale_delivery_rate,
)
from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.forwarding import ForwardingProgram, run_lockstep
from repro.routing.scheme_api import RoutingSchemeInstance
from repro.traffic.engine import (
    DEFAULT_BATCH_SIZE,
    TrafficReport,
    num_batches,
    run_traffic,
)
from repro.traffic.models import make_traffic_model
from repro.traffic.scoring import make_scorer
from repro.traffic.stats import TrafficStats
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import require

#: seed-derivation namespaces (disjoint from the traffic/scoring keys)
_EVENT_KEY = 9101
_MODEL_KEY = 9102
_STALE_KEY = 9103


def stale_window_outcome(graph: WeightedGraph, outcome, num_packets: int,
                         destinations: np.ndarray) -> np.ndarray:
    """Per-packet delivery of a stale-program run over a mutated graph.

    The tolerant sibling of
    :func:`repro.routing.simulator.gather_hop_costs`: a hop over a
    now-missing edge is not a scheme bug here — it is a packet dying at a
    failed link — so instead of raising, every packet whose walk uses a
    dead or out-of-range hop is marked undelivered.  A packet is delivered
    iff it claims ``found``, its walk ends at its destination, and every
    non-self hop is alive in ``graph``.
    """
    destinations = np.asarray(destinations, dtype=np.int64)
    delivered = outcome.found & (outcome.final_nodes == destinations)
    heads = outcome.hop_heads
    tails = outcome.hop_tails
    packet_idx = outcome.hop_index
    real = heads != tails
    heads, tails, packet_idx = heads[real], tails[real], packet_idx[real]
    if packet_idx.size == 0:
        return delivered
    alive = np.zeros(heads.size, dtype=bool)
    in_range = ((heads >= 0) & (heads < graph.n)
                & (tails >= 0) & (tails < graph.n))
    if in_range.any() and graph.num_edges:
        csr = graph.to_scipy_csr()
        weights = np.asarray(csr[heads[in_range], tails[in_range]]).ravel()
        alive[in_range] = weights > 0.0
    dead_packets = np.unique(packet_idx[~alive])
    delivered[dead_packets] = False
    return delivered


@dataclass
class EpochRecord:
    """One epoch of the timeline: window loss, repair price, traffic SLA."""

    epoch: int
    events: int
    stale_packets: int
    stale_delivered: int
    repair_strategy: str
    repair_seconds: float
    rebuilt_trees: int
    reused_trees: int
    patched_entries: int
    dirty_destinations: int
    recompile_seconds: float
    report: TrafficReport
    #: True when this epoch's official stats were re-derived under a
    #: different shard split and with the fused kernels disabled and
    #: matched bit for bit
    determinism_checked: bool = False

    @property
    def stale_delivery_rate(self) -> float:
        """Delivered fraction of the staleness-window probe packets."""
        if self.stale_packets == 0:
            return 1.0
        return self.stale_delivered / self.stale_packets

    @property
    def stale_loss_rate(self) -> float:
        """Window packet loss: ``1 - stale_delivery_rate``."""
        return 1.0 - self.stale_delivery_rate

    @property
    def delivery_rate(self) -> float:
        """SLA delivery: delivered / (packets - unreachable), post-repair."""
        stats = self.report.stats
        eligible = stats.packets - stats.unreachable
        return stats.delivered / eligible if eligible else 1.0

    def as_row(self) -> Dict[str, object]:
        """Flat row for the experiment harness (one row per epoch)."""
        row: Dict[str, object] = {
            "epoch": self.epoch,
            "events": self.events,
            "stale_packets": self.stale_packets,
            "stale_delivered": self.stale_delivered,
            "stale_delivery": self.stale_delivery_rate,
            "stale_loss": self.stale_loss_rate,
            "repair_strategy": self.repair_strategy,
            "repair_seconds": round(self.repair_seconds, 4),
            "rebuilt_trees": self.rebuilt_trees,
            "reused_trees": self.reused_trees,
            "patched_entries": self.patched_entries,
            "dirty_destinations": self.dirty_destinations,
            "recompile_seconds": round(self.recompile_seconds, 4),
            "delivery_rate": self.delivery_rate,
            "determinism_checked": self.determinism_checked,
        }
        row.update(self.report.as_row())
        return row


@dataclass
class LiveTimeline:
    """A full timeline run: per-epoch records plus exact cross-epoch merges."""

    scheme: str
    scenario: str
    model: str
    seed: SeedLike
    epochs: List[EpochRecord] = field(default_factory=list)

    def rows(self) -> List[Dict[str, object]]:
        return [record.as_row() for record in self.epochs]

    def merged_stats(self) -> TrafficStats:
        """All epochs' traffic statistics merged into one exact stream.

        Each epoch numbered its batches from zero; shifting every epoch's
        batch keys past its predecessors' makes the index sets disjoint, so
        the merge keeps the stats layer's exactness guarantees (the records'
        own per-epoch stats are left untouched — merging works on copies).
        """
        merged = TrafficStats()
        offset = 0
        for record in self.epochs:
            shard = copy.deepcopy(record.report.stats)
            shard.shift_batches(offset)
            offset += num_batches(record.report.packets,
                                  record.report.batch_size)
            merged.merge(shard)
        return merged

    def summary(self) -> Dict[str, object]:
        """Timeline-level SLA headline: merged stats + worst-epoch figures."""
        out: Dict[str, object] = dict(self.merged_stats().summary(
            include_p2=False))
        post_repair = [r for r in self.epochs if r.epoch > 0]
        out.update({
            "epochs": len(self.epochs),
            "min_delivery_rate": min((r.delivery_rate for r in self.epochs),
                                     default=1.0),
            "max_stale_loss": max((r.stale_loss_rate for r in post_repair),
                                  default=0.0),
            "total_repair_seconds": sum(r.repair_seconds
                                        for r in post_repair),
            "total_recompile_seconds": sum(r.recompile_seconds
                                           for r in post_repair),
        })
        return out


def _summaries_identical(a: Dict[str, float], b: Dict[str, float]) -> bool:
    """Exact dict equality where NaN == NaN (empty-stream fields)."""
    if a.keys() != b.keys():
        return False
    for key, x in a.items():
        y = b[key]
        if isinstance(x, float) and isinstance(y, float) \
                and math.isnan(x) and math.isnan(y):
            continue
        if x != y:
            return False
    return True


class LiveSimulator:
    """Drive one scheme through a seeded churn+traffic timeline.

    Parameters
    ----------
    scheme:
        A built routing scheme; mutated in place by repair, exactly like a
        long-running router process.
    scenario:
        A scenario name (see :data:`repro.dynamics.scenario.SCENARIO_NAMES`)
        or a fresh :class:`ChurnScenario` object (scenarios are stateful —
        never share one across simulators).
    model / model_kwargs:
        Traffic model family; a fresh model is instantiated per epoch with
        a seed derived from ``(seed, epoch)``, so epoch streams are
        independent and each epoch's pair eligibility reflects the graph
        it actually routes on.
    stale_packets:
        Probe packets routed on the stale program inside each staleness
        window (0 disables the window measurement).
    scoring:
        ``"exact"`` / ``"sampled"`` / ``"landmark"``; approximate scorers
        are rebuilt per epoch (their landmark rows snapshot the graph).
    repair:
        ``"maintain"`` (scheme-incremental where available) or ``"full"``.
    verify_determinism:
        Re-run every epoch's traffic under a different shard split and
        with the fused kernels disabled, requiring bit-identical official
        summaries (this re-routes each epoch twice more — honest but not
        free).
    """

    def __init__(self, scheme: RoutingSchemeInstance,
                 scenario: Union[str, ChurnScenario],
                 *,
                 oracle: Optional[DistanceOracle] = None,
                 model: str = "zipf",
                 model_kwargs: Optional[dict] = None,
                 epochs: int = 5,
                 epoch_packets: int = 100_000,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 stale_packets: int = 4096,
                 shards: int = 1,
                 processes: Optional[bool] = None,
                 engine: str = "lockstep",
                 scoring: str = "exact",
                 sample_per_batch: int = 8,
                 num_landmarks: int = 16,
                 repair: str = "maintain",
                 epoch_batches: Optional[int] = None,
                 seed: SeedLike = 0,
                 verify_determinism: bool = False) -> None:
        require(epochs >= 1, "need at least one churn epoch")
        require(epoch_packets >= 1, "need at least one packet per epoch")
        require(stale_packets >= 0, "stale_packets must be non-negative")
        require(repair in ("maintain", "full"),
                f"repair must be 'maintain' or 'full', got {repair!r}")
        self.scheme = scheme
        self.graph: WeightedGraph = scheme.graph
        self.oracle = oracle or DistanceOracle(self.graph)
        self.scenario = make_scenario(scenario) \
            if isinstance(scenario, str) else scenario
        self.model_name = model
        self.model_kwargs = dict(model_kwargs or {})
        self.epochs = int(epochs)
        self.epoch_packets = int(epoch_packets)
        self.batch_size = int(batch_size)
        self.stale_packets = int(stale_packets)
        self.shards = int(shards)
        self.processes = processes
        self.engine = engine
        self.scoring = scoring
        self.sample_per_batch = int(sample_per_batch)
        self.num_landmarks = int(num_landmarks)
        self.repair = repair
        self.epoch_batches = epoch_batches
        self.seed = seed
        self.verify_determinism = bool(verify_determinism)
        self._event_rng = derive_rng(seed, _EVENT_KEY)

    # -- seed plumbing ---------------------------------------------------- #
    def _derived_seed(self, key: int, epoch: int) -> int:
        return int(derive_rng(self.seed, key, epoch).integers(0, 2**31 - 1))

    def _make_model(self, seed: int, epoch: int):
        """Build the traffic model for ``epoch``, honouring the scenario.

        Adversarial scenarios steer traffic through
        :class:`~repro.dynamics.scenario.TrafficDirective`: the directive
        may swap the model family for the epoch (a storm turning zipf
        traffic into targeted hotspot load), merge extra model kwargs
        (explicit victim nodes), and pin the model's *structure seed* via
        ``structure_key`` — epochs sharing a key share a hot set even
        though their packet streams are re-seeded per epoch, and a key
        change migrates the hot set (invalidating the pinned hot-row
        scoring cache through its fingerprint).
        """
        directive: Optional[TrafficDirective] = None
        if epoch >= 0:
            directive = self.scenario.traffic_for_epoch(
                self.graph, epoch, self.epochs)
        name = self.model_name
        kwargs = dict(self.model_kwargs)
        if directive is not None:
            if directive.model is not None and directive.model != name:
                # a family swap abandons the base kwargs too — they belong
                # to the base family (a zipf `support` means nothing to the
                # storm's hotspot model)
                name = directive.model
                kwargs = {}
            kwargs.update(directive.model_kwargs)
            if directive.structure_key is not None:
                kwargs["structure_seed"] = int(derive_rng(
                    self.seed, STRUCTURE_KEY_NS,
                    directive.structure_key).integers(0, 2**31 - 1))
        return make_traffic_model(name, self.graph, seed=seed, **kwargs)

    # -- timeline --------------------------------------------------------- #
    def run(self) -> LiveTimeline:
        """Execute the full timeline and return its per-epoch records."""
        timeline = LiveTimeline(scheme=self.scheme.scheme_name,
                                scenario=self.scenario.name,
                                model=self.model_name, seed=self.seed)
        # epoch 0: pre-churn baseline traffic epoch
        report, checked = self._run_epoch_traffic(0)
        timeline.epochs.append(EpochRecord(
            epoch=0, events=0, stale_packets=0, stale_delivered=0,
            repair_strategy="baseline", repair_seconds=0.0,
            rebuilt_trees=0, reused_trees=0, patched_entries=0,
            dirty_destinations=0, recompile_seconds=0.0, report=report,
            determinism_checked=checked))

        for epoch in range(1, self.epochs + 1):
            # the program routers hold when the failure hits — captured
            # before the events so the window routes on genuinely stale state
            stale_program = self.scheme.compiled_forwarding()
            # the probe model is built pre-churn too: its pair eligibility
            # must reflect the traffic that was already in flight — which
            # belongs to the *previous* epoch's regime, so the directive
            # consulted is epoch - 1's (a storm starting this epoch must
            # not retroactively shape the packets already in the air)
            stale_model = self._make_model(
                self._derived_seed(_STALE_KEY, epoch), epoch - 1)
            events = self.scenario.events_for_epoch(
                self.graph, epoch, self.epochs, self._event_rng)
            delta = apply_events(self.graph, events)

            stale_delivered = self._stale_window(stale_program, stale_model)

            if self.repair == "full":
                repair_report = full_rebuild(self.scheme, delta)
            else:
                repair_report = self.scheme.maintain(delta)
            start = time.perf_counter()
            self.scheme.compiled_forwarding()
            recompile_seconds = time.perf_counter() - start

            report, checked = self._run_epoch_traffic(epoch)
            timeline.epochs.append(EpochRecord(
                epoch=epoch, events=len(events),
                stale_packets=self.stale_packets,
                stale_delivered=stale_delivered,
                repair_strategy=repair_report.strategy,
                repair_seconds=repair_report.seconds,
                rebuilt_trees=repair_report.rebuilt_trees,
                reused_trees=repair_report.reused_trees,
                patched_entries=repair_report.patched_entries,
                dirty_destinations=repair_report.dirty_destinations,
                recompile_seconds=recompile_seconds, report=report,
                determinism_checked=checked))
        return timeline

    # -- staleness window -------------------------------------------------- #
    def _stale_window(self, program: ForwardingProgram, model) -> int:
        """Route the window probe on the stale program; count deliveries."""
        if self.stale_packets == 0:
            return 0
        src, dst = model.batch(0, self.stale_packets)
        if program.is_fallback:
            # memoized-scalar schemes have no frozen compiled snapshot; the
            # scalar stale-delivery helper replays route() with drops on
            # dead links — same delivery definition, per-pair
            pairs = list(zip(src.tolist(), dst.tolist()))
            rate = stale_delivery_rate(self.scheme, self.graph, pairs)
            return int(round(rate * len(pairs)))
        outcome = run_lockstep(program, src, dst, materialize=False)
        delivered = stale_window_outcome(self.graph, outcome, src.size, dst)
        return int(np.count_nonzero(delivered))

    # -- traffic epochs ---------------------------------------------------- #
    def _traffic_once(self, model, scorer, *, shards: int,
                      processes: Optional[bool], service: bool) -> TrafficReport:
        return run_traffic(
            self.scheme, model, self.epoch_packets, shards=shards,
            batch_size=self.batch_size, engine=self.engine,
            oracle=self.oracle, processes=processes, service=service,
            epoch_batches=self.epoch_batches,
            scoring=scorer if scorer is not None else "exact")

    def _run_epoch_traffic(self, epoch: int):
        model = self._make_model(self._derived_seed(_MODEL_KEY, epoch), epoch)
        # approximate scorers snapshot graph state (landmark rows,
        # component ids) — always rebuild on the post-repair graph
        scorer = make_scorer(self.scoring, self.graph, self.oracle,
                             seed=model.seed,
                             sample_per_batch=self.sample_per_batch,
                             num_landmarks=self.num_landmarks)
        report = self._traffic_once(model, scorer, shards=self.shards,
                                    processes=self.processes, service=True)
        checked = False
        if self.verify_determinism:
            self._cross_check(epoch, model, scorer, report)
            checked = True
        return report, checked

    def _cross_check(self, epoch: int, model, scorer,
                     report: TrafficReport) -> None:
        """Re-derive the epoch summary two independent ways; require identity.

        (a) a different shard split in plain batch mode — partition and
        service-loop independence; (b) the legacy (non-fused) engine via
        ``REPRO_KERNELS=0`` — kernel independence.  Scoring is pure in
        ``(seed, batch_index)``, so the scorer can be reused.
        """
        official = report.summary(include_p2=False)
        other_shards = 2 if self.shards == 1 else 1
        resharded = self._traffic_once(model, scorer, shards=other_shards,
                                       processes=False, service=False)
        require(_summaries_identical(official,
                                     resharded.summary(include_p2=False)),
                f"epoch {epoch}: official stats changed across shard counts")
        previous = os.environ.get("REPRO_KERNELS")
        os.environ["REPRO_KERNELS"] = "0"
        try:
            legacy = self._traffic_once(model, scorer, shards=1,
                                        processes=False, service=True)
        finally:
            if previous is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = previous
        require(_summaries_identical(official,
                                     legacy.summary(include_p2=False)),
                f"epoch {epoch}: official stats changed with fused kernels "
                "disabled")
