"""Live-network service simulation: traffic and churn on one clock.

The :class:`~repro.live.simulator.LiveSimulator` drives a single seeded
timeline where million-packet traffic epochs (the streaming engine's
service loop) interleave with churn event batches and per-scheme
``maintain()`` repairs.  Packets caught between a failure and its repair
route on *stale* forwarding state over the mutated graph — the staleness
window — and every epoch emits SLA-style mergeable statistics: delivery
rate, stretch histograms, repair latency, and staleness-window loss.
"""

from repro.live.simulator import (
    EpochRecord,
    LiveSimulator,
    LiveTimeline,
    stale_window_outcome,
)

__all__ = [
    "EpochRecord",
    "LiveSimulator",
    "LiveTimeline",
    "stale_window_outcome",
]
