"""Live-network service demo: traffic and churn on one clock.

Walks the live timeline on a small scale-free network:

1. drive one scheme through a flap-heavy timeline with
   ``LiveSimulator`` and print the per-epoch SLA ledger — staleness-window
   loss while routers hold stale tables, repair price, and delivery/stretch
   once the epoch's traffic runs on the repaired tables;
2. run ``run_live_matrix`` over several schemes on the *same* seeded event
   sequence and compare their timelines side by side.

Run with::

    PYTHONPATH=src python examples/live_demo.py
"""

from __future__ import annotations

from repro.experiments.harness import run_live_matrix
from repro.factory import build_scheme
from repro.graphs.generators import make_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.live import LiveSimulator


def single_timeline() -> None:
    print("=== one scheme, one timeline ===")
    graph = make_graph("barabasi-albert", n=400, seed=7)
    oracle = DistanceOracle(graph)
    scheme = build_scheme("thorup-zwick", graph, k=2, seed=1, oracle=oracle)
    simulator = LiveSimulator(scheme, "flap-heavy", oracle=oracle,
                              epochs=4, epoch_packets=20_000,
                              stale_packets=2048, seed=3,
                              verify_determinism=True)
    timeline = simulator.run()
    header = (f"{'ep':>3} {'events':>6} {'stale':>6} {'sla':>7} "
              f"{'repair':>12} {'ms':>8} {'avg stretch':>11}")
    print(header)
    print("-" * len(header))
    for rec in timeline.epochs:
        summary = rec.report.summary(include_p2=False)
        prefix = rec.report.stats.stretch_prefix
        print(f"{rec.epoch:>3} {rec.events:>6} "
              f"{rec.stale_delivery_rate:>6.3f} {rec.delivery_rate:>7.4f} "
              f"{rec.repair_strategy:>12} {rec.repair_seconds * 1000:>8.1f} "
              f"{summary[f'avg_{prefix}']:>11.4f}")
    merged = timeline.summary()
    print(f"timeline: {merged['packets']} packets, "
          f"min SLA delivery {merged['min_delivery_rate']:.4f}, "
          f"worst window loss {merged['max_stale_loss']:.3f}, "
          f"total repair {merged['total_repair_seconds'] * 1000:.1f} ms\n")


def live_matrix() -> None:
    print("=== live matrix: same event sequence, three schemes ===")
    result = run_live_matrix(
        "live-demo",
        ["shortest-path", "cowen", "thorup-zwick"],
        lambda: make_graph("barabasi-albert", n=400, seed=7),
        scenario="partition-and-heal",
        epochs=3,
        epoch_packets=10_000,
        stale_packets=1024,
        seed=5,
    )
    header = (f"{'scheme':>14} {'ep':>3} {'events':>6} {'stale':>6} "
              f"{'sla':>7} {'repair':>12} {'ms':>8}")
    print(header)
    print("-" * len(header))
    for row in result.rows:
        print(f"{row['scheme']:>14} {row['epoch']:>3} {row['events']:>6} "
              f"{row['stale_delivery']:>6.3f} {row['delivery_rate']:>7.4f} "
              f"{row['repair_strategy']:>12} "
              f"{row['repair_seconds'] * 1000:>8.1f}")
    print("\ntimeline summaries:")
    for scheme, summary in result.metadata["timelines"].items():
        print(f"  {scheme:>14}: min delivery {summary['min_delivery_rate']:.4f}, "
              f"worst window loss {summary['max_stale_loss']:.3f}")


if __name__ == "__main__":
    single_timeline()
    live_matrix()
