#!/usr/bin/env python3
"""Quickstart: build the AGM scale-free routing scheme and route a few messages.

Run with ``python examples/quickstart.py``.  Every step uses only the public
API re-exported from :mod:`repro`.
"""

from repro import AGMParams, AGMRoutingScheme, RoutingSimulator
from repro.graphs.generators import random_geometric_graph
from repro.experiments.reporting import format_table


def main() -> None:
    # 1. a weighted network with arbitrary (adversarial) node names
    graph = random_geometric_graph(72, seed=7)
    print(f"network: {graph.n} nodes, {graph.num_edges} edges, "
          f"max degree {graph.max_degree()}")

    # 2. preprocess the routing scheme (k controls the space-stretch trade-off)
    scheme = AGMRoutingScheme.build(graph, k=2, params=AGMParams.experiment(), seed=1)
    print(f"per-node routing tables: max {scheme.max_table_bits()} bits "
          f"({scheme.max_table_bits() / 8 / 1024:.1f} KiB), "
          f"avg {scheme.avg_table_bits():.0f} bits")
    print(f"message headers: {scheme.header_bits()} bits")

    # 3. route a single message by destination *name* (name-independent model)
    source, destination = 3, 41
    result = scheme.route(source, graph.name_of(destination))
    shortest = RoutingSimulator(graph).oracle.dist(source, destination)
    print(f"routed {source} -> {destination}: found={result.found}, "
          f"cost={result.cost:.1f}, shortest={shortest:.1f}, "
          f"stretch={result.cost / shortest:.2f}, strategy={result.strategy}")

    # 4. evaluate stretch statistics over many random pairs
    simulator = RoutingSimulator(graph)
    report = simulator.evaluate(scheme, num_pairs=200, seed=3)
    print(format_table([report.as_dict()],
                       columns=["scheme", "n", "num_pairs", "max_stretch", "avg_stretch",
                                "median_stretch", "failures", "max_table_bits"],
                       title="routing quality"))


if __name__ == "__main__":
    main()
