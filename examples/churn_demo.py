"""Dynamic-network churn demo: failures, incremental repair, scenario matrix.

Walks through the churn subsystem on a small ISP-like geometric network:

1. apply a hand-rolled event batch (a link failure, a congestion spike and a
   node outage) through ``apply_events`` and watch a live scheme break, then
   repair itself with ``maintain()``;
2. run the named scenario matrix (flap-heavy / degradation /
   partition-and-heal) over two schemes and print stretch drift, delivery
   under stale state, and repair cost per event batch.

Run with::

    PYTHONPATH=src python examples/churn_demo.py
"""

from __future__ import annotations

from repro.dynamics.events import ChurnEvent, apply_events
from repro.dynamics.scenario import (SCENARIO_NAMES, run_scenario_matrix,
                                     stale_delivery_rate)
from repro.experiments.workloads import workload_factory
from repro.factory import build_scheme
from repro.graphs.generators import random_geometric_graph
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator


def single_batch_walkthrough() -> None:
    print("=== one event batch, one scheme ===")
    graph = random_geometric_graph(120, seed=7)
    oracle = DistanceOracle(graph)
    simulator = RoutingSimulator(graph, oracle=oracle)
    scheme = build_scheme("thorup-zwick", graph, k=2, seed=1, oracle=oracle)
    pairs = simulator.sample_pairs(150, seed=2)
    print(f"baseline: avg stretch "
          f"{simulator.evaluate_batch(scheme, pairs).avg_stretch:.3f}")

    # fail the heaviest-traffic link, triple the weight of another, and take
    # one node down entirely
    u, v, w = max(graph.edges(), key=lambda e: e[2])
    a, b, wab = next(graph.edges())
    batch = [
        ChurnEvent("fail", u, v),
        ChurnEvent("perturb", a, b, weight=3 * wab) if (a, b) != (u, v) else
        ChurnEvent("detach", graph.n - 1),
        ChurnEvent("detach", graph.n // 2),
    ]
    delta = apply_events(graph, batch)
    print(f"applied {delta.num_events} events touching "
          f"{len(delta.changed_edges())} edges")
    print(f"stale delivery rate: "
          f"{stale_delivery_rate(scheme, graph, pairs):.2f}")

    report = scheme.maintain(delta)
    print(f"repair: {report.strategy} in {report.seconds * 1000:.1f} ms "
          f"(rebuilt {report.rebuilt_trees} trees, reused {report.reused_trees})")
    pairs = simulator.sample_pairs(150, seed=3, on_shortfall="warn")
    post = simulator.evaluate_batch(scheme, pairs)
    print(f"post-repair: avg stretch {post.avg_stretch:.3f}, "
          f"failures {post.failures}/{post.num_pairs}\n")


def scenario_matrix() -> None:
    print("=== scenario matrix ===")
    result = run_scenario_matrix(
        ["shortest-path", "thorup-zwick"],
        workload_factory("geometric", 150, seed=11),
        scenarios=SCENARIO_NAMES,
        epochs=4,
        num_pairs=120,
        seed=5,
    )
    header = (f"{'scenario':>20} {'ep':>3} {'scheme':>14} {'stale':>6} "
              f"{'deliv':>6} {'drift':>7} {'repair':>13} {'ms':>7}")
    print(header)
    print("-" * len(header))
    for row in result.rows:
        print(f"{row['scenario']:>20} {row['epoch']:>3} {row['scheme']:>14} "
              f"{row['stale_delivery']:>6.2f} {row['delivery']:>6.2f} "
              f"{row['stretch_drift']:>+7.3f} {row['repair_strategy']:>13} "
              f"{row['repair_seconds'] * 1000:>7.1f}")


if __name__ == "__main__":
    single_batch_walkthrough()
    scenario_matrix()
