#!/usr/bin/env python3
"""ISP-style scenario: compact routing on an internet-like topology.

Section 1 of the paper motivates name-independent routing with existing
networks (e.g. IP networks) whose node addresses carry no topology
information.  This example builds a Barabási–Albert graph (heavy-tailed
degrees, like an AS-level topology), compares the AGM scheme against the
trivial shortest-path tables and the labeled Thorup–Zwick scheme, and prints
the space/stretch trade-off table a network designer would look at.

Run with ``python examples/isp_network.py``.
"""

from repro import build_scheme
from repro.core.params import AGMParams
from repro.experiments.reporting import format_table
from repro.graphs.generators import barabasi_albert_graph
from repro.graphs.metrics import graph_summary
from repro.graphs.shortest_paths import DistanceOracle
from repro.routing.simulator import RoutingSimulator


def main() -> None:
    graph = barabasi_albert_graph(110, attach=2, seed=23)
    oracle = DistanceOracle(graph)
    summary = graph_summary(graph, oracle)
    print(f"AS-like topology: n={summary.n}, m={summary.m}, "
          f"max degree={summary.max_degree}, aspect ratio={summary.aspect_ratio:.1f}")

    simulator = RoutingSimulator(graph, oracle=oracle)
    rows = []
    for name, k in [("shortest-path", 2), ("thorup-zwick", 3), ("agm", 2), ("agm", 3)]:
        kwargs = {"params": AGMParams.experiment()} if name == "agm" else {}
        scheme = build_scheme(name, graph, k=k, seed=5, oracle=oracle, **kwargs)
        report = simulator.evaluate(scheme, num_pairs=250, seed=9)
        rows.append({
            "scheme": f"{name} (k={k})" if name != "shortest-path" else name,
            "name-independent": not scheme.labeled,
            "max_stretch": round(report.max_stretch, 2),
            "avg_stretch": round(report.avg_stretch, 2),
            "max_table_KiB": round(report.max_table_bits / 8 / 1024, 2),
            "avg_table_KiB": round(report.avg_table_bits / 8 / 1024, 2),
            "label_bits": report.max_label_bits,
        })
    print(format_table(rows, title="space-stretch trade-off on an AS-like topology"))
    print("Note: the labeled scheme needs every sender to learn topology-dependent\n"
          "addresses; the AGM rows route on the nodes' original names.")


if __name__ == "__main__":
    main()
