#!/usr/bin/env python3
"""Scale-free demonstration: table sizes as the aspect ratio explodes.

The headline property of the paper: previous name-independent schemes store
``Õ(n^{1/k} · log Δ)`` bits per node, so a network whose weights span twelve
orders of magnitude (think: latencies from nanoseconds to minutes) blows up
their tables; the AGM scheme's storage is independent of Δ.

This example takes one topology, rescales its weights to hit increasing
aspect ratios, and prints the measured per-node table size of the AGM scheme
next to the Awerbuch–Peleg-style hierarchical scheme.

Run with ``python examples/scale_free_demo.py``.
"""

from repro.experiments.exp_scale_free import run
from repro.experiments.reporting import format_series, format_table


def main() -> None:
    result = run(quick=True, seed=0, k=2, deltas=[1e2, 1e4, 1e6, 1e9])
    print(format_table(
        result.rows,
        columns=["scheme", "target_delta", "measured_delta", "max_table_bits",
                 "max_stretch", "failures"],
        title="table size vs aspect ratio"))
    for scheme in ("agm", "awerbuch-peleg"):
        rows = result.filter(scheme=scheme)
        print(format_series(
            [f'{float(r["target_delta"]):.0e}' for r in rows],
            [float(r["max_table_bits"]) for r in rows],
            x_label="aspect ratio", y_label="max table bits",
            title=f"{scheme}"))
    agm = [float(r["max_table_bits"]) for r in result.filter(scheme="agm")]
    ap = [float(r["max_table_bits"]) for r in result.filter(scheme="awerbuch-peleg")]
    print(f"AGM growth across the sweep:             x{agm[-1] / agm[0]:.2f}")
    print(f"Awerbuch-Peleg growth across the sweep:  x{ap[-1] / ap[0]:.2f}")


if __name__ == "__main__":
    main()
