#!/usr/bin/env python3
"""DHT scenario: routing when node names are consecutive integers 1..n.

The paper singles out Distributed Hash Tables as an application that *forces*
the name-independent model: "DHTs require node names in the range [1..n], or
ones that form a binary prefix" — the routing scheme has no freedom to embed
topology into the identifiers.  This example builds a ring-of-cliques overlay
(locally dense clusters connected in a ring), names the nodes 1..n, and shows
that the AGM scheme routes correctly on those externally-imposed names while
a labeled scheme would have to distribute new addresses to every participant.

Run with ``python examples/dht_overlay.py``.
"""

from repro import AGMParams, AGMRoutingScheme, RoutingSimulator
from repro.experiments.reporting import format_table
from repro.graphs.generators import ring_of_cliques
from repro.graphs.graph import WeightedGraph


def main() -> None:
    # Build the overlay topology, then re-create it with DHT-style names 1..n.
    topology = ring_of_cliques(10, 8, seed=31)
    dht_names = list(range(1, topology.n + 1))
    graph = WeightedGraph(topology.n, list(topology.edges()), names=dht_names)
    print(f"DHT overlay: {graph.n} nodes named 1..{graph.n}, {graph.num_edges} edges")

    scheme = AGMRoutingScheme.build(graph, k=2, params=AGMParams.experiment(), seed=2)
    simulator = RoutingSimulator(graph)

    # Route lookups for a handful of keys (keys are node names here).
    rows = []
    for source, key in [(0, 57), (5, 14), (40, 79), (63, 2)]:
        result = scheme.route(source, key)
        shortest = simulator.oracle.dist(source, graph.index_of(key))
        rows.append({
            "source_node": source,
            "lookup_key": key,
            "found": result.found,
            "hops": result.hops,
            "cost": round(result.cost, 2),
            "stretch": round(result.cost / shortest, 2) if shortest > 0 else 1.0,
            "strategy": result.strategy,
        })
    print(format_table(rows, title="DHT lookups routed on names 1..n"))

    report = simulator.evaluate(scheme, num_pairs=300, seed=4)
    print(f"over 300 random lookups: max stretch {report.max_stretch:.2f}, "
          f"avg {report.avg_stretch:.2f}, failures {report.failures}, "
          f"max table {report.max_table_bits / 8 / 1024:.1f} KiB")


if __name__ == "__main__":
    main()
