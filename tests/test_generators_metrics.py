"""Tests for the graph generators, weight models and metrics."""

import math

import pytest

from repro.graphs import generators as gen
from repro.graphs.metrics import (
    aspect_ratio,
    ball_growth_profile,
    doubling_dimension_estimate,
    graph_summary,
    weighted_diameter,
)
from repro.graphs.shortest_paths import DistanceOracle


class TestFamilies:
    @pytest.mark.parametrize("family", sorted(gen.GENERATORS))
    def test_registry_families_connected(self, family):
        g = gen.make_graph(family, 40, seed=3)
        assert g.is_connected()
        assert g.n >= 20

    def test_make_graph_unknown_family(self):
        with pytest.raises(Exception):
            gen.make_graph("nope", 10)

    def test_grid_size(self):
        g = gen.grid_graph(4, 5, seed=1)
        assert g.n == 20 and g.is_connected()

    def test_path_cycle_star_complete(self):
        assert gen.path_graph(7, seed=1).num_edges == 6
        assert gen.cycle_graph(7, seed=1).num_edges == 7
        assert gen.star_graph(7, seed=1).n == 8
        assert gen.complete_graph(6, seed=1).num_edges == 15

    def test_hypercube(self):
        g = gen.hypercube_graph(4, seed=1)
        assert g.n == 16
        assert all(g.degree(v) == 4 for v in range(g.n))

    def test_ring_of_cliques(self):
        g = gen.ring_of_cliques(5, 4, seed=2)
        assert g.n == 20 and g.is_connected()

    def test_random_tree_is_tree(self):
        g = gen.random_tree_graph(25, seed=2)
        assert g.num_edges == g.n - 1 and g.is_connected()

    def test_caterpillar(self):
        g = gen.caterpillar_tree(5, legs=2, seed=2)
        assert g.n == 15 and g.num_edges == 14

    def test_dumbbell_bridge(self):
        g = gen.dumbbell_graph(5, bridge_weight=500.0, seed=2)
        assert g.is_connected()
        assert g.max_weight() == pytest.approx(500.0)

    def test_barabasi_albert_heavy_tail(self):
        g = gen.barabasi_albert_graph(60, attach=2, seed=4)
        assert g.is_connected()
        assert g.max_degree() >= 6

    def test_determinism(self):
        a = gen.random_geometric_graph(30, seed=11)
        b = gen.random_geometric_graph(30, seed=11)
        assert sorted(a.edges()) == sorted(b.edges())
        assert a.names == b.names

    def test_erdos_renyi_connect_fixup(self):
        # extremely sparse p would naturally disconnect; generator must stitch it
        g = gen.erdos_renyi_graph(40, p=0.01, seed=5)
        assert g.is_connected()


class TestWeightModels:
    def test_unit_weights(self):
        g = gen.grid_graph(4, 4, weights="unit", seed=1)
        assert g.min_weight() == g.max_weight() == 1.0

    def test_uniform_weights_in_range(self):
        g = gen.grid_graph(5, 5, weights="uniform", wmin=2.0, wmax=3.0, seed=1)
        assert 2.0 <= g.min_weight() and g.max_weight() <= 3.0

    def test_exponential_weights_span(self):
        g = gen.grid_graph(5, 5, weights="exponential", wmin=1.0, wmax=1e6, seed=1)
        assert g.max_weight() / g.min_weight() > 100

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            gen.grid_graph(3, 3, weights="bogus", seed=1)

    def test_geometric_euclidean_weights(self):
        g = gen.random_geometric_graph(40, weights="euclidean", seed=6)
        assert g.min_weight() > 0

    def test_rescale_aspect_ratio_monotone(self):
        base = gen.random_geometric_graph(36, weights="unit", seed=7)
        low = gen.rescale_aspect_ratio(base, 10.0, seed=1)
        high = gen.rescale_aspect_ratio(base, 1e8, seed=1)
        assert aspect_ratio(high) > aspect_ratio(low)
        assert high.n == base.n and high.num_edges == base.num_edges

    def test_rescale_rejects_bad_delta(self):
        base = gen.path_graph(5, seed=1)
        with pytest.raises(Exception):
            gen.rescale_aspect_ratio(base, 0.5)


class TestMetrics:
    def test_aspect_ratio_and_diameter_path(self):
        g = gen.path_graph(5, weights="unit", seed=1)
        assert weighted_diameter(g) == pytest.approx(4.0)
        assert aspect_ratio(g) == pytest.approx(4.0)

    def test_ball_growth_profile_monotone(self, small_geometric, geometric_oracle):
        profile = ball_growth_profile(geometric_oracle, 0)
        assert profile[0] >= 1
        assert all(a <= b for a, b in zip(profile, profile[1:]))
        assert profile[-1] == small_geometric.n

    def test_doubling_dimension_small_for_path(self):
        g = gen.path_graph(32, weights="unit", seed=1)
        oracle = DistanceOracle(g)
        est = doubling_dimension_estimate(oracle, sample=range(0, 32, 4))
        assert 0 < est <= 2.5

    def test_graph_summary_fields(self, small_geometric, geometric_oracle):
        s = graph_summary(small_geometric, geometric_oracle)
        d = s.as_dict()
        assert d["n"] == small_geometric.n
        assert d["m"] == small_geometric.num_edges
        assert d["aspect_ratio"] >= 1.0
        assert d["max_degree"] >= d["avg_degree"] > 0
